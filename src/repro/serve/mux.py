"""Multiplexed load generation: many virtual clients, few sockets.

The real-socket fleet (:mod:`repro.serve.loadgen`) opens one TCP
connection per client, which caps how many clients one box can
drive long before the server's slot pipeline is stressed.  This
module multiplexes hundreds of *virtual clients* over a handful of
physical connections using the binary codec's channel tags:

* virtual client ``i`` rides link ``i % connections``;
* the first join on each link is the ordinary JSON handshake (it
  carries the codec negotiation), every later join travels as a
  channel-tagged binary JOIN on the already-upgraded connection;
* steady state is batch-for-batch: the server's ``PLAN_BATCH``
  covers every seat on the link, the link evaluates each plan
  through that virtual client's *own* display pipeline, and answers
  with one ``REPORT_BATCH`` — paced report batching with per-client
  latency/QoE ledgers kept fully independent;
* every virtual client keeps its own seeded motion trace, coverage
  evaluator, and phone model (the same
  :class:`~repro.serve.loadgen._ClientState` the real-socket fleet
  uses), so a mux run is comparable ledger-for-ledger with a
  real-socket run of the same seed.

Coordinator redirects are handled at both points they can occur: a
greeting :class:`~repro.serve.protocol.Redirect` re-dials the link's
virtual client at the assigned shard, and a mid-run channel-tagged
redirect re-places just that virtual client (with its resume token)
on a link to the target shard, leaving its link-mates undisturbed.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, TransportError
from repro.serve.config import PROTOCOL_VERSION, ServeConfig
from repro.serve.loadgen import (
    MAX_REDIRECTS,
    ClientReport,
    FleetReport,
    LoadGenConfig,
    _ClientState,
    _evaluate_plan,
    _final_report,
)
from repro.serve.protocol import (
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Redirect,
    Reject,
    ServeMessage,
    SlotReport,
    TilePlan,
    Welcome,
    pose_to_wire,
)
from repro.serve.protocol2 import (
    CODEC_BINARY,
    CODEC_JSON,
    WireState,
    wire_read,
    wire_write,
)
from repro.serve.server import ServeResult, VrServeServer


class _VirtualClient:
    """One multiplexed phone: identity, ledger state, completion."""

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        self.state: Optional[_ClientState] = None
        self.token = ""
        self.seat = -1
        self.redirects = 0
        self.rejected: Optional[ClientReport] = None
        self.done = asyncio.Event()

    def finish(self, reason: Optional[str] = None) -> None:
        if self.done.is_set():
            return
        if reason is not None and self.state is not None:
            self.state.end_reason = reason
        self.done.set()

    def report(self) -> ClientReport:
        if self.rejected is not None:
            return self.rejected
        if self.state is None:
            return ClientReport(
                name=self.name,
                seat=-1,
                frames=0,
                displayed=0,
                mean_viewed_quality=0.0,
                mean_delay_slots=0.0,
                fps=0.0,
                end_reason="disconnected",
                redirects=self.redirects,
            )
        return _final_report(self.name, self.state, self.redirects)


class _MuxLink:
    """One physical connection carrying several virtual clients.

    A single pump task owns the read side: it resolves handshake
    replies, turns plan frames into report batches, and completes
    virtual clients on their end frames.  Joins are serialized under
    a lock so exactly one handshake is outstanding per link, which
    keeps seat assignment deterministic.
    """

    def __init__(self, fleet: "_MuxFleet", host: str, port: int) -> None:
        self.fleet = fleet
        self.host = host
        self.port = port
        self.wire = WireState()
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.lock = asyncio.Lock()
        self.vcs_by_seat: Dict[int, _VirtualClient] = {}
        self._pending_joins: Dict[int, "asyncio.Future[ServeMessage]"] = {}
        self._json_join: Optional["asyncio.Future[ServeMessage]"] = None
        self._pump_task: Optional["asyncio.Task[None]"] = None
        self.closed = False

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._pump_task = asyncio.ensure_future(self._pump())

    async def join(self, vc: _VirtualClient) -> ServeMessage:
        """Send one join and await its greeting (serialized per link)."""
        async with self.lock:
            if self.closed or self.writer is None:
                raise TransportError("mux link is closed")
            future: "asyncio.Future[ServeMessage]" = (
                asyncio.get_running_loop().create_future()
            )
            request = JoinRequest(
                client=vc.name,
                version=PROTOCOL_VERSION,
                token=vc.token,
                codec=self.fleet.config.codec,
            )
            if self.wire.codec == CODEC_JSON:
                # The negotiation carrier: an untagged JSON join whose
                # untagged reply belongs to this handshake by
                # construction (one outstanding join per link).
                self._json_join = future
                wire_write(self.writer, self.wire, request)
            else:
                self._pending_joins[vc.index] = future
                wire_write(self.writer, self.wire, request, channel=vc.index)
            await self.writer.drain()
            return await future

    async def send_ready(self, vc: _VirtualClient) -> None:
        if self.writer is None:
            raise TransportError("mux link is closed")
        assert vc.state is not None
        channel = vc.seat if self.wire.codec == CODEC_BINARY else -1
        wire_write(
            self.writer,
            self.wire,
            Ready(pose=pose_to_wire(vc.state.trace[0].as_vector())),
            channel=channel,
        )
        await self.writer.drain()

    # ------------------------------------------------------------------
    # The read pump
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        try:
            while self.reader is not None:
                units = await wire_read(self.reader, self.wire)
                if units is None:
                    break
                plans: List[Tuple[int, TilePlan]] = []
                for unit in units:
                    message = unit.message
                    if message is None:
                        # A corrupt frame from the server: that slot
                        # is lost for whichever seat it addressed, the
                        # link is not.
                        continue
                    if isinstance(message, (Welcome, Reject)):
                        self._resolve_join(unit.channel, message)
                    elif isinstance(message, Redirect):
                        self._handle_redirect(unit.channel, message)
                    elif isinstance(message, TilePlan):
                        plans.append((unit.channel, message))
                    elif isinstance(message, EndOfRun):
                        await self._finish_vc(unit.channel, message)
                if plans:
                    await self._answer_plans(plans)
        except (TransportError, ConnectionError, OSError):
            pass
        finally:
            self._fail_all("disconnected")

    def _resolve_join(self, channel: int, message: ServeMessage) -> None:
        future = (
            self._pending_joins.pop(channel, None)
            if channel >= 0
            else self._json_join
        )
        if channel < 0:
            self._json_join = None
        if future is not None and not future.done():
            future.set_result(message)
        if (
            isinstance(message, Welcome)
            and self.wire.codec == CODEC_JSON
            and message.codec >= CODEC_BINARY
            and self.fleet.config.codec >= CODEC_BINARY
        ):
            # Flip before the pump's next read: the very next frame
            # from the server is already binary-framed.
            self.wire.upgrade(CODEC_BINARY)

    def _handle_redirect(self, channel: int, message: Redirect) -> None:
        future = (
            self._pending_joins.pop(channel, None)
            if channel >= 0
            else self._json_join
        )
        if channel < 0:
            self._json_join = None
        if future is not None and not future.done():
            future.set_result(message)
            return
        # Mid-run migration: move exactly this virtual client (its
        # resume token travels with it); link-mates stay put.
        vc = self.vcs_by_seat.pop(channel, None)
        if vc is not None:
            vc.redirects += 1
            self.fleet.replace_vc(vc, message.host, message.port)

    async def _finish_vc(self, channel: int, message: EndOfRun) -> None:
        vc = (
            self.vcs_by_seat.pop(channel, None)
            if channel >= 0
            else next(iter(self.vcs_by_seat.values()), None)
        )
        if vc is None or vc.state is None:
            return
        if channel < 0:
            self.vcs_by_seat.pop(vc.seat, None)
        vc.state.end_reason = message.reason
        vc.state.server_summary = dict(message.summary)
        if self.writer is not None:
            channel_out = vc.seat if self.wire.codec == CODEC_BINARY else -1
            try:
                wire_write(
                    self.writer, self.wire, Bye(reason="complete"),
                    channel=channel_out,
                )
                await self.writer.drain()
            except (TransportError, ConnectionError, OSError):
                pass
        vc.finish()

    async def _answer_plans(self, plans: List[Tuple[int, TilePlan]]) -> None:
        """Evaluate one batch of plans and answer with one batch of reports.

        Each (seat, plan) runs through that virtual client's own
        display pipeline; the replies travel as a single
        ``REPORT_BATCH`` frame (or sequential frames on a JSON link,
        which by construction carries one virtual client).
        """
        if self.writer is None:
            return
        reports: List[Tuple[int, SlotReport]] = []
        for seat, plan in plans:
            vc = (
                self.vcs_by_seat.get(seat)
                if seat >= 0
                else next(iter(self.vcs_by_seat.values()), None)
            )
            if vc is None or vc.state is None:
                continue
            reports.append(
                (
                    vc.seat,
                    _evaluate_plan(
                        plan, vc.state.trace, vc.state.coverage,
                        vc.state.phone,
                    ),
                )
            )
        if not reports:
            return
        if self.fleet.config.latency_s > 0:
            await asyncio.sleep(self.fleet.config.latency_s)
        try:
            if self.wire.codec == CODEC_BINARY:
                for frame in self.wire.require_binary().encode_report_batch(
                    reports
                ):
                    self.writer.write(frame)
            else:
                for _, report in reports:
                    wire_write(self.writer, self.wire, report)
            await self.writer.drain()
        except (TransportError, ConnectionError, OSError):
            pass

    def _fail_all(self, reason: str) -> None:
        self.closed = True
        for future in list(self._pending_joins.values()):
            if not future.done():
                future.set_exception(TransportError("mux link lost"))
        self._pending_joins.clear()
        if self._json_join is not None and not self._json_join.done():
            self._json_join.set_exception(TransportError("mux link lost"))
        self._json_join = None
        for vc in list(self.vcs_by_seat.values()):
            vc.finish(reason)
        self.vcs_by_seat.clear()

    async def aclose(self) -> None:
        self.closed = True
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)


class _MuxFleet:
    """All virtual clients of one multiplexed run."""

    def __init__(self, config: LoadGenConfig, connections: int) -> None:
        self.config = config
        self.connections = connections
        self.vcs = [
            _VirtualClient(i, f"{config.client_prefix}-{i}")
            for i in range(config.num_clients)
        ]
        self.links: Dict[Tuple[str, int, int], _MuxLink] = {}
        self._rejoin_tasks: Set["asyncio.Task[None]"] = set()

    async def run(self) -> FleetReport:
        try:
            for vc in self.vcs:
                await self._join(vc, self.config.host, self.config.port)
            await asyncio.gather(*(vc.done.wait() for vc in self.vcs))
        finally:
            if self._rejoin_tasks:
                await asyncio.gather(
                    *self._rejoin_tasks, return_exceptions=True
                )
            for link in list(self.links.values()):
                await link.aclose()
        return FleetReport(clients=tuple(vc.report() for vc in self.vcs))

    def replace_vc(self, vc: _VirtualClient, host: str, port: int) -> None:
        """Re-place a redirected virtual client on its target shard."""
        task = asyncio.ensure_future(self._join(vc, host, port))
        self._rejoin_tasks.add(task)
        task.add_done_callback(self._rejoin_tasks.discard)

    async def _link_for(self, host: str, port: int, slot: int) -> _MuxLink:
        key = (host, port, slot)
        link = self.links.get(key)
        if link is None or link.closed:
            link = _MuxLink(self, host, port)
            await link.connect()
            self.links[key] = link
        return link

    async def _join(self, vc: _VirtualClient, host: str, port: int) -> None:
        for _ in range(MAX_REDIRECTS + 1):
            try:
                link = await self._link_for(
                    host, port, vc.index % self.connections
                )
                greeting = await link.join(vc)
            except (TransportError, ConnectionError, OSError):
                vc.finish("disconnected")
                return
            if isinstance(greeting, Redirect):
                # A front-door coordinator answers the join with the
                # assigned shard (and closes its connection); follow.
                vc.redirects += 1
                host, port = greeting.host, greeting.port
                continue
            if isinstance(greeting, Reject):
                vc.rejected = ClientReport(
                    name=vc.name,
                    seat=vc.seat,
                    frames=0,
                    displayed=0,
                    mean_viewed_quality=0.0,
                    mean_delay_slots=0.0,
                    fps=0.0,
                    end_reason="rejected",
                    reject_code=greeting.code,
                    reject_reason=greeting.reason,
                    redirects=vc.redirects,
                )
                vc.finish()
                return
            if not isinstance(greeting, Welcome):
                raise TransportError(
                    f"expected welcome, redirect, or reject, got "
                    f"{type(greeting).__name__}"
                )
            vc.token = greeting.resume_token or vc.token
            vc.seat = greeting.seat
            fresh = vc.state is None
            if fresh:
                vc.state = _ClientState(self.config, greeting)
            else:
                assert vc.state is not None
                vc.state.resumes += 1
            link.vcs_by_seat[vc.seat] = vc
            if (
                link.wire.codec == CODEC_JSON
                and self.config.num_clients > self.connections
            ):
                raise ConfigurationError(
                    "mux mode needs the binary codec to multiplex "
                    f"{self.config.num_clients} clients over "
                    f"{self.connections} connections, but the server "
                    "negotiated JSON"
                )
            if fresh:
                await link.send_ready(vc)
            return
        vc.finish("redirect_loop")


async def run_mux_fleet(
    config: LoadGenConfig, connections: int = 4
) -> FleetReport:
    """Drive ``config.num_clients`` virtual clients over a few sockets.

    The knobs the real-socket fleet uses to shape *individual* client
    behaviour (slow clients, churn, scripted faults, reconnection) do
    not apply to multiplexed virtual clients and are rejected rather
    than silently ignored.
    """
    if connections < 1:
        raise ConfigurationError(
            f"connections must be >= 1, got {connections}"
        )
    if config.port == 0:
        raise ConfigurationError("fleet needs a concrete server port")
    if config.codec != CODEC_BINARY:
        raise ConfigurationError(
            "mux mode requires codec 2 (the binary framing)"
        )
    if (
        config.faults is not None
        or config.slow_clients
        or config.churn_clients
        or config.reconnect.enabled
    ):
        raise ConfigurationError(
            "mux mode does not support per-client faults, slow clients, "
            "churn, or reconnect policies"
        )
    fleet = _MuxFleet(config, connections)
    return await fleet.run()


async def run_serve_and_mux_fleet(
    serve_config: ServeConfig,
    fleet_config: LoadGenConfig,
    connections: int = 4,
) -> Tuple[ServeResult, FleetReport]:
    """Run a server and a multiplexed fleet in-process (tests, benches)."""
    server = VrServeServer(serve_config)
    await server.start()
    server_task = asyncio.ensure_future(server.run())
    try:
        fleet = await run_mux_fleet(
            replace(fleet_config, port=server.port), connections
        )
        result = await server_task
    finally:
        if not server_task.done():
            server_task.cancel()
            await asyncio.gather(server_task, return_exceptions=True)
    return result, fleet
