"""Admission control for the edge server.

The ROADMAP's north star is "millions of users"; the first line of
defence is refusing work the box cannot serve inside the slot
deadline.  The policy is deliberately explicit-over-the-wire: a
rejected client receives a machine-readable code and the current
capacity so a fleet controller can back off or re-balance instead of
retry-storming.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Machine-readable rejection codes carried by the ``reject`` frame.
REJECT_CAPACITY = "capacity"
REJECT_VERSION = "version"
REJECT_DRAINING = "draining"
#: A resume token matched no detached seat (expired grace or bogus token).
REJECT_RESUME = "resume"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission request."""

    admitted: bool
    code: str = ""
    reason: str = ""


class AdmissionPolicy:
    """Cap-and-version admission control.

    Parameters
    ----------
    capacity:
        Maximum concurrent sessions (scheduler seats) ``K``.
    protocol_version:
        The only wire-protocol version this server speaks.
    """

    def __init__(self, capacity: int, protocol_version: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.protocol_version = protocol_version
        self._draining = False

    def start_draining(self) -> None:
        """Refuse new sessions while the run shuts down."""
        self._draining = True

    @property
    def draining(self) -> bool:
        """True once the server has begun shutting down."""
        return self._draining

    def decide(self, version: int, occupancy: int) -> AdmissionDecision:
        """Admit or reject a join request given current occupancy."""
        if occupancy < 0:
            raise ConfigurationError(f"occupancy must be >= 0, got {occupancy}")
        if version != self.protocol_version:
            return AdmissionDecision(
                admitted=False,
                code=REJECT_VERSION,
                reason=(
                    f"protocol version {version} unsupported; server speaks "
                    f"{self.protocol_version}"
                ),
            )
        if self._draining:
            return AdmissionDecision(
                admitted=False,
                code=REJECT_DRAINING,
                reason="server is draining; no new sessions",
            )
        if occupancy >= self.capacity:
            return AdmissionDecision(
                admitted=False,
                code=REJECT_CAPACITY,
                reason=(
                    f"at capacity: {occupancy}/{self.capacity} sessions "
                    "connected"
                ),
            )
        return AdmissionDecision(admitted=True)
