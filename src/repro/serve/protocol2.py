"""Binary wire codec (generation 2) and per-connection wire state.

The JSON codec (:mod:`repro.serve.protocol`, codec generation 1)
spends most of its per-frame budget on ``json.dumps``/``json.loads``
and on re-sending six full-precision pose floats every slot.  This
module packs the same nine message types into struct-framed binary
frames::

    0      1      2      3      4              8
    ┌──────┬──────┬──────┬──────┬──────────────┐
    │magic │codec │ type │flags │ body length  │ body ...
    │ 0xB2 │  2   │ u8   │ u8   │ u32 (BE)     │
    └──────┴──────┴──────┴──────┴──────────────┘

* integers are unsigned LEB128 varints (``zigzag`` for signed
  fields), strings are varint-length-prefixed UTF-8, floats are
  big-endian IEEE-754 doubles — every quantity the JSON codec carries
  round-trips bit-identically;
* client pose uploads are **delta-encoded against the last acked
  pose**: each plan frame carries the highest report slot the server
  decoded on that channel, and the client XORs the raw f64 bit
  patterns of its pose against the pose it sent for that slot.  XOR
  deltas are lossless (decode is ``base_bits ^ delta_bits``) and a
  corrupt report can never desynchronise the stream: the server only
  ever acks slots it decoded, so the client's next delta base is one
  the server is guaranteed to hold;
* plan frames for every seat of a multiplexed connection travel in
  one ``PLAN_BATCH`` frame per slot, each entry length-prefixed so a
  corrupt entry costs exactly that entry, and report frames batch the
  same way upstream.

The codec is **negotiated per connection**: the JOIN/WELCOME
handshake is always JSON-framed, a client offers its best codec
generation in ``JoinRequest.codec``, the server answers with the
selected generation in ``Welcome.codec``, and both sides switch only
after that welcome — a client that never offers (field defaults to 1)
speaks JSON end-to-end, unchanged.

Framing errors (bad magic, oversized length) are
:class:`~repro.errors.TransportError` — the stream is lost, the
connection must go down.  Body errors inside an intact frame are
quarantined: :func:`wire_read` returns them as
:class:`WireFrame` entries with ``message=None`` so the server can
charge exactly one report and keep the session.
"""

from __future__ import annotations

import asyncio
import math
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, FrameCorruptError, TransportError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Redirect,
    Reject,
    ServeMessage,
    SlotReport,
    TilePlan,
    Welcome,
    encode_message,
    read_message,
)

#: Codec generations.  1 is the length-prefixed JSON wire format of
#: :mod:`repro.serve.protocol`; 2 is the binary format defined here.
CODEC_JSON = 1
CODEC_BINARY = 2

#: The newest codec generation this build can speak.
SUPPORTED_CODEC = CODEC_BINARY

#: First header byte of every binary frame.  JSON frames start with a
#: u32 length prefix whose first byte is zero for any length under
#: 16 MiB (far above ``MAX_FRAME_BYTES``), so the two framings can
#: never be confused on a synchronized stream.
HEADER_MAGIC = 0xB2

#: Header: magic, codec generation, frame type, flags, body length.
HEADER = struct.Struct("!BBBBI")

#: Flags bit 0: the body starts with a varint channel id (the seat,
#: or the client-chosen virtual-channel id for JOIN/WELCOME frames on
#: a multiplexed connection).
FLAG_CHANNEL = 0x01

#: Binary frame types, one per message kind plus the two batch forms.
TYPE_JOIN = 1
TYPE_WELCOME = 2
TYPE_REJECT = 3
TYPE_REDIRECT = 4
TYPE_READY = 5
TYPE_PLAN = 6
TYPE_REPORT = 7
TYPE_END = 8
TYPE_BYE = 9
TYPE_PLAN_BATCH = 10
TYPE_REPORT_BATCH = 11

#: Soft per-frame budget for batch frames: a batch that would grow
#: past this is split into several frames, so the 1 MiB hard cap is
#: enforced by construction rather than by a mid-slot exception.
BATCH_SOFT_BYTES = MAX_FRAME_BYTES // 2

#: Decoded/sent pose memory per channel.  The ack loop keeps the
#: distance between the client's delta base and the server's newest
#: decoded slot at one in-flight plan, so a small ring is ample.
_POSE_MEMORY_SLOTS = 256

_F64 = struct.Struct("!d")
_U64 = struct.Struct("!Q")
#: Whole-pose structs: six doubles and their raw bit patterns, packed
#: in one call (the per-component path dominates the codec's CPU cost
#: otherwise).
_POSE_F = struct.Struct("!6d")
_POSE_U = struct.Struct("!6Q")

_VARINT_MAX_BYTES = 10


def negotiate_codec(offer: int, ceiling: int = SUPPORTED_CODEC) -> int:
    """Pick the codec generation for one connection.

    The server selects the newest generation both sides speak; an
    offer from the future (a client newer than this build) downgrades
    to ``ceiling``, and anything at or below JSON stays JSON — the
    negotiation can refuse nothing, only fall back.
    """
    best = min(ceiling, SUPPORTED_CODEC)
    if offer >= CODEC_BINARY and best >= CODEC_BINARY:
        return CODEC_BINARY
    return CODEC_JSON


def pose_bits(value: float) -> int:
    """Raw IEEE-754 bit pattern of one pose component."""
    return int(_U64.unpack(_F64.pack(value))[0])


def bits_pose(bits: int) -> float:
    """Inverse of :func:`pose_bits`."""
    return float(_F64.unpack(_U64.pack(bits))[0])


def _check_finite(value: float, what: str) -> float:
    # The JSON encoder refuses NaN/Infinity (allow_nan=False); the
    # binary encoder must hold the same line or the codecs diverge on
    # exactly the frames that poison downstream telemetry.
    if not math.isfinite(value):
        raise TransportError(f"cannot encode non-finite {what}: {value!r}")
    return float(value)


# ---------------------------------------------------------------------------
# Primitive writers
# ---------------------------------------------------------------------------


def _put_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise TransportError(f"varint cannot encode negative {value}")
    if value >= 1 << 64:
        raise TransportError(f"varint cannot encode {value} (over 64 bits)")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_zigzag(out: bytearray, value: int) -> None:
    _put_varint(out, (value << 1) ^ (value >> 63) if -(1 << 63) <= value < 1 << 63
                else _zigzag_overflow(value))


def _zigzag_overflow(value: int) -> int:
    raise TransportError(f"zigzag cannot encode {value} (over 64 bits)")


def _put_str(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    _put_varint(out, len(data))
    out += data


def _put_f64(out: bytearray, value: float, what: str) -> None:
    out += _F64.pack(_check_finite(value, what))


def _put_bool(out: bytearray, value: bool) -> None:
    out.append(1 if value else 0)


def _put_pose(out: bytearray, pose: Sequence[float], what: str) -> None:
    if len(pose) != 6:
        raise TransportError(f"a pose has 6 components, got {len(pose)}")
    for component in pose:
        _check_finite(component, what)
    out += _POSE_F.pack(*pose)


def _put_int_tuple(out: bytearray, values: Sequence[int]) -> None:
    # Inlined zigzag varints: this is the hottest writer (video id and
    # ack lists every slot), so the per-value function calls are paid
    # once here instead of twice per element.
    _put_varint(out, len(values))
    append = out.append
    for value in values:
        if not -(1 << 63) <= value < 1 << 63:
            _zigzag_overflow(value)
        encoded = (value << 1) ^ (value >> 63)
        while encoded > 0x7F:
            append((encoded & 0x7F) | 0x80)
            encoded >>= 7
        append(encoded)


def _put_float_tuple(out: bytearray, values: Sequence[float], what: str) -> None:
    _put_varint(out, len(values))
    for value in values:
        _check_finite(value, what)
    if values:
        out += struct.pack(f"!{len(values)}d", *values)


# ---------------------------------------------------------------------------
# Primitive reader
# ---------------------------------------------------------------------------


class _Cursor:
    """Sequential reader over one frame body.

    Every underrun, overlong varint, or length that promises more
    bytes than the frame holds raises
    :class:`~repro.errors.FrameCorruptError` — the framing survived,
    so the caller quarantines the frame and keeps the stream.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self._data = data
        self._pos = pos

    @property
    def pos(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> bool:
        return self._pos >= len(self._data)

    def u8(self) -> int:
        if self.remaining < 1:
            raise FrameCorruptError("frame body truncated (u8)")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def f64(self) -> float:
        if self.remaining < 8:
            raise FrameCorruptError("frame body truncated (f64)")
        (value,) = _F64.unpack_from(self._data, self._pos)
        self._pos += 8
        return float(value)

    def varint(self) -> int:
        data = self._data
        pos = self._pos
        end = len(data)
        result = 0
        shift = 0
        for _ in range(_VARINT_MAX_BYTES):
            if pos >= end:
                raise FrameCorruptError("frame body truncated (varint)")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                if result >= 1 << 64:
                    raise FrameCorruptError(
                        f"varint overflow: {result} exceeds 64 bits"
                    )
                self._pos = pos
                return result
            shift += 7
        raise FrameCorruptError(
            f"varint overflow: more than {_VARINT_MAX_BYTES} bytes"
        )

    def zigzag(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    def str_(self) -> str:
        length = self.varint()
        if length > self.remaining:
            raise FrameCorruptError(
                f"string length {length} exceeds remaining {self.remaining}"
            )
        data = self._data[self._pos:self._pos + length]
        self._pos += length
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameCorruptError(f"malformed UTF-8 string: {exc}") from exc

    def bool_(self) -> bool:
        value = self.u8()
        if value > 1:
            raise FrameCorruptError(f"boolean must be 0 or 1, got {value}")
        return bool(value)

    def pose(self) -> Tuple[float, ...]:
        if self.remaining < 48:
            raise FrameCorruptError("frame body truncated (pose)")
        values = _POSE_F.unpack_from(self._data, self._pos)
        self._pos += 48
        return tuple(float(v) for v in values)

    def int_tuple(self) -> Tuple[int, ...]:
        count = self.varint()
        data = self._data
        pos = self._pos
        end = len(data)
        if count > end - pos:
            raise FrameCorruptError(
                f"list count {count} exceeds remaining {end - pos} bytes"
            )
        # Inlined zigzag varints (the decode mirror of _put_int_tuple):
        # id lists are the hottest field in every steady-state frame.
        values: List[int] = []
        append = values.append
        for _ in range(count):
            raw = 0
            shift = 0
            while True:
                if pos >= end:
                    raise FrameCorruptError("frame body truncated (varint)")
                byte = data[pos]
                pos += 1
                raw |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
                if shift >= 7 * _VARINT_MAX_BYTES:
                    raise FrameCorruptError(
                        f"varint overflow: more than {_VARINT_MAX_BYTES} "
                        "bytes"
                    )
            if raw >= 1 << 64:
                raise FrameCorruptError(
                    f"varint overflow: {raw} exceeds 64 bits"
                )
            append((raw >> 1) ^ -(raw & 1))
        self._pos = pos
        return tuple(values)

    def float_tuple(self) -> Tuple[float, ...]:
        count = self.varint()
        if count * 8 > self.remaining:
            raise FrameCorruptError(
                f"float list count {count} exceeds remaining "
                f"{self.remaining} bytes"
            )
        if count == 0:
            return ()
        values = struct.unpack_from(f"!{count}d", self._data, self._pos)
        self._pos += count * 8
        return tuple(float(v) for v in values)

    def expect_done(self) -> None:
        if not self.done():
            raise FrameCorruptError(
                f"{self.remaining} trailing byte(s) after frame body"
            )

    def skip(self, length: int) -> None:
        """Advance past ``length`` already-validated bytes."""
        self._pos += length


# ---------------------------------------------------------------------------
# The stateful per-connection codec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireFrame:
    """One decoded wire unit: ``message=None`` marks a quarantined
    entry (body corrupt inside intact framing) on ``channel``."""

    channel: int
    message: Optional[ServeMessage]


class BinaryChannelCodec:
    """Encode/decode state for one binary connection (both directions).

    The instance owns the pose-delta machinery: which report poses
    this side sent (awaiting ack), which the peer acked, and which
    the peer's reports this side decoded (the acks it advertises).
    State is keyed by channel so one multiplexed connection carries
    an independent delta stream per seat.  A fresh connection — and
    therefore every resume — starts with no state: the first report
    on any channel is always absolute.
    """

    def __init__(self) -> None:
        #: Report poses we sent, awaiting ack: channel -> slot -> pose.
        self._sent_poses: Dict[int, Dict[int, Tuple[float, ...]]] = {}
        #: Highest report slot the peer acked per channel.
        self._peer_ack: Dict[int, int] = {}
        #: Report poses we decoded: channel -> slot -> pose.
        self._decoded_poses: Dict[int, Dict[int, Tuple[float, ...]]] = {}
        #: Highest report slot we decoded per channel (our next ack).
        self._decoded_last: Dict[int, int] = {}

    # -- introspection helpers (tests) ---------------------------------
    def acked_slot(self, channel: int) -> int:
        """Highest report slot decoded on ``channel`` (-1: none)."""
        return self._decoded_last.get(channel, -1)

    def peer_acked_slot(self, channel: int) -> int:
        """Highest report slot the peer has acked (-1: none)."""
        return self._peer_ack.get(channel, -1)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, message: ServeMessage, channel: int = -1) -> bytes:
        """Frame one message, updating delta/ack state as needed."""
        body = bytearray()
        flags = 0
        if channel >= 0:
            flags |= FLAG_CHANNEL
            _put_varint(body, channel)
        if isinstance(message, JoinRequest):
            frame_type = TYPE_JOIN
            _put_str(body, message.client)
            _put_zigzag(body, message.version)
            _put_str(body, message.token)
            _put_zigzag(body, message.codec)
        elif isinstance(message, Welcome):
            frame_type = TYPE_WELCOME
            self._encode_welcome(body, message)
        elif isinstance(message, Reject):
            frame_type = TYPE_REJECT
            _put_str(body, message.code)
            _put_str(body, message.reason)
            _put_zigzag(body, message.capacity)
        elif isinstance(message, Redirect):
            frame_type = TYPE_REDIRECT
            _put_str(body, message.host)
            _put_zigzag(body, message.port)
            _put_zigzag(body, message.shard)
            _put_str(body, message.reason)
        elif isinstance(message, Ready):
            frame_type = TYPE_READY
            _put_pose(body, message.pose, "ready pose")
        elif isinstance(message, TilePlan):
            frame_type = TYPE_PLAN
            self._encode_plan_body(body, channel, message)
        elif isinstance(message, SlotReport):
            frame_type = TYPE_REPORT
            self._encode_report_body(body, channel, message)
        elif isinstance(message, EndOfRun):
            frame_type = TYPE_END
            _put_zigzag(body, message.slots)
            _put_str(body, message.reason)
            summary = dict(message.summary)
            _put_varint(body, len(summary))
            for name in sorted(summary):
                _put_str(body, name)
                _put_f64(body, summary[name], f"summary[{name}]")
        elif isinstance(message, Bye):
            frame_type = TYPE_BYE
            _put_str(body, message.reason)
        else:
            raise TransportError(
                f"cannot binary-encode {type(message).__name__}"
            )
        return self._frame(frame_type, flags, bytes(body))

    def encode_plan_batch(
        self, entries: Sequence[Tuple[int, TilePlan]]
    ) -> List[bytes]:
        """One or more ``PLAN_BATCH`` frames covering ``entries``.

        Entries are ``(channel, plan)`` pairs; each is length-prefixed
        inside the batch so a corrupt entry costs only itself.  The
        batch splits at :data:`BATCH_SOFT_BYTES` so no frame can
        approach the hard cap.
        """
        return self._encode_batch(
            TYPE_PLAN_BATCH, entries, self._encode_plan_body
        )

    def encode_report_batch(
        self, entries: Sequence[Tuple[int, SlotReport]]
    ) -> List[bytes]:
        """One or more ``REPORT_BATCH`` frames covering ``entries``."""
        return self._encode_batch(
            TYPE_REPORT_BATCH, entries, self._encode_report_body
        )

    def _encode_batch(
        self,
        frame_type: int,
        entries: Sequence[Tuple[int, object]],
        encode_body: "Callable[[bytearray, int, object], None]",
    ) -> List[bytes]:
        frames: List[bytes] = []
        chunk: List[bytes] = []
        chunk_bytes = 0
        for channel, message in entries:
            if channel < 0:
                raise TransportError(
                    "batch entries need a channel (seat) id, got "
                    f"{channel}"
                )
            body = bytearray()
            _put_varint(body, channel)
            encode_body(body, channel, message)
            entry = bytearray()
            _put_varint(entry, len(body))
            entry += body
            if chunk and chunk_bytes + len(entry) > BATCH_SOFT_BYTES:
                frames.append(self._finish_batch(frame_type, chunk))
                chunk, chunk_bytes = [], 0
            chunk.append(bytes(entry))
            chunk_bytes += len(entry)
        if chunk:
            frames.append(self._finish_batch(frame_type, chunk))
        return frames

    def _finish_batch(self, frame_type: int, chunk: List[bytes]) -> bytes:
        body = bytearray()
        _put_varint(body, len(chunk))
        for entry in chunk:
            body += entry
        return self._frame(frame_type, 0, bytes(body))

    def _encode_welcome(self, body: bytearray, message: Welcome) -> None:
        _put_zigzag(body, message.seat)
        _put_zigzag(body, message.version)
        _put_f64(body, message.slot_s, "slot_s")
        _put_zigzag(body, message.num_tx_slots)
        _put_f64(body, message.guideline_mbps, "guideline_mbps")
        _put_zigzag(body, message.level_count)
        _put_f64(body, message.world_size_m, "world_size_m")
        _put_f64(body, message.world_cell_m, "world_cell_m")
        _put_f64(body, message.margin_deg, "margin_deg")
        _put_zigzag(body, message.cell_tolerance)
        _put_zigzag(body, message.client_cache_tiles)
        _put_zigzag(body, message.num_decoders)
        _put_f64(body, message.decode_rate_mbps, "decode_rate_mbps")
        _put_bool(body, message.lockstep)
        _put_str(body, message.resume_token)
        _put_bool(body, message.resumed)
        _put_zigzag(body, message.shard)
        _put_zigzag(body, message.codec)

    def _encode_plan_body(
        self, body: bytearray, channel: int, plan: TilePlan
    ) -> None:
        _put_zigzag(body, plan.slot)
        _put_zigzag(body, plan.level)
        if plan.predicted_pose is None:
            _put_bool(body, False)
        else:
            _put_bool(body, True)
            _put_pose(body, plan.predicted_pose, "predicted pose")
        _put_int_tuple(body, plan.video_ids)
        _put_float_tuple(body, plan.tile_bits, "tile_bits")
        _put_int_tuple(body, plan.lost_positions)
        _put_f64(body, plan.duration_s, "duration_s")
        _put_f64(body, plan.startup_delay_s, "startup_delay_s")
        _put_f64(body, plan.demand_mbps, "demand_mbps")
        _put_f64(body, plan.achieved_mbps, "achieved_mbps")
        _put_bool(body, plan.degraded)
        # Codec-level ack: the highest report slot decoded on this
        # channel (+1; 0 means "nothing decoded yet").  The peer uses
        # it as its next delta base.
        _put_varint(body, self._decoded_last.get(channel, -1) + 1)

    def _encode_report_body(
        self, body: bytearray, channel: int, report: SlotReport
    ) -> None:
        _put_zigzag(body, report.slot)
        pose = tuple(
            _check_finite(component, "report pose")
            for component in report.pose
        )
        if len(pose) != 6:
            raise TransportError(f"a pose has 6 components, got {len(pose)}")
        base_slot = self._peer_ack.get(channel, -1)
        base = (
            self._sent_poses.get(channel, {}).get(base_slot)
            if base_slot >= 0
            else None
        )
        if base is not None:
            _put_bool(body, True)
            _put_varint(body, base_slot + 1)
            pose_bits6 = _POSE_U.unpack(_POSE_F.pack(*pose))
            base_bits6 = _POSE_U.unpack(_POSE_F.pack(*base))
            for current_bits, base_bits in zip(pose_bits6, base_bits6):
                _put_varint(body, current_bits ^ base_bits)
        else:
            _put_bool(body, False)
            body += _POSE_F.pack(*pose)
        sent = self._sent_poses.setdefault(channel, {})
        sent[report.slot] = pose
        if len(sent) > _POSE_MEMORY_SLOTS:
            del sent[min(sent)]
        _put_int_tuple(body, report.delivered_ids)
        _put_int_tuple(body, report.released_ids)
        _put_zigzag(body, report.indicator)
        _put_f64(body, report.delay_slots, "delay_slots")
        _put_f64(body, report.viewed_quality, "viewed_quality")

    def _frame(self, frame_type: int, flags: int, body: bytes) -> bytes:
        if len(body) > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame too large: {len(body)} bytes > {MAX_FRAME_BYTES}"
            )
        return HEADER.pack(
            HEADER_MAGIC, CODEC_BINARY, frame_type, flags, len(body)
        ) + body

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, frame_type: int, flags: int, body: bytes) -> List[WireFrame]:
        """Decode one frame body into wire units.

        Single frames yield one unit; batch frames yield one per
        entry.  A corrupt entry inside a batch — or a corrupt single
        frame — becomes a ``message=None`` unit on its channel, so
        the caller quarantines exactly the units that were lost.
        """
        if frame_type in (TYPE_PLAN_BATCH, TYPE_REPORT_BATCH):
            return self._decode_batch(frame_type, body)
        cursor = _Cursor(body)
        channel = -1
        try:
            if flags & FLAG_CHANNEL:
                channel = cursor.varint()
            message = self._decode_single(frame_type, channel, cursor)
            cursor.expect_done()
        except FrameCorruptError:
            return [WireFrame(channel=channel, message=None)]
        return [WireFrame(channel=channel, message=message)]

    def _decode_batch(self, frame_type: int, body: bytes) -> List[WireFrame]:
        units: List[WireFrame] = []
        cursor = _Cursor(body)
        try:
            count = cursor.varint()
            if count > cursor.remaining:
                raise FrameCorruptError(
                    f"batch count {count} exceeds remaining "
                    f"{cursor.remaining} bytes"
                )
            entry_type = (
                TYPE_PLAN if frame_type == TYPE_PLAN_BATCH else TYPE_REPORT
            )
            for _ in range(count):
                length = cursor.varint()
                if length > cursor.remaining:
                    raise FrameCorruptError(
                        f"batch entry length {length} exceeds remaining "
                        f"{cursor.remaining} bytes"
                    )
                entry = _Cursor(body[cursor.pos:cursor.pos + length])
                # Advance past the entry *first*: the length prefix is
                # the batch's framing, so one corrupt entry never takes
                # its neighbours down with it.
                cursor.skip(length)
                channel = -1
                try:
                    channel = entry.varint()
                    message = self._decode_single(entry_type, channel, entry)
                    entry.expect_done()
                except FrameCorruptError:
                    units.append(WireFrame(channel=channel, message=None))
                    continue
                units.append(WireFrame(channel=channel, message=message))
            cursor.expect_done()
        except FrameCorruptError:
            # The batch's own framing broke (bad count / entry length):
            # whatever entries were already decoded stand, the rest of
            # the frame is one quarantined unit.
            units.append(WireFrame(channel=-1, message=None))
        return units

    def _decode_single(
        self, frame_type: int, channel: int, cursor: _Cursor
    ) -> ServeMessage:
        if frame_type == TYPE_JOIN:
            return JoinRequest(
                client=cursor.str_(),
                version=cursor.zigzag(),
                token=cursor.str_(),
                codec=cursor.zigzag(),
            )
        if frame_type == TYPE_WELCOME:
            return self._decode_welcome(cursor)
        if frame_type == TYPE_REJECT:
            return Reject(
                code=cursor.str_(),
                reason=cursor.str_(),
                capacity=cursor.zigzag(),
            )
        if frame_type == TYPE_REDIRECT:
            return Redirect(
                host=cursor.str_(),
                port=cursor.zigzag(),
                shard=cursor.zigzag(),
                reason=cursor.str_(),
            )
        if frame_type == TYPE_READY:
            return Ready(pose=cursor.pose())
        if frame_type == TYPE_PLAN:
            return self._decode_plan(channel, cursor)
        if frame_type == TYPE_REPORT:
            return self._decode_report(channel, cursor)
        if frame_type == TYPE_END:
            slots = cursor.zigzag()
            reason = cursor.str_()
            count = cursor.varint()
            if count > cursor.remaining:
                raise FrameCorruptError(
                    f"summary count {count} exceeds remaining "
                    f"{cursor.remaining} bytes"
                )
            summary = {}
            for _ in range(count):
                name = cursor.str_()
                summary[name] = cursor.f64()
            return EndOfRun(slots=slots, reason=reason, summary=summary)
        if frame_type == TYPE_BYE:
            return Bye(reason=cursor.str_())
        raise FrameCorruptError(f"unknown binary frame type {frame_type}")

    def _decode_welcome(self, cursor: _Cursor) -> Welcome:
        return Welcome(
            seat=cursor.zigzag(),
            version=cursor.zigzag(),
            slot_s=cursor.f64(),
            num_tx_slots=cursor.zigzag(),
            guideline_mbps=cursor.f64(),
            level_count=cursor.zigzag(),
            world_size_m=cursor.f64(),
            world_cell_m=cursor.f64(),
            margin_deg=cursor.f64(),
            cell_tolerance=cursor.zigzag(),
            client_cache_tiles=cursor.zigzag(),
            num_decoders=cursor.zigzag(),
            decode_rate_mbps=cursor.f64(),
            lockstep=cursor.bool_(),
            resume_token=cursor.str_(),
            resumed=cursor.bool_(),
            shard=cursor.zigzag(),
            codec=cursor.zigzag(),
        )

    def _decode_plan(self, channel: int, cursor: _Cursor) -> TilePlan:
        slot = cursor.zigzag()
        level = cursor.zigzag()
        predicted = cursor.pose() if cursor.bool_() else None
        video_ids = cursor.int_tuple()
        tile_bits = cursor.float_tuple()
        lost_positions = cursor.int_tuple()
        duration_s = cursor.f64()
        startup_delay_s = cursor.f64()
        demand_mbps = cursor.f64()
        achieved_mbps = cursor.f64()
        degraded = cursor.bool_()
        ack_plus1 = cursor.varint()
        if ack_plus1 > 0:
            acked = ack_plus1 - 1
            previous = self._peer_ack.get(channel, -1)
            if acked > previous:
                self._peer_ack[channel] = acked
                sent = self._sent_poses.get(channel)
                if sent:
                    for old in [s for s in sent if s < acked]:
                        del sent[old]
        return TilePlan(
            slot=slot,
            level=level,
            predicted_pose=predicted,
            video_ids=video_ids,
            tile_bits=tile_bits,
            lost_positions=lost_positions,
            duration_s=duration_s,
            startup_delay_s=startup_delay_s,
            demand_mbps=demand_mbps,
            achieved_mbps=achieved_mbps,
            degraded=degraded,
        )

    def _decode_report(self, channel: int, cursor: _Cursor) -> SlotReport:
        slot = cursor.zigzag()
        delta = cursor.bool_()
        if delta:
            base_slot = cursor.varint() - 1
            base = self._decoded_poses.get(channel, {}).get(base_slot)
            if base is None:
                raise FrameCorruptError(
                    f"delta report against unknown base pose "
                    f"(channel {channel}, base slot {base_slot})"
                )
            base_bits6 = _POSE_U.unpack(_POSE_F.pack(*base))
            delta_bits6 = tuple(cursor.varint() for _ in range(6))
            pose = tuple(
                float(v)
                for v in _POSE_F.unpack(
                    _POSE_U.pack(
                        *(b ^ d for b, d in zip(base_bits6, delta_bits6))
                    )
                )
            )
        else:
            pose = cursor.pose()
        delivered_ids = cursor.int_tuple()
        released_ids = cursor.int_tuple()
        indicator = cursor.zigzag()
        delay_slots = cursor.f64()
        viewed_quality = cursor.f64()
        decoded = self._decoded_poses.setdefault(channel, {})
        decoded[slot] = pose
        if len(decoded) > _POSE_MEMORY_SLOTS:
            del decoded[min(decoded)]
        if slot > self._decoded_last.get(channel, -1):
            self._decoded_last[channel] = slot
        return SlotReport(
            slot=slot,
            delivered_ids=delivered_ids,
            released_ids=released_ids,
            indicator=indicator,
            delay_slots=delay_slots,
            viewed_quality=viewed_quality,
            pose=pose,
        )


# ---------------------------------------------------------------------------
# Frame-level reader
# ---------------------------------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[int, int, bytes]]:
    """Read one binary frame; ``None`` on a clean EOF between frames.

    The body-length cap is enforced on the header, *before* any body
    byte is read — the same pre-decode discipline as the JSON
    :func:`~repro.serve.protocol.read_message`.  Header damage (bad
    magic or codec byte) means the stream is desynchronized and
    raises :class:`~repro.errors.TransportError`: there is no way to
    find the next frame boundary, so the connection must go down.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError("connection closed mid-frame") from exc
    magic, codec, frame_type, flags, length = HEADER.unpack(header)
    if magic != HEADER_MAGIC:
        raise TransportError(
            f"bad frame magic 0x{magic:02X} (stream desynchronized)"
        )
    if codec != CODEC_BINARY:
        raise TransportError(f"unsupported codec generation {codec} in header")
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame too large: {length} bytes > {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    return frame_type, flags, body


# ---------------------------------------------------------------------------
# Per-connection wire state and codec-agnostic I/O
# ---------------------------------------------------------------------------


@dataclass
class WireState:
    """Which codec one connection speaks, plus its binary state.

    Connections start as JSON (the handshake framing); a negotiated
    upgrade installs a fresh :class:`BinaryChannelCodec`.  Sessions
    multiplexed over one connection share one ``WireState``.
    """

    codec: int = CODEC_JSON
    binary: Optional[BinaryChannelCodec] = None

    def upgrade(self, codec: int) -> None:
        """Switch to the negotiated codec (idempotent for JSON)."""
        if codec == CODEC_JSON:
            return
        if codec != CODEC_BINARY:
            raise ConfigurationError(f"unknown codec generation {codec}")
        self.codec = CODEC_BINARY
        if self.binary is None:
            self.binary = BinaryChannelCodec()

    def require_binary(self) -> BinaryChannelCodec:
        if self.binary is None or self.codec != CODEC_BINARY:
            raise ConfigurationError("connection has not negotiated codec 2")
        return self.binary


async def wire_read(
    reader: asyncio.StreamReader, wire: WireState
) -> Optional[List[WireFrame]]:
    """Read one frame under the connection's codec.

    Returns ``None`` on clean EOF, else the decoded wire units.
    Corrupt-but-framed input is *returned* (``message=None`` units),
    never raised, so callers implement quarantine uniformly across
    codecs; :class:`~repro.errors.TransportError` still raises.
    """
    if wire.codec == CODEC_JSON:
        try:
            message = await read_message(reader)
        except FrameCorruptError:
            return [WireFrame(channel=-1, message=None)]
        if message is None:
            return None
        return [WireFrame(channel=-1, message=message)]
    frame = await read_frame(reader)
    if frame is None:
        return None
    frame_type, flags, body = frame
    return wire.require_binary().decode(frame_type, flags, body)


def wire_encode(
    wire: WireState, message: ServeMessage, channel: int = -1
) -> bytes:
    """Frame one message under the connection's codec."""
    if wire.codec == CODEC_JSON:
        return encode_message(message)
    return wire.require_binary().encode(message, channel=channel)


def wire_write(
    writer: asyncio.StreamWriter,
    wire: WireState,
    message: ServeMessage,
    channel: int = -1,
) -> int:
    """Queue one framed message without draining; returns frame size."""
    frame = wire_encode(wire, message, channel=channel)
    writer.write(frame)
    return len(frame)


async def wire_send(
    writer: asyncio.StreamWriter,
    wire: WireState,
    message: ServeMessage,
    channel: int = -1,
    drain: bool = True,
) -> None:
    """Write one framed message, draining by default."""
    wire_write(writer, wire, message, channel=channel)
    if drain:
        await writer.drain()


__all__ = [
    "BATCH_SOFT_BYTES",
    "BinaryChannelCodec",
    "CODEC_BINARY",
    "CODEC_JSON",
    "FLAG_CHANNEL",
    "HEADER",
    "HEADER_MAGIC",
    "SUPPORTED_CODEC",
    "TYPE_BYE",
    "TYPE_END",
    "TYPE_JOIN",
    "TYPE_PLAN",
    "TYPE_PLAN_BATCH",
    "TYPE_READY",
    "TYPE_REDIRECT",
    "TYPE_REJECT",
    "TYPE_REPORT",
    "TYPE_REPORT_BATCH",
    "TYPE_WELCOME",
    "WireFrame",
    "WireState",
    "bits_pose",
    "negotiate_codec",
    "pose_bits",
    "read_frame",
    "wire_encode",
    "wire_read",
    "wire_send",
    "wire_write",
]
