"""The server's fixed-cadence slot loop and its emulated data plane.

Every ``slot_s`` the loop snapshots the connected sessions, folds the
previous slot's client reports into the scheduler, runs Algorithm 1
once, emulates the RTP tile delivery, and fans one plan frame out per
connection — the predict / allocate / encode / send pipeline of
Fig. 4, with every stage timed against the slot deadline.

The data plane (:class:`DataPlane`) carries the same TC throttles,
router fair-sharing, fading, interference, and RTP loss as
:meth:`~repro.system.experiment.SystemExperiment.run_repeat`, drawn
from the same seeded RNG streams in the same per-slot order, so a
lockstep loopback run with a full house of clients reproduces the
in-process experiment exactly.
"""

from __future__ import annotations

import asyncio
import math
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.content.tiles import VideoId
from repro.errors import ConfigurationError, TransportError
from repro.faults.injection import FaultInjector, truncate_frame_bytes
from repro.faults.schedule import (
    FAULT_DISCONNECT,
    FAULT_STALL_READ,
    FAULT_STALL_WRITE,
    FAULT_TRUNCATE_FRAME,
)
from repro.obs.config import Obs
from repro.obs.flight import (
    TRIGGER_DEADLINE_MISS,
    TRIGGER_SESSION_RESUME_FAILED,
    TRIGGER_SLO_BREACH,
    TRIGGER_WRITE_DROP,
)
from repro.obs.slo import SloEngine
from repro.serve.config import ServeConfig
from repro.serve.metrics import ServingMetrics
from repro.serve.protocol import EndOfRun, TilePlan, pose_to_wire
from repro.serve.protocol2 import (
    CODEC_BINARY,
    CODEC_JSON,
    WireState,
    wire_encode,
    wire_write,
)
from repro.serve.sessions import Session, SessionRegistry
from repro.simulation.metrics import summarize_ledger
from repro.system.experiment import ExperimentConfig
from repro.system.netem import (
    FadingProcess,
    InterferenceField,
    Router,
    ThrottledLink,
)
from repro.system.server import EdgeServer, SlotPlan
from repro.system.telemetry import SlotUserRecord
from repro.prediction.pose import Pose
from repro.system.transport import RtpChannel, TransmissionResult

_EPS = 1e-9

#: Delay (in slots) charged to a session that misses its report —
#: the same bounded worst case the experiment charges a starved link.
MISSED_DELAY_SLOTS = 60.0

#: The minimum positive quality level a degraded session is held to
#: (the constraint (7) floor: keep serving, at the cheapest rate).
MIN_LEVEL = 1


class DataPlane:
    """The emulated network between the edge server and its seats.

    Construction and per-slot stepping mirror
    :meth:`~repro.system.experiment.SystemExperiment.run_repeat`
    bit-for-bit: guidelines come from ``default_rng((seed, repeat,
    11))``, all fading / interference / RTP loss from ``default_rng((
    seed, repeat, 13))``, consumed in the experiment's exact order —
    routers step, links step, then one RTP transmission per seat in
    seat order (seats with no payload consume no randomness, exactly
    like level-0 users in the experiment).
    """

    def __init__(self, config: ExperimentConfig, repeat: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng((config.seed, repeat, 11))
        self.guidelines_mbps: List[float] = [
            float(rng.choice(list(config.throttle_guidelines)))
            for _ in range(config.num_users)
        ]
        self.links = [
            ThrottledLink(g, FadingProcess(sigma=config.link_fading_sigma))
            for g in self.guidelines_mbps
        ]
        self.interference = InterferenceField(
            onset_probability=config.interference_onset,
            severity_range=tuple(config.interference_severity),
        )
        self.routers = [
            Router(
                config.router_capacity_mbps,
                interference=self.interference,
                fading=FadingProcess(sigma=config.router_fading_sigma),
                contention_loss_per_flow=config.contention_loss_per_flow,
            )
            for _ in range(config.num_routers)
        ]
        self.rtp = RtpChannel(
            base_loss=config.rtp_base_loss,
            congestion_loss=config.rtp_congestion_loss,
        )
        self.net_rng = np.random.default_rng((config.seed, repeat, 13))

    def router_of(self, seat: int) -> int:
        """Round-robin seat-to-router assignment (as the experiment)."""
        return seat % self.config.num_routers

    def step(self) -> None:
        """Advance fading and interference one slot (experiment order)."""
        for router in self.routers:
            router.step(self.net_rng)
        for link in self.links:
            link.step(self.net_rng)

    def achieved(self, demands_mbps: Sequence[float]) -> List[float]:
        """Fair-share achieved rate per seat for this slot's demands."""
        num_users = self.config.num_users
        if len(demands_mbps) != num_users:
            raise ConfigurationError(
                f"expected {num_users} demands, got {len(demands_mbps)}"
            )
        caps = [link.effective_mbps for link in self.links]
        achieved = [0.0] * num_users
        for r, router in enumerate(self.routers):
            members = [u for u in range(num_users) if self.router_of(u) == r]
            wants = [
                caps[u] if demands_mbps[u] > _EPS else 0.0 for u in members
            ]
            rates = router.transmit(wants, [caps[u] for u in members])
            for u, rate in zip(members, rates):
                achieved[u] = rate
        return achieved

    def transmit(
        self,
        tile_bits: Sequence[float],
        demand_mbps: float,
        achieved_mbps: float,
    ) -> TransmissionResult:
        """Emulate one seat's RTP tile delivery for this slot."""
        return self.rtp.transmit(
            list(tile_bits), demand_mbps, achieved_mbps, self.net_rng
        )


class SlotLoop:
    """Drives the serving pipeline for one run.

    In **lockstep** mode each slot ends at a report barrier: the loop
    waits (bounded by ``report_timeout_s``) until every live session
    has reported the slot, which removes wall-clock influence from
    the planning pipeline entirely.  In **paced** mode the loop
    free-runs at the ``slot_s`` cadence; a session whose report for
    the previous slot has not arrived is charged a failed slot
    (indicator 0, worst-case delay) and, once it falls more than
    ``lag_degrade_slots`` behind, is degraded to the minimum level
    until it catches up.
    """

    def __init__(
        self,
        config: ServeConfig,
        server: EdgeServer,
        registry: SessionRegistry,
        metrics: ServingMetrics,
        data_plane: DataPlane,
        obs: Optional[Obs] = None,
        injector: Optional[FaultInjector] = None,
        slo: Optional[SloEngine] = None,
    ) -> None:
        self.config = config
        self.server = server
        self.registry = registry
        self.metrics = metrics
        self.data_plane = data_plane
        self.obs = obs if obs is not None else Obs.disabled(metrics.registry)
        self.injector = injector if injector is not None else FaultInjector()
        #: Optional burn-rate evaluator; reads counters only, so an
        #: attached engine never perturbs planning.
        self.slo = slo
        self.slots_run = 0
        self._stop = asyncio.Event()
        #: (slot, plan, achieved) awaiting the next fold.
        self._pending: Optional[Tuple[int, SlotPlan, List[float]]] = None
        #: Set whenever ``slots_run`` advances (and when the loop
        #: exits), so tests can await progress instead of polling.
        self._slot_event = asyncio.Event()
        self._finished = False
        #: In-flight delayed writes from injected ``stall_write`` faults.
        self._stall_tasks: Set["asyncio.Task[None]"] = set()
        #: (json, binary) plan frames queued by the last send stage,
        #: for the codec attributes on the send span.
        self._sent_frames: Tuple[int, int] = (0, 0)
        #: Coordinator hook (:mod:`repro.shard`): invoked once per slot
        #: at the only deterministic migration point — right after the
        #: previous slot's reports are folded and before the upcoming
        #: slot is planned, so a migrated seat's state is complete and
        #: no plan is in flight for it.  The hook runs synchronously
        #: (ordered handoffs); returning ``False`` aborts the loop
        #: before planning (a killed shard).  ``None``: inert.
        self.slot_hook: Optional[Callable[[int], bool]] = None

    def request_stop(self) -> None:
        """Ask the loop to finish after the current slot."""
        self._stop.set()

    async def wait_slots(self, count: int) -> int:
        """Block until ``slots_run`` reaches ``count`` (or the loop ends).

        The event-driven replacement for polling ``slots_run`` in a
        sleep loop; returns the current ``slots_run``.
        """
        while self.slots_run < count and not self._finished:
            self._slot_event.clear()
            if self.slots_run >= count or self._finished:
                break
            await self._slot_event.wait()
        return self.slots_run

    # ------------------------------------------------------------------
    # Per-slot pipeline stages
    # ------------------------------------------------------------------
    def _fold_pending(self) -> None:
        """Fold the previous slot's reports into the scheduler state.

        Sessions that reported contribute their measured indicator,
        delay, ACKs, and pose upload (exactly the experiment's uplink
        fold); planned sessions that did not report are charged a
        failed slot; empty seats are recorded as idle (level 0).
        """
        if self._pending is None:
            return
        slot, plan, achieved = self._pending
        self._pending = None
        num_users = self.config.max_users
        indicators: List[int] = []
        delays_slots: List[float] = []
        delivered_ids: List[List[int]] = []
        released_ids: List[List[int]] = []
        poses: List[Optional[Pose]] = []
        for seat in range(num_users):
            session = self.registry.get(seat)
            report = (
                session.take_report(slot)
                if session is not None and session.alive
                else None
            )
            if report is not None:
                indicators.append(1 if report.indicator else 0)
                delay = (
                    min(report.delay_slots, MISSED_DELAY_SLOTS)
                    if math.isfinite(report.delay_slots)
                    else MISSED_DELAY_SLOTS
                )
                delays_slots.append(max(delay, 0.0))
                delivered_ids.append(list(report.delivered_ids))
                released_ids.append(list(report.released_ids))
                poses.append(Pose.from_vector(report.pose))
            elif plan.users[seat].level > 0:
                # A planned session went silent: charge a failed slot.
                indicators.append(0)
                delays_slots.append(MISSED_DELAY_SLOTS)
                delivered_ids.append([])
                released_ids.append([])
                poses.append(None)
                self.metrics.record_missed_report()
                if session is not None:
                    session.missed_reports += 1
            else:
                # Empty or idle seat: a level-0 slot, as the
                # experiment records allocator-skipped users.
                indicators.append(0)
                delays_slots.append(0.0)
                delivered_ids.append([])
                released_ids.append([])
                poses.append(None)
            self.metrics.telemetry.add(
                SlotUserRecord(
                    slot=slot,
                    user=seat,
                    level=plan.users[seat].level,
                    demand_mbps=plan.users[seat].demand_mbps,
                    achieved_mbps=achieved[seat],
                    believed_cap_mbps=self.server.estimated_cap(seat),
                    displayed=bool(indicators[-1]),
                    covered=bool(indicators[-1]),
                    delay_slots=delays_slots[-1],
                )
            )
        # Pose uploads land after the ACK fold, as in the experiment's
        # uplink stream (acks are encoded before the pose update).
        for seat, pose in enumerate(poses):
            if pose is not None:
                self.server.observe_pose(seat, pose)
        self.server.complete_slot(
            plan, indicators, delays_slots, achieved, delivered_ids, released_ids
        )
        self.slots_run = slot + 1
        self._slot_event.set()
        self.metrics.set_late_reports(
            sum(s.late_reports for s in self.registry.active())
        )

    def _degradation_caps(self, slot: int) -> Optional[List[int]]:
        """Per-seat level caps for overload / lagging sessions.

        Returns ``None`` when nothing is degraded (the common case);
        otherwise a list with ``MIN_LEVEL`` for degraded seats and
        ``-1`` (no cap) elsewhere.
        """
        caps = [-1] * self.config.max_users
        any_degraded = False
        for session in self.registry.active():
            if not session.ready or session.detached:
                continue
            lagging = (
                not self.config.lockstep
                and session.lag_slots(slot) > self.config.lag_degrade_slots
            )
            backpressured = (
                session.write_buffer_bytes() > self.config.write_degrade_bytes
            )
            session.degraded = lagging or backpressured
            if session.degraded:
                caps[session.seat] = MIN_LEVEL
                any_degraded = True
                self.metrics.record_degraded_user_slot()
        return caps if any_degraded else None

    def _encode_frames(
        self,
        slot: int,
        plan: SlotPlan,
        achieved: Sequence[float],
    ) -> List[Tuple[Session, TilePlan]]:
        """Emulate RTP delivery and build one plan frame per session.

        The RTP channel is sampled for *every* seat in seat order —
        seats without payload draw no randomness — to keep the RNG
        stream aligned with the experiment.
        """
        frames: List[Tuple[Session, TilePlan]] = []
        demands = plan.demands_mbps
        for seat in range(self.config.max_users):
            user_plan = plan.users[seat]
            result = self.data_plane.transmit(
                user_plan.missing_bits, demands[seat], achieved[seat]
            )
            session = self.registry.get(seat)
            if (
                session is None
                or not session.alive
                or not session.ready
                or session.detached
            ):
                continue
            video_ids = tuple(
                VideoId.encode(key) for key in user_plan.missing_keys
            )
            frames.append(
                (
                    session,
                    TilePlan(
                        slot=slot,
                        level=user_plan.level,
                        predicted_pose=(
                            pose_to_wire(user_plan.predicted_pose.as_vector())
                            if user_plan.predicted_pose is not None
                            else None
                        ),
                        video_ids=video_ids,
                        tile_bits=tuple(user_plan.missing_bits),
                        lost_positions=result.lost_tile_indices,
                        duration_s=result.duration_s,
                        startup_delay_s=user_plan.startup_delay_s,
                        demand_mbps=user_plan.demand_mbps,
                        achieved_mbps=float(achieved[seat]),
                        degraded=session.degraded,
                    ),
                )
            )
        return frames

    def _send_frames(self, frames: Sequence[Tuple[Session, TilePlan]]) -> int:
        """Queue plan frames without blocking the loop.

        A connection whose write buffer is past the drop watermark has
        its frame dropped (counted) rather than queued — the slot
        deadline is never spent on a dead socket.  Returns the number
        of frames dropped this slot.

        Frames for sessions multiplexed on a shared binary connection
        (``session.channel >= 0``) are grouped and sent as one
        ``PLAN_BATCH`` frame per connection, after every per-session
        fault/backpressure decision has been taken individually.

        Two scripted faults act here: ``truncate_frame`` writes half a
        frame and kills the connection (the seat detaches for resume),
        ``stall_write`` delays the frame by the scripted duration.
        """
        dropped = 0
        sent_json = 0
        sent_binary = 0
        batches: Dict[
            int,
            Tuple[
                "asyncio.StreamWriter",
                WireState,
                List[Tuple[Session, TilePlan]],
            ],
        ] = {}
        for session, frame in frames:
            slot = frame.slot
            if session.writer is None:
                # Parked seat with no transport (mid-migration); the
                # encode stage should have filtered it already.
                continue
            if self.injector.enabled:
                truncate = self.injector.take(
                    slot, session.seat, FAULT_TRUNCATE_FRAME
                )
                if truncate is not None:
                    self._truncate_and_detach(session, frame, slot)
                    continue
                stall = self.injector.take(
                    slot, session.seat, FAULT_STALL_WRITE
                )
                if stall is not None:
                    self._schedule_stalled_write(
                        session, frame, stall.duration_s
                    )
                    session.planned_slots += 1
                    session.needs_plan = False
                    continue
            if session.write_buffer_bytes() > self.config.write_drop_bytes:
                session.dropped_frames += 1
                self.metrics.record_dropped_frame()
                dropped += 1
                continue
            if (
                session.wire.codec == CODEC_BINARY
                and session.channel >= 0
            ):
                batch = batches.setdefault(
                    id(session.wire),
                    (session.writer, session.wire, []),
                )
                batch[2].append((session, frame))
                continue
            try:
                wire_write(
                    session.writer, session.wire, frame,
                    channel=session.channel,
                )
            except (ConnectionError, OSError):
                session.alive = False
                continue
            if session.wire.codec == CODEC_BINARY:
                sent_binary += 1
            else:
                sent_json += 1
            session.planned_slots += 1
            session.needs_plan = False
        for writer, wire, entries in batches.values():
            batch_frames = wire.require_binary().encode_plan_batch(
                [(session.channel, frame) for session, frame in entries]
            )
            try:
                for frame_bytes in batch_frames:
                    writer.write(frame_bytes)
            except (ConnectionError, OSError):
                for session, _ in entries:
                    session.alive = False
                continue
            sent_binary += len(batch_frames)
            for session, _ in entries:
                session.planned_slots += 1
                session.needs_plan = False
        self._sent_frames = (sent_json, sent_binary)
        self.metrics.record_protocol_frames(CODEC_JSON, "sent", sent_json)
        self.metrics.record_protocol_frames(CODEC_BINARY, "sent", sent_binary)
        return dropped

    def _truncate_and_detach(
        self, session: Session, frame: TilePlan, slot: int
    ) -> None:
        """Deliver half a plan frame, then drop the connection.

        The client reads a length prefix promising more bytes than
        ever arrive, sees the close as a mid-frame transport error,
        and comes back through the resume path; the seat is parked
        for the grace window.  Closing the transport flushes the
        partial frame first.
        """
        writer = session.writer
        if writer is not None:
            try:
                writer.write(
                    truncate_frame_bytes(
                        wire_encode(
                            session.wire, frame, channel=session.channel
                        )
                    )
                )
            except (ConnectionError, OSError):
                pass
        session.planned_slots += 1
        self.registry.detach(session.seat, slot)
        self.metrics.record_disconnect()
        if writer is not None:
            writer.close()

    def _schedule_stalled_write(
        self, session: Session, frame: TilePlan, duration_s: float
    ) -> None:
        """Queue a frame after a scripted delay (a choked downlink)."""
        writer = session.writer
        if writer is None:
            return
        wire = session.wire
        channel = session.channel

        async def _delayed() -> None:
            await asyncio.sleep(duration_s)
            try:
                wire_write(writer, wire, frame, channel=channel)
            except (TransportError, ConnectionError, OSError):
                pass

        task = asyncio.ensure_future(_delayed())
        self._stall_tasks.add(task)
        task.add_done_callback(self._stall_tasks.discard)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Run every transmission slot, then fold the last reports."""
        loop = asyncio.get_running_loop()
        next_tick_s = loop.time()
        last_slot = -1
        for slot in range(self.config.num_tx_slots):
            if self._stop.is_set() or self.registry.ready_count() == 0:
                break
            last_slot = slot
            if self.injector.enabled:
                self._inject_connection_faults(slot)
            await self._resume_barrier(slot)
            if self._stop.is_set() or self.registry.ready_count() == 0:
                break
            started_s = loop.time()
            # Span building never reads a clock itself — it reuses the
            # stage-boundary readings the deadline bookkeeping already
            # takes, which is what keeps instrumentation inert.
            builder = (
                self.obs.tracer.slot(slot, started_s)
                if self.obs.active
                else None
            )
            if builder is not None and self.config.shard_index >= 0:
                builder.span.attrs["shard"] = self.config.shard_index

            stage_s = started_s
            self._fold_pending()
            stage_end_s = loop.time()
            self.metrics.record_stage("predict", stage_end_s - stage_s)
            if builder is not None:
                builder.stage("predict", stage_s, stage_end_s)

            if self.slot_hook is not None and not self.slot_hook(slot):
                # The coordinator pulled this shard out of service
                # (shard_kill): everything folded, nothing planned —
                # migrated seats leave with a complete ledger.
                break

            stage_s = stage_end_s
            caps = self._degradation_caps(slot)
            plan = self.server.plan_slot(caps)
            stage_end_s = loop.time()
            self.metrics.record_stage("allocate", stage_end_s - stage_s)
            if builder is not None:
                builder.stage(
                    "allocate", stage_s, stage_end_s,
                    degraded_seats=caps is not None,
                )
                for seat in range(self.config.max_users):
                    user_plan = plan.users[seat]
                    if user_plan.level > 0:
                        session = self.registry.get(seat)
                        trace_id = (
                            session.trace_id if session is not None else ""
                        )
                        builder.user(
                            seat,
                            level=user_plan.level,
                            demand_mbps=user_plan.demand_mbps,
                            trace=trace_id,
                        )

            stage_s = stage_end_s
            self.data_plane.step()
            achieved = self.data_plane.achieved(plan.demands_mbps)
            frames = self._encode_frames(slot, plan, achieved)
            stage_end_s = loop.time()
            self.metrics.record_stage("encode", stage_end_s - stage_s)
            if builder is not None:
                builder.stage("encode", stage_s, stage_end_s,
                              frames=len(frames))

            stage_s = stage_end_s
            dropped = self._send_frames(frames)
            stage_end_s = loop.time()
            self.metrics.record_stage("send", stage_end_s - stage_s)
            if builder is not None:
                sent_json, sent_binary = self._sent_frames
                builder.stage(
                    "send", stage_s, stage_end_s, dropped=dropped,
                    frames_v1=sent_json, frames_v2=sent_binary,
                )

            elapsed_s = stage_end_s - started_s
            self.metrics.record_slot(elapsed_s)
            self.metrics.record_detached_user_slots(
                len(self.registry.detached_sessions())
            )
            if builder is not None:
                span = builder.finish(
                    stage_end_s, deadline_hit=elapsed_s < self.config.slot_s
                )
                self.obs.flight.record(span)
                self.obs.tracer.emit(span)
                if elapsed_s >= self.config.slot_s:
                    self.obs.flight.trigger(
                        TRIGGER_DEADLINE_MISS,
                        detail=f"slot pipeline took {elapsed_s * 1e3:.3f} ms",
                        slot=slot,
                    )
                if dropped:
                    self.obs.flight.trigger(
                        TRIGGER_WRITE_DROP,
                        detail=f"{dropped} plan frame(s) dropped at the "
                               "write watermark",
                        slot=slot,
                    )
            if self.slo is not None:
                for status in self.slo.evaluate(slot):
                    if status.newly_breached:
                        self.obs.flight.trigger(
                            TRIGGER_SLO_BREACH,
                            detail=(
                                f"{status.name}: burn {status.burn:.2f}x "
                                f"over a {status.window_slots}-slot window"
                            ),
                            slot=slot,
                        )
            self._pending = (slot, plan, achieved)

            # Drain deferred trace/dump writes off the measured stage
            # path: the write happens in a worker thread, after the
            # deadline accounting above, never on the loop itself.
            await self.obs.aflush()

            if self.config.lockstep:
                await self.registry.wait_reports(
                    slot, self.config.report_timeout_s
                )
            else:
                next_tick_s += self.config.slot_s
                sleep_s = next_tick_s - loop.time()
                if sleep_s > 0:
                    await asyncio.sleep(sleep_s)

        # Give stragglers one last chance to report the final slot,
        # then fold it so the ledgers cover every planned slot.
        if self._pending is not None and not self.config.lockstep:
            await self.registry.wait_reports(
                last_slot, min(self.config.slot_s * 4, self.config.report_timeout_s)
            )
        self._fold_pending()
        if self._stall_tasks:
            await asyncio.gather(*self._stall_tasks, return_exceptions=True)
        self._finished = True
        self._slot_event.set()

    # ------------------------------------------------------------------
    # Fault injection and resume
    # ------------------------------------------------------------------
    def _inject_connection_faults(self, slot: int) -> None:
        """Fire this slot's server-side faults, seat-ordered.

        ``disconnect`` closes the transport and parks the seat;
        ``stall_read`` arms a scripted pause on the seat's connection
        handler.  (``truncate_frame`` / ``stall_write`` fire later,
        in the send stage, where the frame exists.)
        """
        for event in self.injector.take_kind(slot, FAULT_DISCONNECT):
            session = self.registry.get(event.seat)
            if session is None or not session.alive or session.detached:
                continue
            self.registry.detach(event.seat, slot)
            self.metrics.record_disconnect()
            if session.writer is not None:
                session.writer.close()
        for event in self.injector.take_kind(slot, FAULT_STALL_READ):
            session = self.registry.get(event.seat)
            if session is None or not session.alive or session.detached:
                continue
            session.stall_read_s = event.duration_s

    async def _resume_barrier(self, slot: int) -> None:
        """Hold the slot while any seat is detached (lockstep only).

        Pausing planning while a reconnect is in flight is what keeps
        missed-slot accounting a function of the fault schedule alone:
        however long the client takes to come back (within grace), it
        re-attaches before the next plan, so the same seed always
        yields the same per-seat slot ledger.  Seats whose grace
        expires are released deterministically at this slot.  Paced
        mode never pauses; its grace window is counted in slots.
        """
        if self.config.lockstep:
            if not self.registry.detached_sessions():
                return
            if self.config.resume_grace_s > 0:
                attached = await self.registry.wait_attached(
                    self.config.resume_grace_s
                )
                if attached:
                    return
            self._expire_detached(slot, self.registry.detached_sessions())
        else:
            expired = [
                session
                for session in self.registry.detached_sessions()
                if slot - session.detached_slot >= self.config.resume_grace_slots
            ]
            if expired:
                self._expire_detached(slot, expired)

    def _expire_detached(
        self, slot: int, sessions: Sequence[Session]
    ) -> None:
        """Give up on detached seats whose grace window has closed."""
        for session in sessions:
            self.registry.release(session.seat)
            self.metrics.record_leave()
            self.metrics.record_resume_failure()
            self.server.reset_user(session.seat)
            self.obs.flight.trigger(
                TRIGGER_SESSION_RESUME_FAILED,
                detail=(
                    f"seat {session.seat} ({session.client}) detached at "
                    f"slot {session.detached_slot} never resumed"
                ),
                slot=slot,
            )

    def end_frames(self, reason: str) -> List[Tuple[Session, EndOfRun]]:
        """Build the end-of-run frame for every live session."""
        frames: List[Tuple[Session, EndOfRun]] = []
        for session in self.registry.active():
            if session.detached:
                # No transport to speak over; the grace window ends
                # with the run.
                continue
            summary = summarize_ledger(
                self.server.scheduler.ledgers[session.seat],
                self.config.experiment.weights,
            )
            payload: Dict[str, float] = {
                "qoe": summary.qoe,
                "quality": summary.quality,
                "delay": summary.delay,
                "variance": summary.variance,
                "mean_level": summary.mean_level,
            }
            frames.append(
                (
                    session,
                    EndOfRun(
                        slots=self.slots_run, reason=reason, summary=payload
                    ),
                )
            )
        return frames
