"""repro.serve — the live asyncio edge-serving subsystem.

The in-process :mod:`repro.system` experiment answers "what numbers
does the algorithm produce"; this package answers "does it hold up
behind real sockets".  A :class:`~repro.serve.server.VrServeServer`
hosts the same :class:`~repro.system.server.EdgeServer` planning
stack behind a TCP listener (length-prefixed JSON frames, see
:mod:`repro.serve.protocol`), runs a fixed-cadence slot loop with
per-stage deadline metrics, applies admission control and per-client
graceful degradation under overload, and a
:mod:`~repro.serve.loadgen` client fleet replays seeded motion
traces against it over loopback.
"""

from repro.serve.admission import (
    REJECT_CAPACITY,
    REJECT_DRAINING,
    REJECT_RESUME,
    REJECT_VERSION,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.serve.bench import BENCH_SERVE_FILE, bench_serve
from repro.serve.config import (
    PROTOCOL_VERSION,
    ServeConfig,
    install_uvloop,
    resume_enabled,
    serve_setup1,
)
from repro.serve.loadgen import (
    ClientReport,
    FleetReport,
    LoadGenConfig,
    ReconnectPolicy,
    run_fleet,
    run_serve_and_fleet,
)
from repro.serve.metrics import LatencyHistogram, ServingMetrics
from repro.serve.mux import run_mux_fleet, run_serve_and_mux_fleet
from repro.serve.protocol2 import (
    CODEC_BINARY,
    CODEC_JSON,
    BinaryChannelCodec,
    WireFrame,
    WireState,
    negotiate_codec,
)
from repro.serve.server import ServeResult, VrServeServer
from repro.serve.sessions import Session, SessionRegistry
from repro.serve.slotloop import DataPlane, SlotLoop

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "BENCH_SERVE_FILE",
    "BinaryChannelCodec",
    "CODEC_BINARY",
    "CODEC_JSON",
    "ClientReport",
    "DataPlane",
    "FleetReport",
    "LatencyHistogram",
    "LoadGenConfig",
    "PROTOCOL_VERSION",
    "ReconnectPolicy",
    "REJECT_CAPACITY",
    "REJECT_DRAINING",
    "REJECT_RESUME",
    "REJECT_VERSION",
    "ServeConfig",
    "ServeResult",
    "ServingMetrics",
    "Session",
    "SessionRegistry",
    "SlotLoop",
    "VrServeServer",
    "WireFrame",
    "WireState",
    "bench_serve",
    "install_uvloop",
    "negotiate_codec",
    "resume_enabled",
    "run_fleet",
    "run_mux_fleet",
    "run_serve_and_fleet",
    "run_serve_and_mux_fleet",
    "serve_setup1",
]
