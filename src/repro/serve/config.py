"""Configuration of the live edge-serving subsystem.

A :class:`ServeConfig` wraps an
:class:`~repro.system.experiment.ExperimentConfig` — the serving data
plane (TC throttles, router fair-sharing, RTP loss) is emulated with
exactly the same components and parameters the in-process
:class:`~repro.system.experiment.SystemExperiment` uses, so a lockstep
loopback run reproduces the Section VI numbers — and adds the
serving-only knobs: socket endpoint, admission capacity, slot-loop
pacing, overload thresholds, and timeouts.
"""

from __future__ import annotations

import asyncio
import importlib

from dataclasses import dataclass, field, replace

from typing import Optional

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultSchedule
from repro.obs.config import ObsConfig
from repro.system.experiment import ExperimentConfig, setup1_config
from repro.units import SLOT_DURATION_S

#: Wire-protocol version spoken by server and load generator.
#: Version 2 added session resume (join tokens / welcome resume fields).
PROTOCOL_VERSION = 2


@dataclass(frozen=True)
class ServeConfig:
    """One edge-server deployment.

    Parameters
    ----------
    experiment:
        The emulation parameters shared with
        :class:`~repro.system.experiment.SystemExperiment`; its
        ``num_users`` is the number of scheduler *seats*, i.e. the
        admission capacity ``K``.  ``duration_slots`` bounds the run
        (the loop executes ``duration_slots - 1`` transmission slots,
        mirroring the experiment's t/t+1 display pipeline).
    host / port:
        Listening endpoint; port 0 binds an ephemeral port (the bound
        port is reported by :class:`~repro.serve.server.VrServeServer`).
    expect_clients:
        The slot loop starts only once this many sessions are ready
        (have joined and uploaded their initial pose).
    lockstep:
        When True the loop is barrier-driven: each slot completes only
        after every live session has reported, which removes all
        wall-clock influence on the planning pipeline (used by the
        determinism and experiment-equivalence tests).  When False the
        loop free-runs at the fixed ``slot_s`` cadence and missing
        reports are charged as failures.
    lag_degrade_slots:
        In paced mode, a session this many slots behind on reports is
        degraded to the minimum quality level (constraint (7) floor)
        until it catches up.
    write_degrade_bytes / write_drop_bytes:
        Per-connection backpressure thresholds on the socket write
        buffer: above the first the session is degraded to the
        minimum level, above the second its plan frames are dropped
        outright (counted, never blocking the slot loop).
    start_timeout_s / join_timeout_s / report_timeout_s / idle_timeout_s:
        Wall-clock guards: waiting for ``expect_clients``, for a JOIN
        frame on a fresh connection, for the lockstep report barrier,
        and for any frame on an established connection.
    obs:
        Observability knobs (:class:`~repro.obs.config.ObsConfig`):
        tracing, flight recording, and the ``/metrics`` endpoint.
    faults:
        Optional scripted fault schedule
        (:class:`~repro.faults.schedule.FaultSchedule`).  ``None``
        leaves every fault path cold: the run is bit-identical to a
        build without the fault layer.
    resume_grace_s / resume_grace_slots:
        Session-resume grace window.  A session that loses its
        connection without a BYE is parked ("detached") rather than
        released; a reconnecting client presenting the seat's token
        within the window re-attaches with all scheduler state
        intact.  Lockstep runs measure the window in wall seconds at
        a resume barrier (the slot loop pauses while seats are
        detached, so slot accounting stays deterministic); paced runs
        measure it in slots.  Both default to 0 — resume disabled, a
        lost connection frees the seat immediately — so a config
        that does not opt in behaves exactly as before the fault
        layer existed.
    exact_stage_latency:
        Retain every stage-latency sample for nearest-rank quantiles
        (short benchmark runs); the default keeps bounded buckets only.
    kernel:
        Allocate slots with the vectorized
        :class:`~repro.kernel.allocator.ArrayAllocator` instead of the
        per-user-object heap solver.  Results are bit-identical (the
        array kernel falls back to the object solver whenever its
        fast-path preconditions fail); the flag only changes slot-loop
        compute cost, which matters at large seat counts.
    codec_max:
        Newest wire-codec generation this server will negotiate (see
        :func:`repro.serve.protocol2.negotiate_codec`).  The default
        allows the binary codec; pinning it to 1 forces every
        connection onto the JSON framing regardless of what clients
        offer (the differential tests drive both values).
    uvloop:
        Install the ``uvloop`` event-loop policy before serving when
        the package is importable (see :func:`install_uvloop`).  A
        build without uvloop ignores the flag — the knob can never
        make a config invalid on a box that lacks the package.
    """

    experiment: ExperimentConfig = field(default_factory=setup1_config)
    host: str = "127.0.0.1"
    port: int = 0
    expect_clients: int = 1
    lockstep: bool = False
    lag_degrade_slots: int = 2
    write_degrade_bytes: int = 256 * 1024
    write_drop_bytes: int = 1024 * 1024
    start_timeout_s: float = 30.0
    join_timeout_s: float = 10.0
    report_timeout_s: float = 10.0
    idle_timeout_s: float = 60.0
    obs: ObsConfig = field(default_factory=ObsConfig)
    exact_stage_latency: bool = False
    kernel: bool = False
    faults: Optional[FaultSchedule] = None
    resume_grace_s: float = 0.0
    resume_grace_slots: int = 0
    #: Shard index advertised in Welcome frames when this server runs
    #: as one shard of a :mod:`repro.shard` cluster; -1 (the default)
    #: means an unsharded standalone server and changes nothing.
    shard_index: int = -1
    codec_max: int = 2
    uvloop: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.expect_clients <= self.experiment.num_users:
            raise ConfigurationError(
                f"expect_clients must be in [1, {self.experiment.num_users}], "
                f"got {self.expect_clients}"
            )
        if self.port < 0 or self.port > 0xFFFF:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.lag_degrade_slots < 1:
            raise ConfigurationError(
                f"lag_degrade_slots must be >= 1, got {self.lag_degrade_slots}"
            )
        if not 0 < self.write_degrade_bytes <= self.write_drop_bytes:
            raise ConfigurationError(
                "need 0 < write_degrade_bytes <= write_drop_bytes, got "
                f"{self.write_degrade_bytes} / {self.write_drop_bytes}"
            )
        for name in (
            "start_timeout_s", "join_timeout_s", "report_timeout_s",
            "idle_timeout_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.resume_grace_s < 0:
            raise ConfigurationError(
                f"resume_grace_s must be >= 0, got {self.resume_grace_s}"
            )
        if self.resume_grace_slots < 0:
            raise ConfigurationError(
                f"resume_grace_slots must be >= 0, got {self.resume_grace_slots}"
            )
        if self.shard_index < -1:
            raise ConfigurationError(
                f"shard_index must be >= -1, got {self.shard_index}"
            )
        if self.codec_max not in (1, 2):
            raise ConfigurationError(
                f"codec_max must be 1 (JSON) or 2 (binary), got "
                f"{self.codec_max}"
            )

    @property
    def max_users(self) -> int:
        """Admission capacity ``K`` (number of scheduler seats)."""
        return self.experiment.num_users

    @property
    def slot_s(self) -> float:
        """Slot duration in seconds (the loop cadence in paced mode)."""
        return self.experiment.slot_s

    @property
    def num_tx_slots(self) -> int:
        """Transmission slots the loop executes before shutting down."""
        return self.experiment.duration_slots - 1


def serve_setup1(
    max_users: int = 8,
    duration_slots: int = 300,
    seed: int = 0,
    slot_s: float = SLOT_DURATION_S,
    host: str = "127.0.0.1",
    port: int = 0,
    expect_clients: int = 1,
    lockstep: bool = False,
) -> ServeConfig:
    """A Section VI setup-1 server behind real sockets.

    ``max_users`` seats (admission cap) and ``duration_slots`` total
    slots over the setup-1 network emulation; further serving knobs
    can be adjusted with :func:`dataclasses.replace` on the result.
    """
    experiment = replace(
        setup1_config(duration_slots=duration_slots, seed=seed),
        num_users=max_users,
        slot_s=slot_s,
    )
    return ServeConfig(
        experiment=experiment,
        host=host,
        port=port,
        expect_clients=expect_clients,
        lockstep=lockstep,
    )


def resume_enabled(config: ServeConfig) -> bool:
    """Whether lost connections are parked for resume (mode-aware)."""
    if config.lockstep:
        return config.resume_grace_s > 0
    return config.resume_grace_slots > 0


def install_uvloop() -> bool:
    """Install the ``uvloop`` event-loop policy if the package exists.

    Returns True when the policy was installed, False when uvloop is
    not importable (the stock asyncio loop keeps serving — the knob
    is an optimization, never a requirement).  This container does
    not ship uvloop, so tests pin the False path; deployments that do
    have it get the policy with no code change.
    """
    try:
        uvloop_module = importlib.import_module("uvloop")
    except ImportError:
        return False
    policy_factory = getattr(uvloop_module, "EventLoopPolicy", None)
    if policy_factory is None:
        return False
    asyncio.set_event_loop_policy(policy_factory())
    return True
