"""Reproduction of "Enhancing Quality of Experience for Collaborative
Virtual Reality with Commodity Mobile Devices" (ICDCS 2022).

The package is organised bottom-up:

* :mod:`repro.knapsack` — the separable nonlinear knapsack substrate
  (problem, greedy / exact solvers, relaxation bounds);
* :mod:`repro.content` — tiles, equirectangular projection, the convex
  size-vs-quality model (Fig. 1a), and the tile database;
* :mod:`repro.prediction` — 6-DoF motion prediction, the coverage
  indicator ``1_n(t)``, and throughput/delay estimators;
* :mod:`repro.traces` — synthetic FCC/LTE network traces and motion
  traces (substitutes for the paper's datasets; see DESIGN.md);
* :mod:`repro.core` — the QoE model, the per-slot decomposition, and
  Algorithm 1 with its baselines and the offline optimum;
* :mod:`repro.simulation` — the Section IV trace-driven simulator;
* :mod:`repro.system` — the Sections V-VI real-system emulation;
* :mod:`repro.analysis` — CDFs and figure-shaped text reports.

Quickstart::

    from repro import (
        DensityValueGreedyAllocator, SimulationConfig, TraceSimulator,
    )

    sim = TraceSimulator(SimulationConfig(num_users=5))
    results = sim.run(DensityValueGreedyAllocator(), num_episodes=3)
    print(results.means())
"""

from repro.core import (
    CollaborativeVrScheduler,
    DensityGreedyAllocator,
    DensityValueGreedyAllocator,
    FireflyAllocator,
    LossAwareAllocator,
    OfflineOptimalAllocator,
    PavqAllocator,
    QoEWeights,
    QualityAllocator,
    SlotProblem,
    UserQoELedger,
    UserSlotState,
    ValueGreedyAllocator,
    horizon_optimal_qoe,
    system_qoe,
)
from repro.core.baselines import MaxMinFairAllocator, UniformAllocator
from repro.simulation import (
    MM1DelayModel,
    MultiEpisodeResults,
    SimulationConfig,
    TraceSimulator,
)
from repro.analysis import EmpiricalCdf, comparison_table, improvement_percent

__version__ = "1.0.0"

__all__ = [
    "QoEWeights",
    "UserQoELedger",
    "system_qoe",
    "SlotProblem",
    "UserSlotState",
    "QualityAllocator",
    "DensityValueGreedyAllocator",
    "DensityGreedyAllocator",
    "ValueGreedyAllocator",
    "OfflineOptimalAllocator",
    "FireflyAllocator",
    "PavqAllocator",
    "LossAwareAllocator",
    "UniformAllocator",
    "MaxMinFairAllocator",
    "horizon_optimal_qoe",
    "CollaborativeVrScheduler",
    "MM1DelayModel",
    "SimulationConfig",
    "TraceSimulator",
    "MultiEpisodeResults",
    "EmpiricalCdf",
    "comparison_table",
    "improvement_percent",
    "__version__",
]
