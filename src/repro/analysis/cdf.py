"""Empirical cumulative distribution functions.

The paper's Figs. 2 and 3 report per-user performance metrics as
CDFs; this class reproduces the underlying computation and offers the
quantile/evaluation helpers the benchmark reports print.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class EmpiricalCdf:
    """Right-continuous empirical CDF of a finite sample."""

    def __init__(self, samples: Sequence[float]) -> None:
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ConfigurationError("an empirical CDF needs at least one sample")
        if np.isnan(values).any():
            raise ConfigurationError("samples must not contain NaN")
        self._sorted = np.sort(values)

    @property
    def num_samples(self) -> int:
        return int(self._sorted.size)

    @property
    def min(self) -> float:
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        return float(self._sorted[-1])

    def mean(self) -> float:
        return float(self._sorted.mean())

    def evaluate(self, x: float) -> float:
        """``P(X <= x)`` under the empirical measure."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.num_samples

    def quantile(self, p: float) -> float:
        """Inverse CDF at ``p`` (nearest-rank, p in [0, 1])."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"quantile level must be in [0, 1], got {p}")
        if p <= 0.0:
            return self.min
        rank = int(np.ceil(p * self.num_samples)) - 1
        return float(self._sorted[min(rank, self.num_samples - 1)])

    def median(self) -> float:
        return self.quantile(0.5)

    def curve(self, points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
        """``(x, F(x))`` arrays suitable for plotting or tabulation."""
        if points < 2:
            raise ConfigurationError(f"need at least 2 curve points, got {points}")
        xs = np.linspace(self.min, self.max, points)
        ys = np.array([self.evaluate(x) for x in xs])
        return xs, ys

    def stochastically_dominates(self, other: "EmpiricalCdf", points: int = 200) -> bool:
        """First-order stochastic dominance over a merged support grid.

        True when this distribution's CDF lies at or below ``other``'s
        everywhere sampled — i.e. this sample is statistically larger.
        """
        lo = min(self.min, other.min)
        hi = max(self.max, other.max)
        xs = np.linspace(lo, hi, points)
        return bool(
            all(self.evaluate(x) <= other.evaluate(x) + 1e-12 for x in xs)
        )
