"""Plain-text reporting of the paper's figures.

The benchmark harness regenerates every figure as a text table (the
shape of the data, not the pixels); these helpers format them
consistently.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.errors import ConfigurationError


def improvement_percent(ours: float, baseline: float) -> float:
    """Relative improvement of ``ours`` over ``baseline`` in percent.

    Mirrors the paper's headline numbers (e.g. "81.9% improvement over
    the Firefly algorithm").  Uses the absolute baseline magnitude so
    an improvement over a negative baseline (Fig. 8: Firefly reaches
    negative QoE) is still reported with a meaningful sign.
    """
    if baseline == 0:
        raise ConfigurationError("baseline of 0 has no relative improvement")
    return (ours - baseline) / abs(baseline) * 100.0


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def comparison_table(
    metric_by_algorithm: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str],
    reference: str = None,
) -> str:
    """Table of algorithms x metrics, optionally with % vs a reference.

    Parameters
    ----------
    metric_by_algorithm:
        ``{algorithm: {metric: value}}``.
    metrics:
        Column order.
    reference:
        When given, appends a ``QoE vs <reference>`` column computed on
        the first metric.
    """
    if not metric_by_algorithm:
        raise ConfigurationError("need at least one algorithm")
    headers: List[str] = ["algorithm"] + list(metrics)
    ref_value = None
    if reference is not None:
        if reference not in metric_by_algorithm:
            raise ConfigurationError(f"unknown reference algorithm {reference!r}")
        ref_value = metric_by_algorithm[reference][metrics[0]]
        headers.append(f"{metrics[0]} vs {reference} (%)")
    rows: List[List[object]] = []
    for name, values in metric_by_algorithm.items():
        row: List[object] = [name] + [float(values[m]) for m in metrics]
        if ref_value is not None:
            if name == reference or ref_value == 0:
                row.append("-")
            else:
                row.append(
                    "{:+.1f}".format(
                        improvement_percent(float(values[metrics[0]]), ref_value)
                    )
                )
        rows.append(row)
    return format_table(headers, rows)


def cdf_summary_rows(
    cdfs: Mapping[str, "EmpiricalCdf"],
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> Dict[str, List[float]]:
    """Quantile rows per algorithm — the tabular form of a CDF figure."""
    return {
        name: [cdf.quantile(p) for p in quantiles] for name, cdf in cdfs.items()
    }
