"""Statistical helpers for the evaluation reports.

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for
  the mean of a metric's per-user samples (the paper reports averages
  of five repetitions; intervals make the comparisons honest).
* :func:`jain_fairness` — Jain's fairness index over per-user QoE.
  Collaborative VR is explicitly multi-user: an allocator that buys
  average QoE by starving one student is worse than the average
  suggests, and the LRU rotation of Firefly trades exactly along this
  axis.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for the mean: ``(mean, lo, hi)``."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ConfigurationError("bootstrap needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if num_resamples < 10:
        raise ConfigurationError(
            f"need at least 10 resamples, got {num_resamples}"
        )
    rng = np.random.default_rng(seed)
    means = np.empty(num_resamples)
    for i in range(num_resamples):
        resample = rng.choice(values, size=values.size, replace=True)
        means[i] = resample.mean()
    tail = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [tail, 1.0 - tail])
    return float(values.mean()), float(lo), float(hi)


def mean_difference_significant(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> bool:
    """True when the bootstrap CI of ``mean(a) - mean(b)`` excludes 0."""
    a = np.asarray(list(samples_a), dtype=float)
    b = np.asarray(list(samples_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ConfigurationError("both sample sets must be non-empty")
    rng = np.random.default_rng(seed)
    diffs = np.empty(num_resamples)
    for i in range(num_resamples):
        diffs[i] = (
            rng.choice(a, size=a.size, replace=True).mean()
            - rng.choice(b, size=b.size, replace=True).mean()
        )
    tail = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(diffs, [tail, 1.0 - tail])
    return bool(lo > 0.0 or hi < 0.0)


def jain_fairness(per_user_values: Sequence[float]) -> float:
    """Jain's index: ``(sum x)^2 / (n * sum x^2)``, in ``(0, 1]``.

    1.0 means perfectly equal allocation; ``1/n`` means one user takes
    everything.  Negative inputs (possible for QoE) are shifted so the
    minimum maps to zero before computing the index, preserving the
    ordering interpretation.
    """
    values = np.asarray(list(per_user_values), dtype=float)
    if values.size == 0:
        raise ConfigurationError("fairness needs at least one user")
    if values.min() < 0:
        values = values - values.min()
    denom = values.size * float((values ** 2).sum())
    if denom == 0:
        return 1.0  # everyone equally at zero
    return float(values.sum() ** 2 / denom)
