"""ASCII rendering of CDFs and bar charts.

The benchmark harness reports figures as text; these helpers make the
shapes legible in a terminal without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.cdf import EmpiricalCdf
from repro.errors import ConfigurationError


def ascii_bars(
    values: Mapping[str, float],
    width: int = 50,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal bar chart; negative values render leftward markers."""
    if not values:
        raise ConfigurationError("ascii_bars needs at least one value")
    if width < 4:
        raise ConfigurationError(f"width must be >= 4, got {width}")
    label_width = max(len(name) for name in values)
    scale = max((abs(v) for v in values.values()), default=0.0)
    lines = []
    for name, value in values.items():
        length = 0 if scale == 0 else int(round(abs(value) / scale * width))
        bar = ("#" if value >= 0 else "-") * length
        lines.append(
            f"{name.ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def ascii_cdf(
    cdfs: Mapping[str, EmpiricalCdf],
    width: int = 60,
    height: int = 12,
) -> str:
    """Overlaid CDF curves on a character grid, one symbol per series."""
    if not cdfs:
        raise ConfigurationError("ascii_cdf needs at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("grid too small to render a CDF")
    symbols = "ox+*#@%&"
    if len(cdfs) > len(symbols):
        raise ConfigurationError(
            f"at most {len(symbols)} series supported, got {len(cdfs)}"
        )
    lo = min(cdf.min for cdf in cdfs.values())
    hi = max(cdf.max for cdf in cdfs.values())
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for symbol, (name, cdf) in zip(symbols, cdfs.items()):
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            p = cdf.evaluate(x)
            row = height - 1 - int(round(p * (height - 1)))
            grid[row][col] = symbol

    lines = []
    for row_index, row in enumerate(grid):
        p = 1.0 - row_index / (height - 1)
        lines.append(f"{p:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4g}{' ' * max(width - 24, 0)}{hi:>12.4g}")
    legend = "  ".join(
        f"{symbol}={name}" for symbol, name in zip(symbols, cdfs.keys())
    )
    lines.append("      " + legend)
    return "\n".join(lines)
