"""Analysis utilities: empirical CDFs and textual figure reports."""

from repro.analysis.ascii import ascii_bars, ascii_cdf
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.report import (
    comparison_table,
    format_table,
    improvement_percent,
)
from repro.analysis.stats import (
    bootstrap_ci,
    jain_fairness,
    mean_difference_significant,
)

__all__ = [
    "EmpiricalCdf",
    "comparison_table",
    "format_table",
    "improvement_percent",
    "ascii_bars",
    "ascii_cdf",
    "bootstrap_ci",
    "jain_fairness",
    "mean_difference_significant",
]
