"""RL001 failing fixture: unit mixing and shadowed units constants."""

from __future__ import annotations

SLOT_DURATION = 1 / 60  # literal slot duration shadowing SLOT_DURATION_S

CRF_LADDER = (15, 19, 23, 27, 31, 35)  # re-typed CRF ladder


def total_time(duration_slots: int, startup_s: float) -> float:
    """Adds a slot count to seconds without converting."""
    return duration_slots + startup_s


def deadline_check(elapsed_s: float, budget_slots: int) -> bool:
    """Compares seconds against slots."""
    return elapsed_s < budget_slots
