"""RL001 passing fixture: explicit conversions, canonical constants."""

from __future__ import annotations

from repro.units import CRF_VALUES, SLOT_DURATION_S

LADDER = CRF_VALUES


def total_time_s(duration_slots: int, startup_s: float) -> float:
    """Multiplying across units is a conversion, not a mix."""
    return duration_slots * SLOT_DURATION_S + startup_s


def deadline_check(elapsed_s: float, budget_slots: int) -> bool:
    """Convert to a common unit before comparing."""
    return elapsed_s < budget_slots * SLOT_DURATION_S
