"""RL005 passing fixture: None sentinels, immutable defaults."""

from __future__ import annotations

from typing import Optional


def collect(item: int, bucket: Optional[list] = None) -> list:
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def index(key: str, labels: tuple = (), *, limit: int = 10) -> dict:
    return {key: key in labels[:limit]}
