"""RL005 failing fixture: mutable defaults, literal and constructed."""

from __future__ import annotations


def collect(item: int, bucket: list = []) -> list:
    bucket.append(item)
    return bucket


def index(key: str, table: dict = dict(), *, seen: set = set()) -> dict:
    table[key] = key in seen
    return table
