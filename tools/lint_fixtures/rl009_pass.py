"""RL009 passing fixture: every generator shows its seed provenance."""

from __future__ import annotations

import numpy as np
from numpy.random import default_rng

#: A module-level constant still counts: the literal is the provenance.
_DEFAULT_STREAM = np.random.default_rng(0)


def seeded_stream(seed: int) -> np.random.Generator:
    """Seed parameter passed straight through."""
    return np.random.default_rng(seed)


def derived_stream(base_seed: int, lane: int) -> np.random.Generator:
    """Tuple-derived streams keep the provenance visible."""
    return np.random.default_rng((base_seed, lane))


def imported_stream(seed: int) -> np.random.Generator:
    return default_rng(seed)


class SlotAllocator:
    """Config-field seeds are provenance too."""

    def __init__(self, config_seed: int) -> None:
        rng = np.random.default_rng(config_seed)
        self._rng = rng
