"""RL008 passing fixture: the same work, loop-safe."""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import List, Set


def _parse_manifest(text: str) -> List[str]:
    """Pure sync helper: no I/O, safe to reach from a coroutine."""
    return [line for line in text.splitlines() if line]


async def load_manifest(path: Path) -> List[str]:
    """Blocking file read pushed onto a worker thread."""
    text = await asyncio.to_thread(path.read_text, encoding="utf-8")
    return _parse_manifest(text)


async def tick() -> None:
    await asyncio.sleep(0)


async def run_slot(path: Path, tasks: Set["asyncio.Task[None]"]) -> None:
    """Awaited coroutines, retained task handles, threaded I/O."""
    await load_manifest(path)
    await tick()
    task = asyncio.create_task(tick())
    tasks.add(task)
    task.add_done_callback(tasks.discard)
    await asyncio.sleep(0.016)
    await asyncio.gather(tick(), tick())
