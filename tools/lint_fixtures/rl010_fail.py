"""RL010 failing fixture: dtype and axis-order contract violations."""

from __future__ import annotations

import numpy as np


def implicit_dtype(num_users: int) -> np.ndarray:
    """Relies on numpy's default dtype instead of the contract."""
    return np.zeros((num_users, 6))


def off_allowlist(num_users: int) -> np.ndarray:
    """float32 is exactly the drift the contract exists to stop."""
    return np.ones(num_users, dtype=np.float32)


def narrowing_cast(state: np.ndarray) -> np.ndarray:
    """Casting off the allowlist loses the bit-identity guarantee."""
    return state.astype(np.float32)


def reordered(state: np.ndarray) -> np.ndarray:
    """Axis reorder mid-pipeline breaks the (users, fields) layout."""
    return state.T


def swapped(state: np.ndarray) -> np.ndarray:
    return state.swapaxes(0, 1)
