"""RL004 passing fixture: tolerance and order comparisons."""

from __future__ import annotations

import math


def is_complete(progress: float) -> bool:
    return progress >= 1.0


def is_partial(delivered: int, total: int) -> bool:
    return not math.isclose(delivered / total, 1.0)


def count_matches(hits: int, expected: int) -> bool:
    """Integer equality is exact and stays legal."""
    return hits == expected
