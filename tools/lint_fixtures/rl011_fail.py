"""RL011 failing fixture: unpicklable work shipped to the pool."""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import IO, List


@dataclass(frozen=True)
class ChunkPayload:
    """A lock and an open handle can never cross the pickle boundary."""

    chunk_id: int
    guard: threading.Lock
    sink: IO[str]


def fan_out(pool: ProcessPoolExecutor, chunks: List[int]) -> List[int]:
    """Lambdas and nested functions pickle by name — and have none."""
    doubled = list(pool.map(lambda chunk: chunk * 2, chunks))

    def local_task(chunk: int) -> int:
        return chunk + 1

    future = pool.submit(local_task, doubled[0])
    return [future.result()]
