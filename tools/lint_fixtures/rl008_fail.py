"""RL008 failing fixture: blocking calls and coroutine misuse."""

from __future__ import annotations

import asyncio
import subprocess
import time
from pathlib import Path


def load_manifest(path: Path) -> str:
    """A sync helper that blocks — fine alone, fatal under a loop."""
    return path.read_text(encoding="utf-8")


async def tick() -> None:
    """A coroutine that exists to be mis-called below."""
    await asyncio.sleep(0)


async def run_slot(path: Path) -> None:
    """Every statement here is a distinct async-safety violation."""
    time.sleep(0.016)  # direct blocking call on the loop
    subprocess.run(["sync"], check=False)  # blocking subprocess spawn
    load_manifest(path)  # blocking I/O reached through a sync helper
    tick()  # coroutine built and dropped, never awaited
    asyncio.create_task(tick())  # task handle dropped
    asyncio.sleep(0.016)  # missing await: sleeps never happen
