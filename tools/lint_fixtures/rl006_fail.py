"""RL006 failing fixture: exported definitions with Any-typed holes."""

from __future__ import annotations


def exported(value):
    return value


def half_annotated(value: int, *extras, **options) -> int:
    return value + len(extras) + len(options)


class PublicThing:
    def method(self, x):
        return x
