"""RL007 failing fixture: wall-clock readings in timing code."""

from __future__ import annotations

import time
from time import time as wall


def stamp() -> float:
    """A wall-clock timestamp — jumps under NTP slew."""
    return time.time()


def duration() -> float:
    """Wall-clock deltas are not monotonic."""
    start = time.time()
    end = time.time()
    return end - start


def aliased() -> float:
    """The from-import hides the wall clock behind a local name."""
    return wall()
