"""RL003 passing fixture: specific handlers, domain exceptions."""

from __future__ import annotations

from repro.errors import TraceError


def read_all(path: str) -> str:
    """Catch what the code expects; raise the library's own error."""
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceError(f"cannot read trace {path}") from exc
