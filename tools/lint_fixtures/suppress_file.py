"""File-wide suppression fixture.

# repro-lint: disable-file=RL005

Every RL005 violation below is silenced by the directive above, but
the RL004 float equality is not and must still fire.
"""

from __future__ import annotations


def first(item: int, bucket: list = []) -> list:
    bucket.append(item)
    return bucket


def second(item: int, table: dict = {}) -> dict:
    table[item] = True
    return table


def is_done(progress: float) -> bool:
    return progress == 1.0
