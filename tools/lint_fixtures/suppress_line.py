"""Inline line suppression fixture.

The first default is suppressed with a justification; the second is
identical but unsuppressed and must still fire.
"""

from __future__ import annotations

_SHARED_REGISTRY: list = []


def register(item: int, registry: list = _SHARED_REGISTRY) -> list:
    registry.append(item)
    return registry


def suppressed(item: int, bucket: list = []) -> list:  # repro-lint: disable=RL005
    bucket.append(item)
    return bucket


def unsuppressed(item: int, bucket: list = []) -> list:
    bucket.append(item)
    return bucket
