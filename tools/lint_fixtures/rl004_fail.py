"""RL004 failing fixture: equality on visibly-float expressions."""

from __future__ import annotations


def is_complete(progress: float) -> bool:
    return progress == 1.0


def is_partial(delivered: int, total: int) -> bool:
    return delivered / total != 1.0


def is_unit(scale: str) -> bool:
    return float(scale) == 1
