"""RL009 failing fixture: unseeded RNG construction and taint flow."""

from __future__ import annotations

import numpy as np
from numpy.random import default_rng


def fresh_stream() -> np.random.Generator:
    """No argument at all: draws OS entropy, unreproducible."""
    return np.random.default_rng()


def opaque_stream(trial: str) -> np.random.Generator:
    """A non-seed argument does not establish provenance."""
    return default_rng(trial)


class SlotAllocator:
    """Unseeded generator stored on allocator state — taint sink."""

    def __init__(self) -> None:
        source = np.random.default_rng()
        self._noise = source
