"""RL003 failing fixture: broad handlers and generic raises."""

from __future__ import annotations


def read_all(path: str) -> str:
    """Bare and broad excepts plus a generic domain raise."""
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except Exception:
        pass
    try:
        return path.upper()
    except:  # noqa: E722
        raise ValueError("could not read " + path)
