"""RL010 passing fixture: every array carries its contract dtype."""

from __future__ import annotations

import numpy as np


def explicit_float(num_users: int) -> np.ndarray:
    return np.zeros((num_users, 6), dtype=float)


def explicit_int(num_users: int) -> np.ndarray:
    return np.arange(num_users, dtype=np.int64)


def explicit_mask(num_users: int) -> np.ndarray:
    return np.ones(num_users, dtype=bool)


def widening_cast(state: np.ndarray) -> np.ndarray:
    """Casting *onto* the allowlist is how drift gets repaired."""
    return state.astype(float)


def like_constructors(state: np.ndarray) -> np.ndarray:
    """``*_like`` inherits the prototype's dtype: exempt by design."""
    return np.zeros_like(state)
