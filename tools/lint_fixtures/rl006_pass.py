"""RL006 passing fixture: full public signatures; private/nested free."""

from __future__ import annotations


def exported(value: int) -> int:
    def helper(x):  # nested functions are not public API
        return x

    return helper(value)


def _private(value):  # leading underscore: not exported
    return value


class PublicThing:
    def method(self, x: float) -> float:
        return x

    @staticmethod
    def build(tag: str) -> "PublicThing":
        return PublicThing()

    def _internal(self, x):
        return x


class _PrivateThing:
    def method(self, x):
        return x
