"""RL002 failing fixture: process-global RNG state."""

from __future__ import annotations

import random

import numpy as np
from random import shuffle


def scramble(values: list) -> list:
    """Every line here mutates or reads shared RNG state."""
    random.seed(0)
    shuffle(values)
    np.random.seed(0)
    return [v + np.random.rand() for v in values]
