"""RL007 passing fixture: monotonic clocks only."""

from __future__ import annotations

import time


def stamp() -> float:
    """Monotonic readings survive NTP slew and VM suspends."""
    return time.monotonic()


def duration() -> float:
    """perf_counter is the right clock for short intervals."""
    start = time.perf_counter()
    end = time.perf_counter()
    return end - start


def coarse() -> int:
    """The _ns variants are monotonic too."""
    return time.monotonic_ns()
