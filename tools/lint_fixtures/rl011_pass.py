"""RL011 passing fixture: pickle-stable payloads, module-level tasks."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ChunkPayload:
    """Descriptors travel; resources are reopened in the worker."""

    chunk_id: int
    sink_path: str


def _chunk_task(chunk: int) -> int:
    """Module-level functions pickle by qualified name."""
    return chunk * 2


def fan_out(pool: ProcessPoolExecutor, chunks: List[int]) -> List[int]:
    doubled = list(pool.map(_chunk_task, chunks))
    future = pool.submit(_chunk_task, doubled[0])
    return [future.result()]
