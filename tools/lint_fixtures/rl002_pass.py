"""RL002 passing fixture: injected seeded generators only."""

from __future__ import annotations

import numpy as np


def scramble(values: list, rng: np.random.Generator) -> list:
    """An injected Generator keeps the episode replayable."""
    order = rng.permutation(len(values))
    return [values[i] for i in order]


def make_rng(seed: int) -> np.random.Generator:
    """Constructing an isolated stream is allowed."""
    return np.random.default_rng(np.random.SeedSequence(seed))
