"""Complexity study: Algorithm 1 vs the exact solver as users grow.

Section III motivates the greedy with NP-hardness: the per-slot
problem is a nonlinear knapsack, so the exact solver's cost explodes
with the number of users while Algorithm 1 stays polynomial.  This
bench measures both on identical instances.
"""

import time

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.knapsack import combined_greedy, solve_exact
from repro.knapsack.random_instances import random_instance
from benchmarks.conftest import record_figure


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def timing_table():
    rows = []
    rng = np.random.default_rng(0)
    for num_items in (2, 4, 6, 8, 10):
        problem = random_instance(
            rng, num_items=num_items, num_options=6, tightness=0.5
        )
        greedy_s = _time(lambda p=problem: combined_greedy(p))
        exact_s = _time(lambda p=problem: solve_exact(p), repeats=3)
        gap = 1.0 - combined_greedy(problem).value / solve_exact(problem).value
        rows.append([num_items, greedy_s * 1e3, exact_s * 1e3, gap])
    return rows


def test_complexity_scaling(benchmark, timing_table):
    rng = np.random.default_rng(1)
    problem = random_instance(rng, num_items=10, num_options=6, tightness=0.5)
    benchmark(lambda: combined_greedy(problem))

    record_figure(
        "complexity_greedy_vs_exact",
        format_table(
            ["users", "greedy (ms)", "exact B&B (ms)", "relative gap"],
            timing_table,
        ),
    )

    greedy_times = [row[1] for row in timing_table]
    exact_times = [row[2] for row in timing_table]
    # Greedy grows mildly: 5x users < 50x time.
    assert greedy_times[-1] < 50 * max(greedy_times[0], 1e-3)
    # The exact solver's growth outpaces the greedy's by a wide factor
    # at 10 users.
    assert exact_times[-1] / greedy_times[-1] > 3.0
    # And the greedy pays almost nothing for that speed.
    assert all(row[3] < 0.1 for row in timing_table)
