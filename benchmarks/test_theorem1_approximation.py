"""Theorem 1 — the 1/2-approximation guarantee, measured.

Runs the combined density/value greedy against the exact optimum on a
large batch of random Theorem-1-class instances and on live slot
problems sampled from the simulator, reporting the distribution of
the approximation ratio.  The guarantee says >= 0.5; the paper's
simulations suggest the greedy is nearly optimal in practice — both
are verified here.  Also benchmarks Algorithm 1's runtime, since
"low-complexity" is part of the claim.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core import DensityValueGreedyAllocator, OfflineOptimalAllocator
from repro.knapsack import combined_greedy, solve_exact
from repro.simulation import SimulationConfig, TraceSimulator
from tests.conftest import make_random_instance
from benchmarks.conftest import record_figure


@pytest.fixture(scope="module")
def ratios():
    rng = np.random.default_rng(0)
    values = []
    for _ in range(300):
        problem = make_random_instance(
            rng,
            num_items=int(rng.integers(2, 6)),
            num_options=int(rng.integers(3, 7)),
            tightness=float(rng.uniform(0.05, 0.95)),
        )
        greedy = combined_greedy(problem)
        optimal = solve_exact(problem)
        base = problem.base_solution().value
        gain_greedy = greedy.value - base
        gain_opt = optimal.value - base
        if gain_opt <= 1e-12:
            continue
        values.append(gain_greedy / gain_opt)
    return np.array(values)


def test_theorem1_ratio_distribution(benchmark, ratios):
    rng = np.random.default_rng(1)
    problem = make_random_instance(rng, num_items=5, num_options=6, tightness=0.5)
    benchmark(lambda: combined_greedy(problem))

    table = format_table(
        ["statistic", "greedy/optimal gain ratio"],
        [
            ["min", float(ratios.min())],
            ["p10", float(np.percentile(ratios, 10))],
            ["median", float(np.median(ratios))],
            ["mean", float(ratios.mean())],
            ["fraction optimal", float((ratios > 1 - 1e-9).mean())],
            ["instances", float(len(ratios))],
        ],
    )
    record_figure("theorem1_approximation_ratio", table)

    assert (ratios >= 0.5 - 1e-7).all(), "Theorem 1 violated"
    assert np.median(ratios) > 0.95, "greedy should be near-optimal in practice"


def test_theorem1_on_live_slot_problems():
    """Sampled slot problems from a live simulation run."""
    captured = []

    class CapturingAllocator(DensityValueGreedyAllocator):
        def allocate(self, problem):
            levels = super().allocate(problem)
            captured.append((problem, list(levels)))
            return levels

    simulator = TraceSimulator(
        SimulationConfig(num_users=5, duration_slots=150, seed=2)
    )
    simulator.run_episode(CapturingAllocator())
    oracle = OfflineOptimalAllocator()

    for problem, levels in captured[::5]:
        optimal = oracle.allocate(problem)
        base = problem.objective_value([1] * problem.num_users)
        gain = problem.objective_value(levels) - base
        gain_opt = problem.objective_value(optimal) - base
        assert gain >= 0.5 * gain_opt - 1e-7


def test_algorithm1_runtime_scales(benchmark):
    """Algorithm 1 at collaborative scale (30 users) stays sub-ms-ish."""
    rng = np.random.default_rng(3)
    problem = make_random_instance(rng, num_items=30, num_options=6, tightness=0.5)
    solution = benchmark(lambda: combined_greedy(problem))
    assert problem.is_feasible(solution.options)
