"""Fig. 7 — real-system evaluation, setup 1 (8 users, single router).

Bars of average QoE (7a), delivery delay (7b), and FPS (7c), plus the
quality/variance breakdown, for Algorithm 1 vs Firefly vs modified
PAVQ, averaged over repeats.

Shape targets from the paper:
* ours has the highest average QoE (paper: +81.9% over Firefly,
  +12.1% over PAVQ — our emulation preserves the ordering and the
  PAVQ gap; the Firefly gap is smaller, see EXPERIMENTS.md);
* ours has the lowest delivery delay and quality variance;
* ours reaches the best frame rate, near the 60 FPS target.
"""

import pytest

from repro.analysis.report import format_table, improvement_percent
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
)
from repro.system import SystemExperiment, setup1_config
from benchmarks.conftest import record_figure


@pytest.fixture(scope="module")
def comparison():
    experiment = SystemExperiment(setup1_config(duration_slots=1200, seed=0))
    return experiment.compare(
        {
            "ours": DensityValueGreedyAllocator(),
            "pavq": PavqAllocator(),
            "firefly": FireflyAllocator(),
        },
        repeats=3,
    )


def test_fig7_run(benchmark, comparison):
    experiment = SystemExperiment(setup1_config(duration_slots=300, seed=1))
    benchmark.pedantic(
        lambda: experiment.run_repeat(DensityValueGreedyAllocator(), 0),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, results in comparison.items():
        rows.append(
            [
                name,
                results.mean("qoe"),
                results.mean("quality"),
                results.mean("delay"),
                results.mean("variance"),
                results.mean_fps(),
            ]
        )
    table = format_table(
        ["algorithm", "avg QoE", "quality", "delay (slots)", "variance", "FPS"],
        rows,
    )
    ours = comparison["ours"].mean("qoe")
    gains = "\n".join(
        f"QoE improvement over {rival}: "
        f"{improvement_percent(ours, comparison[rival].mean('qoe')):+.1f}% "
        f"(paper: {paper})"
        for rival, paper in (("firefly", "+81.9%"), ("pavq", "+12.1%"))
    )
    record_figure("fig7_system_setup1", table + "\n\n" + gains)


def test_fig7a_qoe_ordering(comparison):
    ours = comparison["ours"].mean("qoe")
    pavq = comparison["pavq"].mean("qoe")
    firefly = comparison["firefly"].mean("qoe")
    assert ours > pavq > firefly


def test_fig7b_ours_lowest_delay(comparison):
    ours = comparison["ours"].mean("delay")
    assert ours <= comparison["pavq"].mean("delay")
    assert ours <= comparison["firefly"].mean("delay")


def test_fig7c_ours_best_fps_near_target(comparison):
    ours_fps = comparison["ours"].mean_fps()
    assert ours_fps >= comparison["pavq"].mean_fps()
    assert ours_fps >= comparison["firefly"].mean_fps()
    assert ours_fps > 52.0  # near the 60 FPS target


def test_fig7_variance_ordering(comparison):
    assert (
        comparison["ours"].mean("variance")
        < comparison["firefly"].mean("variance")
    )
