"""Section VIII extensions, measured.

* **Loss-aware allocation** — the paper: "we believe it can be further
  improved by accounting for such [packet loss] information."  We run
  the loss-aware variant of Algorithm 1 in the harsh setup-2
  environment and compare against plain Algorithm 1.
* **Online rendering** — the paper proposes multi-GPU render+encode
  pipelining; we tabulate the minimum GPU pool per class size.
"""

import pytest

from repro.analysis.report import format_table
from repro.core import DensityValueGreedyAllocator, LossAwareAllocator
from repro.system import SystemExperiment, setup2_config
from repro.system.rendering import GpuSpec, min_gpus_for
from benchmarks.conftest import record_figure


@pytest.fixture(scope="module")
def loss_comparison():
    experiment = SystemExperiment(setup2_config(duration_slots=900, seed=0))
    return experiment.compare(
        {
            "alg1": DensityValueGreedyAllocator(),
            "alg1+loss-aware": LossAwareAllocator(),
        },
        repeats=2,
    )


def test_extension_loss_aware(benchmark, loss_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, res.mean("qoe"), res.mean("quality"), res.mean("variance"),
         res.mean_fps()]
        for name, res in loss_comparison.items()
    ]
    record_figure(
        "extension_loss_aware_setup2",
        format_table(["variant", "qoe", "quality", "variance", "fps"], rows),
    )
    aware = loss_comparison["alg1+loss-aware"]
    plain = loss_comparison["alg1"]
    # The extension must not hurt, and should display more frames.
    assert aware.mean("qoe") >= plain.mean("qoe") - 0.05
    assert aware.mean_fps() >= plain.mean_fps() - 0.5


def test_extension_online_rendering_gpu_table(benchmark):
    spec = GpuSpec()
    table_rows = []

    def build():
        rows = []
        for users in (1, 4, 8, 15, 30):
            rows.append(
                [
                    users,
                    min_gpus_for(users, tiles_per_user=4,
                                 tile_bits=150_000.0, level=4, spec=spec),
                ]
            )
        return rows

    table_rows = benchmark(build)
    record_figure(
        "extension_online_rendering",
        format_table(["users", "min GPUs (render+encode in one slot)"],
                     table_rows),
    )
    gpus = [g for _, g in table_rows]
    assert all(g >= 1 for g in gpus), "every class size must be servable"
    assert gpus == sorted(gpus), "GPU demand grows with class size"
    # The paper's 4-GPU workstation handles the 15-user class online.
    fifteen = dict(table_rows)[15]
    assert fifteen <= 8


@pytest.fixture(scope="module")
def router_aware_comparison():
    """Router-constrained scenario: 15 users on two 200 Mbps routers.

    The aggregate server budget (800 Mbps) never binds, but each
    router's air time does; planning against the aggregate B(t) (the
    paper's formulation) overshoots the shared medium, while adding
    one constraint per router backs off before the collision.
    """
    from dataclasses import replace

    from repro.system import setup2_config

    results = {}
    for label, aware in (("aggregate-B", False), ("router-aware", True)):
        config = replace(
            setup2_config(duration_slots=900, seed=0),
            router_capacity_mbps=200.0,
            router_aware=aware,
        )
        experiment = SystemExperiment(config)
        results[label] = experiment.run(DensityValueGreedyAllocator(), repeats=2)
    return results


def test_extension_router_aware(benchmark, router_aware_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, res.mean("qoe"), res.mean("quality"), res.mean("delay"),
         res.mean_fps()]
        for name, res in router_aware_comparison.items()
    ]
    record_figure(
        "extension_router_aware",
        format_table(["planning", "qoe", "quality", "delay", "fps"], rows),
    )
    aware = router_aware_comparison["router-aware"]
    aggregate = router_aware_comparison["aggregate-B"]
    # Router-aware planning must not hurt, and should reduce delay on
    # the congested medium.
    assert aware.mean("qoe") >= aggregate.mean("qoe") - 0.05
    assert aware.mean("delay") <= aggregate.mean("delay") + 0.05
