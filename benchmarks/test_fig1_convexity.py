"""Fig. 1 — the two measured convexities the model rests on.

* Fig. 1a: tile-set size vs quality level for two random contents is
  convex and increasing.
* Fig. 1b: mean RTT vs sending rate on a 15 Mbps-capped link is convex
  and increasing (M/M/1 queueing).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.content.rate import RateModel, is_convex_increasing
from repro.simulation.delaymodel import mean_rtt_curve
from benchmarks.conftest import record_figure


def test_fig1a_tile_size_vs_quality(benchmark):
    model = RateModel(seed=42)
    contents = [3, 17]  # "two randomly selected contents"

    curves = benchmark(lambda: [model.curve(c).as_tuple() for c in contents])

    rows = []
    for level in range(1, 7):
        rows.append(
            [level] + [curve[level - 1] for curve in curves]
        )
    table = format_table(
        ["quality level", "content A (Mbps)", "content B (Mbps)"], rows
    )
    record_figure("fig1a_tile_size_vs_quality", table)

    for curve in curves:
        assert is_convex_increasing(curve)


def test_fig1b_rtt_vs_sending_rate(benchmark):
    rates = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 13.5]

    curve = benchmark.pedantic(
        lambda: mean_rtt_curve(rates, capacity_mbps=15.0, num_samples=40_000),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["sending rate (Mbps)", "mean RTT (ms)"],
        [[r, rtt] for r, rtt in zip(rates, curve)],
    )
    record_figure("fig1b_rtt_vs_rate", table)

    increments = np.diff(curve)
    assert (increments > 0).all(), "RTT must increase with sending rate"
    assert (np.diff(increments) > 0).all(), "RTT must be convex in rate"
