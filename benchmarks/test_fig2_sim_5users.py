"""Fig. 2 — trace-based simulation with 5 users.

Reproduces the four CDF panels (average QoE, average quality, average
delivery delay, quality variance) for Algorithm 1, the per-slot
offline optimum, Firefly AQC, and modified PAVQ on identical traces.

Shape targets from the paper:
* ours ~= offline optimal on every metric (Fig. 2a-d);
* ours beats Firefly and PAVQ on average QoE (Fig. 2a);
* PAVQ lands close to the optimal QoE via a different allocation
  (its delay/variance split differs);
* ours trades a little average quality for better delay and variance.
"""

import pytest

from repro.analysis.report import format_table
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    OfflineOptimalAllocator,
    PavqAllocator,
)
from repro.simulation import SimulationConfig, TraceSimulator
from benchmarks.conftest import record_figure

QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


@pytest.fixture(scope="module")
def comparison():
    simulator = TraceSimulator(
        SimulationConfig(num_users=5, duration_slots=900, seed=0)
    )
    allocators = {
        "ours": DensityValueGreedyAllocator(),
        "optimal": OfflineOptimalAllocator(),
        "pavq": PavqAllocator(),
        "firefly": FireflyAllocator(),
    }
    return simulator.compare(allocators, num_episodes=3)


def _cdf_table(comparison, metric):
    rows = []
    for name, results in comparison.items():
        cdf = results.cdf(metric)
        rows.append([name] + [cdf.quantile(q) for q in QUANTILES]
                    + [results.mean(metric)])
    headers = ["algorithm"] + [f"p{int(q * 100):02d}" for q in QUANTILES] + ["mean"]
    return format_table(headers, rows)


def test_fig2_run(benchmark, comparison):
    """Benchmark entry: one extra episode of the headline algorithm."""
    simulator = TraceSimulator(
        SimulationConfig(num_users=5, duration_slots=300, seed=1)
    )
    benchmark.pedantic(
        lambda: simulator.run_episode(DensityValueGreedyAllocator()),
        rounds=1,
        iterations=1,
    )
    from repro.analysis import ascii_cdf

    for panel, metric in [
        ("fig2a_qoe_cdf_5users", "qoe"),
        ("fig2b_quality_cdf_5users", "quality"),
        ("fig2c_delay_cdf_5users", "delay"),
        ("fig2d_variance_cdf_5users", "variance"),
    ]:
        curves = ascii_cdf(
            {name: results.cdf(metric) for name, results in comparison.items()}
        )
        record_figure(panel, _cdf_table(comparison, metric) + "\n\n" + curves)


def test_fig2a_ours_matches_offline_optimal(comparison):
    ours = comparison["ours"].mean("qoe")
    optimal = comparison["optimal"].mean("qoe")
    assert ours >= 0.98 * optimal


def test_fig2a_ours_beats_baselines(comparison):
    ours = comparison["ours"].mean("qoe")
    assert ours > comparison["firefly"].mean("qoe")
    assert ours >= comparison["pavq"].mean("qoe") - 1e-9


def test_fig2a_pavq_close_to_optimal(comparison):
    """The paper notes modified PAVQ is also close to the optimal QoE."""
    pavq = comparison["pavq"].mean("qoe")
    optimal = comparison["optimal"].mean("qoe")
    assert pavq >= 0.90 * optimal


def test_fig2cd_ours_improves_delay_and_variance_over_firefly(comparison):
    assert comparison["ours"].mean("delay") < comparison["firefly"].mean("delay")
    assert comparison["ours"].mean("variance") < comparison["firefly"].mean("variance")


def test_fig2b_firefly_chases_quality(comparison):
    """Firefly's LRU max-fill does not lose on raw viewed quality by much;

    its QoE deficit comes from delay and variance (Fig. 2b vs 2c/2d)."""
    firefly_quality = comparison["firefly"].mean("quality")
    ours_quality = comparison["ours"].mean("quality")
    assert firefly_quality >= 0.75 * ours_quality
