"""Fig. 3 — trace-based simulation with 30 users.

Same panels as Fig. 2 but at collaborative scale (no offline optimum:
the exact solver is exponential in users).  Shape targets: the Fig. 2
orderings persist at 30 users.
"""

import pytest

from repro.analysis.report import format_table
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
)
from repro.simulation import SimulationConfig, TraceSimulator
from benchmarks.conftest import record_figure

QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


@pytest.fixture(scope="module")
def comparison():
    simulator = TraceSimulator(
        SimulationConfig(num_users=30, duration_slots=600, seed=0)
    )
    allocators = {
        "ours": DensityValueGreedyAllocator(),
        "pavq": PavqAllocator(),
        "firefly": FireflyAllocator(),
    }
    return simulator.compare(allocators, num_episodes=2)


def test_fig3_run(benchmark, comparison):
    simulator = TraceSimulator(
        SimulationConfig(num_users=30, duration_slots=120, seed=1)
    )
    benchmark.pedantic(
        lambda: simulator.run_episode(DensityValueGreedyAllocator()),
        rounds=1,
        iterations=1,
    )
    for panel, metric in [
        ("fig3a_qoe_cdf_30users", "qoe"),
        ("fig3b_quality_cdf_30users", "quality"),
        ("fig3c_delay_cdf_30users", "delay"),
        ("fig3d_variance_cdf_30users", "variance"),
    ]:
        rows = []
        for name, results in comparison.items():
            cdf = results.cdf(metric)
            rows.append(
                [name]
                + [cdf.quantile(q) for q in QUANTILES]
                + [results.mean(metric)]
            )
        headers = (
            ["algorithm"] + [f"p{int(q * 100):02d}" for q in QUANTILES] + ["mean"]
        )
        record_figure(panel, format_table(headers, rows))


def test_fig3a_ordering_persists_at_scale(comparison):
    ours = comparison["ours"].mean("qoe")
    assert ours > comparison["firefly"].mean("qoe")
    assert ours >= comparison["pavq"].mean("qoe") - 1e-9


def test_fig3d_variance_ordering(comparison):
    # PAVQ is variance-centric by construction, so ours and PAVQ land
    # within noise of each other (the paper's Fig. 3d shows the same
    # near-overlap); the decisive claim is that both crush Firefly.
    assert (
        comparison["ours"].mean("variance")
        <= 1.05 * comparison["pavq"].mean("variance")
    )
    assert (
        comparison["ours"].mean("variance")
        < 0.5 * comparison["firefly"].mean("variance")
    )


def test_fig3c_delay_ordering(comparison):
    assert comparison["ours"].mean("delay") < comparison["firefly"].mean("delay")
