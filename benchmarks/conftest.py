"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper: it runs the
workload, prints the figure's rows (captured by pytest; use ``-s`` to
stream), writes them to ``benchmarks/results/``, and asserts the
*shape* the paper reports (orderings, crossovers, approximation
ratios) rather than absolute numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_figure(name: str, text: str) -> None:
    """Print a figure's rows and persist them for EXPERIMENTS.md."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
