"""Ablations of the design choices DESIGN.md calls out.

* **Greedy composition** — density-only and value-only versus the
  combined Algorithm 1 (the paper motivates combining them with two
  adversarial examples; here we measure the effect in live traffic).
* **Prediction awareness** — Algorithm 1 with the delta_n machinery
  disabled (delta forced to 1) versus the full objective, quantifying
  the contribution of modelling imperfect motion prediction.
* **Dedup** — bandwidth saved by the repetitive-tile mechanism on a
  static scene versus a live scene.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core import (
    DensityGreedyAllocator,
    DensityValueGreedyAllocator,
    ValueGreedyAllocator,
)
from repro.core.scheduler import CollaborativeVrScheduler
from repro.simulation import SimulationConfig, TraceSimulator
from repro.system import SystemExperiment, setup1_config
from benchmarks.conftest import record_figure


@pytest.fixture(scope="module")
def greedy_comparison():
    simulator = TraceSimulator(
        SimulationConfig(num_users=5, duration_slots=600, seed=0)
    )
    return simulator.compare(
        {
            "combined": DensityValueGreedyAllocator(),
            "density-only": DensityGreedyAllocator(),
            "value-only": ValueGreedyAllocator(),
        },
        num_episodes=2,
    )


def test_ablation_greedy_composition(benchmark, greedy_comparison):
    simulator = TraceSimulator(
        SimulationConfig(num_users=5, duration_slots=150, seed=1)
    )
    benchmark.pedantic(
        lambda: simulator.run_episode(DensityGreedyAllocator()),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, results.mean("qoe"), results.mean("quality"),
         results.mean("delay"), results.mean("variance")]
        for name, results in greedy_comparison.items()
    ]
    record_figure(
        "ablation_greedy_composition",
        format_table(["variant", "qoe", "quality", "delay", "variance"], rows),
    )
    combined = greedy_comparison["combined"].mean("qoe")
    assert combined >= greedy_comparison["density-only"].mean("qoe") - 1e-6
    assert combined >= greedy_comparison["value-only"].mean("qoe") - 1e-6


class _DeltaBlindScheduler(CollaborativeVrScheduler):
    """Scheduler that pretends motion prediction is perfect."""

    def delta(self, user: int) -> float:
        return 1.0


@pytest.fixture(scope="module")
def prediction_ablation():
    """System emulation with and without prediction/miss awareness.

    In the trace simulator the coverage indicator rarely fires
    (delta ~ 1), so the delta machinery is inert there; the setup-2
    emulation is where frames actually miss — lost packets, late
    arrivals, wrong-FoV deliveries — and the running delta estimate is
    what lets Algorithm 1 adapt to them.
    """
    from repro.system.experiment import setup2_config

    results = {}
    for label, blind in (("delta-aware", False), ("delta-blind", True)):
        experiment = SystemExperiment(setup2_config(duration_slots=900, seed=0))
        if blind:
            import repro.system.server as server_module

            original = server_module.CollaborativeVrScheduler
            server_module.CollaborativeVrScheduler = _DeltaBlindScheduler
            try:
                results[label] = experiment.run(
                    DensityValueGreedyAllocator(), repeats=2
                )
            finally:
                server_module.CollaborativeVrScheduler = original
        else:
            results[label] = experiment.run(
                DensityValueGreedyAllocator(), repeats=2
            )
    return results


def test_ablation_prediction_awareness(benchmark, prediction_ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, results.mean("qoe"), results.mean("quality"),
         results.mean("variance"), results.mean_fps()]
        for name, results in prediction_ablation.items()
    ]
    record_figure(
        "ablation_prediction_awareness",
        format_table(["variant", "qoe", "quality", "variance", "fps"], rows),
    )
    # Where misses are frequent, the delta-aware objective must not
    # lose to the blind one.
    aware = prediction_ablation["delta-aware"].mean("qoe")
    blind = prediction_ablation["delta-blind"].mean("qoe")
    assert aware >= blind - 0.02 * abs(blind)


@pytest.fixture(scope="module")
def dedup_traffic():
    from repro.system.server import EdgeServer

    traffic = {}
    for label, refresh in (("live", 1), ("semi-static", 4), ("static", 0)):
        demands = []

        class MeteredServer(EdgeServer):
            def plan_slot(self):
                plan = super().plan_slot()
                demands.append(sum(plan.demands_mbps))
                return plan

        import repro.system.experiment as experiment_module

        config = replace(
            setup1_config(duration_slots=600, seed=1),
            content_refresh_slots=refresh,
        )
        experiment = SystemExperiment(config)
        original = experiment_module.EdgeServer
        experiment_module.EdgeServer = MeteredServer
        try:
            results = experiment.run(DensityValueGreedyAllocator(), repeats=1)
        finally:
            experiment_module.EdgeServer = original
        traffic[label] = (float(np.mean(demands)), results.mean("qoe"))
    return traffic


def test_ablation_dedup_bandwidth(benchmark, dedup_traffic):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, mbps, qoe] for name, (mbps, qoe) in dedup_traffic.items()
    ]
    record_figure(
        "ablation_dedup_bandwidth",
        format_table(["content", "offered traffic (Mbps)", "qoe"], rows),
    )
    live = dedup_traffic["live"][0]
    static = dedup_traffic["static"][0]
    # Section V: dedup "significantly saves the network bandwidth".
    assert static < 0.6 * live
    assert dedup_traffic["semi-static"][0] < live


@pytest.fixture(scope="module")
def gop_burstiness():
    """Constant-size abstraction vs GoP-bursty frame sizes."""
    results = {}
    for label, gop in (("constant (paper)", 0), ("gop-30 bursty", 30)):
        config = replace(
            setup1_config(duration_slots=900, seed=1), gop_length=gop
        )
        experiment = SystemExperiment(config)
        results[label] = experiment.run(DensityValueGreedyAllocator(), repeats=2)
    return results


def test_ablation_gop_burstiness(benchmark, gop_burstiness):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, res.mean("qoe"), res.mean("delay"), res.mean_fps()]
        for name, res in gop_burstiness.items()
    ]
    record_figure(
        "ablation_gop_burstiness",
        format_table(["frame sizes", "qoe", "delay", "fps"], rows),
    )
    constant = gop_burstiness["constant (paper)"]
    bursty = gop_burstiness["gop-30 bursty"]
    # Burstiness costs frames (I-frame slots overshoot), but the
    # variance-anchored allocator keeps the QoE loss bounded.
    assert bursty.mean_fps() <= constant.mean_fps() + 0.5
    assert bursty.mean("qoe") > 0.5 * constant.mean("qoe")


@pytest.fixture(scope="module")
def sanity_baselines():
    """Algorithm 1 vs the QoE-blind sanity baselines."""
    from repro.core.baselines import MaxMinFairAllocator, UniformAllocator

    simulator = TraceSimulator(
        SimulationConfig(num_users=5, duration_slots=600, seed=0)
    )
    return simulator.compare(
        {
            "ours": DensityValueGreedyAllocator(),
            "uniform": UniformAllocator(),
            "max-min-fair": MaxMinFairAllocator(),
        },
        num_episodes=2,
    )


def test_ablation_sanity_baselines(benchmark, sanity_baselines):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, res.mean("qoe"), res.mean("quality"), res.mean("delay"),
         res.mean("variance"), res.mean_fairness("qoe")]
        for name, res in sanity_baselines.items()
    ]
    record_figure(
        "ablation_sanity_baselines",
        format_table(
            ["allocator", "qoe", "quality", "delay", "variance", "fairness"],
            rows,
        ),
    )
    ours = sanity_baselines["ours"].mean("qoe")
    assert ours > sanity_baselines["uniform"].mean("qoe")
    assert ours > sanity_baselines["max-min-fair"].mean("qoe")
