"""Sensitivity of the QoE posture to alpha and beta (Section II).

The paper motivates the weights qualitatively (gaming wants a large
alpha, museum touring a large beta); this bench quantifies the
trade-off surface: sweeping alpha trades quality for delay, sweeping
beta trades quality for consistency, monotonically.
"""

import pytest

from repro.analysis.report import format_table
from repro.core import DensityValueGreedyAllocator
from repro.simulation import SimulationConfig
from repro.simulation.sweep import run_sweep, sweep_table
from benchmarks.conftest import record_figure

BASE = SimulationConfig(num_users=4, duration_slots=400, seed=0)


@pytest.fixture(scope="module")
def alpha_sweep():
    return run_sweep(
        BASE,
        DensityValueGreedyAllocator,
        {"alpha": [0.0, 0.05, 0.2, 1.0]},
        num_episodes=1,
    )


@pytest.fixture(scope="module")
def beta_sweep():
    return run_sweep(
        BASE,
        DensityValueGreedyAllocator,
        {"beta": [0.0, 0.25, 1.0, 4.0]},
        num_episodes=1,
    )


def test_alpha_trades_quality_for_delay(benchmark, alpha_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = sweep_table(alpha_sweep, metrics=("quality", "delay"))
    record_figure(
        "sensitivity_alpha",
        format_table(["alpha", "quality", "delay"], rows),
    )
    delays = [row[2] for row in rows]
    qualities = [row[1] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(delays, delays[1:])), (
        "raising alpha must not raise delay"
    )
    assert qualities[-1] <= qualities[0] + 1e-9, (
        "delay sensitivity is bought with quality"
    )


def test_beta_trades_quality_for_consistency(benchmark, beta_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = sweep_table(beta_sweep, metrics=("quality", "variance"))
    record_figure(
        "sensitivity_beta",
        format_table(["beta", "quality", "variance"], rows),
    )
    variances = [row[2] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(variances, variances[1:])), (
        "raising beta must not raise variance"
    )
