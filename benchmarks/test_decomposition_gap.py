"""Eq. (8) — the vanishing gap of the per-slot decomposition.

The paper argues that sequentially solving the per-slot problems (5)
loses nothing asymptotically versus the full-horizon problem (1):

    lim_{T->inf} (1/T) (QoE_hat(T) - QoE*(T)) = 0.

We measure the gap directly on a small instance where the horizon
optimum ``QoE*(T)`` is computable by exhaustive search over all level
sequences: one user, three quality levels, a fast warm-up followed by
a permanently slower link (so the variance term couples slots
nontrivially).  The myopic per-slot policy grabs the cheap high level
during warm-up and pays a variance transient afterwards; the horizon
optimum holds a constant level.  Eq. (8) predicts the per-slot
deficit decays with the horizon.

Note the beta window: the paper's limit assumes *continuous* quality.
With coarse discrete levels and a large beta, the myopic policy can
lock in to the warm-up level (dropping one whole level costs more
variance than the delay it saves) and the gap persists — a real,
measurable discreteness effect.  The weights here sit inside the
window where the optimum is constant but the greedy still adapts,
which is the regime eq. (8) describes.
"""

import itertools

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.allocation import DensityValueGreedyAllocator, SlotProblem, UserSlotState
from repro.core.qoe import QoEWeights, UserQoELedger
from repro.simulation.delaymodel import MM1DelayModel
from benchmarks.conftest import record_figure

SIZES = (6.0, 14.0, 22.0)
WEIGHTS = QoEWeights(alpha=0.3, beta=1.15)
_MODEL = MM1DelayModel()

#: Two fast warm-up slots, then a permanently slower link.  The
#: myopic per-slot policy takes the high level while it is cheap,
#: then pays a variance transient when the link degrades; the horizon
#: optimum anticipates the change.  This is exactly the regime where
#: QoE_hat(T) < QoE*(T), and eq. (8) says the per-slot deficit decays.
_FAST_SLOTS = 2


def _bandwidth(t):
    """Slot bandwidth (t is 1-based): fast warm-up, then slow."""
    return 50.0 if t <= _FAST_SLOTS else 25.0


def _delay(level, t):
    return _MODEL.delay(SIZES[level - 1], _bandwidth(t))


def horizon_optimum_exhaustive(horizon):
    """Exhaustive QoE*(T) over all 3^T level sequences (small T)."""
    best = -np.inf
    for sequence in itertools.product((1, 2, 3), repeat=horizon):
        viewed = np.array(sequence, dtype=float)
        qoe = (
            viewed.sum()
            - WEIGHTS.alpha * sum(_delay(l, t + 1) for t, l in enumerate(sequence))
            - WEIGHTS.beta * horizon * viewed.var()
        )
        if qoe > best:
            best = qoe
    return best


def horizon_optimum(horizon):
    """Exact QoE*(T) by DP over the sufficient statistics.

    A sequence's QoE depends on its levels only through ``sum q`` and
    ``sum q^2`` (the variance term) plus an additive, slot-separable
    delay cost, so an exact DP over ``(sum q, sum q^2)`` states
    replaces the 3^T enumeration and scales to T ~ 40.  Tests verify
    it against the exhaustive form on small horizons.
    """
    # state (sum_q, sum_q2) -> best accumulated (-alpha * total delay)
    states = {(0, 0): 0.0}
    for t in range(1, horizon + 1):
        new_states = {}
        for (sum_q, sum_q2), delay_score in states.items():
            for level in (1, 2, 3):
                key = (sum_q + level, sum_q2 + level * level)
                candidate = delay_score - WEIGHTS.alpha * _delay(level, t)
                if candidate > new_states.get(key, -np.inf):
                    new_states[key] = candidate
        states = new_states
    return max(
        sum_q + delay_score - WEIGHTS.beta * (sum_q2 - sum_q * sum_q / horizon)
        for (sum_q, sum_q2), delay_score in states.items()
    )


def sequential_policy_qoe(horizon):
    """QoE_hat(T): Algorithm 1 applied slot by slot."""
    allocator = DensityValueGreedyAllocator()
    ledger = UserQoELedger()
    qbar = 0.0
    for t in range(1, horizon + 1):
        bandwidth = _bandwidth(t)
        user = UserSlotState(
            sizes=SIZES,
            delay_of_rate=_MODEL.delay_fn(bandwidth),
            delta=1.0,
            qbar=qbar,
            cap_mbps=bandwidth,
        )
        problem = SlotProblem(t, (user,), bandwidth, WEIGHTS)
        level = allocator.allocate(problem)[0]
        ledger.record(level, 1, _delay(level, t))
        qbar = ledger.mean_viewed_quality()
    return ledger.qoe(WEIGHTS)


@pytest.fixture(scope="module")
def gap_series():
    horizons = [5, 9, 15, 25, 41]
    rows = []
    for horizon in horizons:
        optimal = horizon_optimum(horizon)
        sequential = sequential_policy_qoe(horizon)
        rows.append((horizon, (optimal - sequential) / horizon, optimal / horizon))
    return rows


def test_eq8_gap_shrinks_with_horizon(benchmark, gap_series):
    benchmark.pedantic(lambda: sequential_policy_qoe(64), rounds=1, iterations=1)

    table = format_table(
        ["horizon T", "per-slot gap", "optimal per-slot QoE"],
        [[t, gap, opt] for t, gap, opt in gap_series],
    )
    record_figure("eq8_decomposition_gap", table)

    gaps = [gap for _, gap, _ in gap_series]
    # The per-slot deficit peaks around the regime change and then
    # decays with the horizon, ending small relative to the QoE scale
    # (eq. (8) is exact only for continuous levels; discrete levels
    # leave a negligible floor).
    assert gaps[-1] <= max(gaps) + 1e-9
    assert gaps[-1] <= gaps[-2] + 1e-9
    final_opt = gap_series[-1][2]
    assert gaps[-1] < 0.05 * abs(final_opt)


def test_eq8_sequential_never_beats_optimum(gap_series):
    for _, gap, _ in gap_series:
        assert gap >= -1e-9


def test_eq8_dp_matches_exhaustive():
    """The sufficient-statistics DP equals brute force on small T."""
    for horizon in (3, 5, 7):
        assert horizon_optimum(horizon) == pytest.approx(
            horizon_optimum_exhaustive(horizon), rel=1e-12, abs=1e-9
        )


def test_eq8_long_run_average_stabilises():
    """QoE_hat(T)/T converges (Cesaro) as T grows."""
    values = [sequential_policy_qoe(t) / t for t in (50, 100, 200)]
    assert abs(values[-1] - values[-2]) < abs(values[1] - values[0]) + 1e-9
    assert abs(values[-1] - values[-2]) < 0.05
