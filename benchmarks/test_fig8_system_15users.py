"""Fig. 8 — real-system evaluation, setup 2 (15 users, two routers).

The harsher setting: two bridged routers share an interference field,
so capacity variance is much larger and throughput estimates chase a
moving target.

Shape targets from the paper:
* both baselines degrade sharply versus setup 1 ("vulnerable to the
  dynamic network environment"), ours degrades gracefully;
* ours beats PAVQ by a much wider margin than in setup 1 (paper:
  +214.3%);
* Firefly is the worst and collapses toward (the paper: below) zero
  QoE.
"""

import pytest

from repro.analysis.report import format_table, improvement_percent
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
)
from repro.system import SystemExperiment, setup1_config, setup2_config
from benchmarks.conftest import record_figure


@pytest.fixture(scope="module")
def comparison():
    experiment = SystemExperiment(setup2_config(duration_slots=1200, seed=0))
    return experiment.compare(
        {
            "ours": DensityValueGreedyAllocator(),
            "pavq": PavqAllocator(),
            "firefly": FireflyAllocator(),
        },
        repeats=3,
    )


@pytest.fixture(scope="module")
def setup1_comparison():
    experiment = SystemExperiment(setup1_config(duration_slots=1200, seed=0))
    return experiment.compare(
        {
            "ours": DensityValueGreedyAllocator(),
            "pavq": PavqAllocator(),
            "firefly": FireflyAllocator(),
        },
        repeats=3,
    )


def test_fig8_run(benchmark, comparison):
    experiment = SystemExperiment(setup2_config(duration_slots=240, seed=1))
    benchmark.pedantic(
        lambda: experiment.run_repeat(DensityValueGreedyAllocator(), 0),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, results in comparison.items():
        rows.append(
            [
                name,
                results.mean("qoe"),
                results.mean("quality"),
                results.mean("delay"),
                results.mean("variance"),
                results.mean_fps(),
            ]
        )
    table = format_table(
        ["algorithm", "avg QoE", "quality", "delay (slots)", "variance", "FPS"],
        rows,
    )
    ours = comparison["ours"].mean("qoe")
    pavq = comparison["pavq"].mean("qoe")
    firefly = comparison["firefly"].mean("qoe")
    notes = (
        f"QoE improvement over pavq: {improvement_percent(ours, pavq):+.1f}% "
        "(paper: +214.3%)\n"
        f"firefly QoE: {firefly:.3f} (paper: negative)"
    )
    record_figure("fig8_system_setup2", table + "\n\n" + notes)


def test_fig8_qoe_ordering(comparison):
    ours = comparison["ours"].mean("qoe")
    pavq = comparison["pavq"].mean("qoe")
    firefly = comparison["firefly"].mean("qoe")
    assert ours > pavq > firefly


def test_fig8_firefly_collapses(comparison):
    """Firefly's QoE collapses toward zero under two-router variance."""
    firefly = comparison["firefly"].mean("qoe")
    ours = comparison["ours"].mean("qoe")
    assert firefly < 0.55 * ours


def test_fig8_gaps_widen_vs_setup1(comparison, setup1_comparison):
    """The baselines' relative deficit grows from setup 1 to setup 2."""
    def firefly_gap(c):
        return improvement_percent(
            c["ours"].mean("qoe"), c["firefly"].mean("qoe")
        )

    assert firefly_gap(comparison) > firefly_gap(setup1_comparison)


def test_fig8_everyone_degrades_vs_setup1(comparison, setup1_comparison):
    for name in ("ours", "pavq", "firefly"):
        assert comparison[name].mean("qoe") < setup1_comparison[name].mean("qoe")


def test_fig8_ours_degrades_most_gracefully(comparison, setup1_comparison):
    """Ours retains the largest fraction of its setup-1 QoE."""
    def retention(name):
        return comparison[name].mean("qoe") / setup1_comparison[name].mean("qoe")

    assert retention("ours") > retention("firefly")
    assert retention("ours") > retention("pavq")
