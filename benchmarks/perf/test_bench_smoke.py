"""Smoke the benchmark harness at tiny scale (not a timing test)."""

import json

from repro.perf import (
    BENCH_ALLOCATOR_FILE,
    BENCH_SIMULATOR_FILE,
    bench_allocator,
    bench_kernel,
    bench_simulator,
    persist_run,
)


def test_bench_allocator_smoke():
    run = bench_allocator(sizes=(5, 30), repeats=1)
    assert [r["num_items"] for r in run["sizes"]] == [5, 30]
    for row in run["sizes"]:
        assert row["solutions_identical"]
        assert row["reference_s"] > 0 and row["heap_s"] > 0
        assert row["array_s"] > 0 and row["array_speedup"] > 0


def test_bench_simulator_smoke():
    run = bench_simulator(num_users=2, num_slots=60, num_episodes=2, max_workers=2)
    assert run["parallel_matches_serial"]
    assert run["warm_slots_per_s"] > 0
    if run["parallel_fallback"]:
        # A pool that cannot pay for itself (e.g. a 1-core box) is
        # recorded honestly instead of as a sub-1.0 speedup.
        assert run["parallel_speedup"] is None
        assert run["parallel_reason"]
    else:
        assert run["parallel_speedup"] > 0


def test_bench_kernel_smoke():
    run = bench_kernel(num_users=50, num_levels=4, num_slots=1, repeats=1)
    assert run["solutions_identical"]
    assert run["array_slots_per_s"] > 0 and run["object_slots_per_s"] > 0
    assert run["predictor"]["identical"]
    assert run["coverage"]["identical"]
    assert run["batch_nbytes"] > 0


def test_persist_run_bounds_history(tmp_path):
    path = tmp_path / BENCH_ALLOCATOR_FILE
    for i in range(25):
        document = persist_run({"kind": "allocator", "i": i}, path, now=float(i))
    assert len(document["runs"]) == 20
    assert document["latest"]["i"] == 24
    assert document["runs"][0]["i"] == 5  # oldest runs dropped
    on_disk = json.loads(path.read_text())
    assert on_disk["latest"]["cpu_count"] is not None

    # A corrupt file is replaced, not crashed on.
    bad = tmp_path / BENCH_SIMULATOR_FILE
    bad.write_text("{not json")
    document = persist_run({"kind": "simulator"}, bad, now=0.0)
    assert len(document["runs"]) == 1
