"""Robustness and scalability studies.

* **Knowledge robustness** — Section IV assumes perfect throughput
  knowledge, Section VI drops that assumption; the simulator's
  imperfect-knowledge mode bridges the two, measuring how much each
  algorithm loses when the allocator sees EMA estimates instead of
  the true ``B_n(t)``.
* **Scalability** — the paper claims a low-complexity algorithm; we
  measure per-slot allocation runtime and per-user QoE as the
  population grows with the server budget (B = 36 Mbps per user).
* **Predictor sensitivity** — Section II: any motion predictor can be
  plugged in; with a tight margin the predictor choice becomes
  visible in QoE.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
)
from repro.simulation import SimulationConfig, TraceSimulator
from benchmarks.conftest import record_figure


@pytest.fixture(scope="module")
def knowledge_study():
    results = {}
    for label, perfect in (("perfect-B", True), ("estimated-B", False)):
        config = SimulationConfig(
            num_users=5, duration_slots=600, seed=0,
            perfect_network_knowledge=perfect, ema_alpha=0.1,
        )
        simulator = TraceSimulator(config)
        results[label] = simulator.compare(
            {
                "ours": DensityValueGreedyAllocator(),
                "pavq": PavqAllocator(),
                "firefly": FireflyAllocator(),
            },
            num_episodes=2,
        )
    return results


def test_knowledge_robustness(benchmark, knowledge_study):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for label, comparison in knowledge_study.items():
        for name, res in comparison.items():
            rows.append([label, name, res.mean("qoe"), res.mean("delay")])
    record_figure(
        "robustness_knowledge",
        format_table(["knowledge", "algorithm", "qoe", "delay"], rows),
    )
    for name in ("ours", "pavq", "firefly"):
        perfect = knowledge_study["perfect-B"][name].mean("qoe")
        estimated = knowledge_study["estimated-B"][name].mean("qoe")
        # Estimation can help slightly by luck but must not transform
        # the outcome; and it must never double an algorithm's QoE.
        assert estimated < 1.2 * perfect
    # Our algorithm keeps its lead under estimated knowledge.
    est = knowledge_study["estimated-B"]
    assert est["ours"].mean("qoe") >= est["pavq"].mean("qoe") - 1e-9
    assert est["ours"].mean("qoe") > est["firefly"].mean("qoe")


def test_scalability(benchmark):
    rows = []
    for num_users in (2, 5, 10, 20):
        config = SimulationConfig(num_users=num_users, duration_slots=200, seed=0)
        simulator = TraceSimulator(config)
        start = time.perf_counter()
        results = simulator.run(DensityValueGreedyAllocator(), num_episodes=1)
        elapsed_ms = (time.perf_counter() - start) / config.duration_slots * 1e3
        rows.append(
            [num_users, results.mean("qoe"), results.mean_fairness("qoe"),
             elapsed_ms]
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_figure(
        "scalability",
        format_table(
            ["users", "per-user qoe", "jain fairness", "ms/slot (sim)"], rows
        ),
    )
    qoes = [row[1] for row in rows]
    # Per-user QoE roughly flat as the system scales with B = 36N.
    assert min(qoes) > 0.8 * max(qoes)
    # Runtime grows sub-quadratically: 10x users < 40x cost.
    assert rows[-1][3] < 40 * rows[0][3]
    # Fairness stays high at scale.
    assert all(row[2] > 0.85 for row in rows)


def test_predictor_sensitivity(benchmark):
    from repro.prediction import PREDICTOR_REGISTRY

    rows = []
    means = {}
    for name in PREDICTOR_REGISTRY:
        config = SimulationConfig(
            num_users=3, duration_slots=600, seed=0,
            predictor=name, margin_deg=3.0, cell_tolerance=0,
        )
        simulator = TraceSimulator(config)
        results = simulator.run(DensityValueGreedyAllocator(), num_episodes=1)
        means[name] = results.mean("qoe")
        rows.append([name, results.mean("qoe"), results.mean("quality"),
                     results.mean("variance")])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_figure(
        "predictor_sensitivity",
        format_table(["predictor", "qoe", "quality", "variance"], rows),
    )
    # Trend-aware prediction beats the zero-order hold under a tight
    # margin — the reason the paper predicts motion at all.
    assert means["linear-regression"] > means["last-pose"]
    assert means["constant-velocity"] > means["last-pose"]
