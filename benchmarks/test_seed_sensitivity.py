"""Seed sensitivity of the headline improvement percentages.

The paper reports single numbers (+12.1%, +81.9%, +214.3%) from five
repetitions of one testbed configuration.  Our synthetic substrate
lets us ask how stable such numbers are: this bench re-runs both
setups under several world seeds and reports the spread of the
QoE-improvement percentages, bootstrap-style.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table, improvement_percent
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
)
from repro.system import SystemExperiment, setup1_config, setup2_config

from benchmarks.conftest import record_figure

SEEDS = (0, 1, 2)


def _gaps(make_config):
    gaps = {"pavq": [], "firefly": []}
    for seed in SEEDS:
        experiment = SystemExperiment(make_config(duration_slots=600, seed=seed))
        comparison = experiment.compare(
            {
                "ours": DensityValueGreedyAllocator(),
                "pavq": PavqAllocator(),
                "firefly": FireflyAllocator(),
            },
            repeats=2,
        )
        ours = comparison["ours"].mean("qoe")
        for rival in gaps:
            gaps[rival].append(
                improvement_percent(ours, comparison[rival].mean("qoe"))
            )
    return gaps


@pytest.fixture(scope="module")
def setup1_gaps():
    return _gaps(setup1_config)


@pytest.fixture(scope="module")
def setup2_gaps():
    return _gaps(setup2_config)


def test_seed_sensitivity(benchmark, setup1_gaps, setup2_gaps):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for label, gaps in (("setup1", setup1_gaps), ("setup2", setup2_gaps)):
        for rival, values in gaps.items():
            rows.append(
                [
                    label,
                    f"vs {rival}",
                    float(np.min(values)),
                    float(np.mean(values)),
                    float(np.max(values)),
                ]
            )
    record_figure(
        "seed_sensitivity",
        format_table(
            ["setup", "gap", "min %", "mean %", "max %"], rows
        ),
    )

    # The orderings must hold at every seed.
    for gaps in (setup1_gaps, setup2_gaps):
        for values in gaps.values():
            assert all(v > 0 for v in values), "ours must win at every seed"


def test_firefly_gap_grows_in_setup2_on_average(setup1_gaps, setup2_gaps):
    assert np.mean(setup2_gaps["firefly"]) > np.mean(setup1_gaps["firefly"])
