"""Smoke tests for the runnable examples.

Each parameterisable example is executed as a subprocess with tiny
arguments; fixed-scale examples that take minutes are exercised by
their underlying library paths elsewhere and excluded here.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(script, *args, timeout=180):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "greedy objective" in out
        assert "Theorem 1 guarantees >= 0.5" in out

    def test_trace_simulation_tiny(self):
        out = run_example(
            "trace_simulation.py", "--users", "2", "--slots", "80",
            "--episodes", "1",
        )
        assert "ours (Alg. 1)" in out
        assert "QoE CDF quantiles" in out

    def test_vr_classroom_tiny(self):
        out = run_example(
            "vr_classroom.py", "--setup", "1", "--slots", "120",
            "--repeats", "1",
        )
        assert "QoE improvement over pavq" in out
        assert "fps" in out

    def test_session_timeline(self):
        out = run_example("session_timeline.py")
        assert "quality-level timeline" in out
        assert "utilisation" in out

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES.glob("*.py"):
            source = script.read_text()
            assert '"""' in source.split("\n", 3)[1] or source.startswith(
                "#!"
            ), f"{script.name} missing docstring"
            assert '__name__ == "__main__"' in source, (
                f"{script.name} missing main guard"
            )
