"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.content.rate import RateModel
from repro.core.qoe import QoEWeights
from repro.knapsack import ItemCurve, SeparableKnapsack
from repro.knapsack.random_instances import (
    random_concave_convex_item,
    random_instance,
)


@pytest.fixture
def rng():
    """A fixed-seed random generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rate_model():
    """Default CRF-derived rate model with a fixed seed."""
    return RateModel(seed=0)


@pytest.fixture
def weights():
    """The Section IV simulation QoE weights."""
    return QoEWeights.simulation_defaults()


def make_concave_convex_item(
    rng: np.random.Generator,
    num_options: int = 6,
    cap: float = math.inf,
) -> ItemCurve:
    """Random Theorem-1-class item (see repro.knapsack.random_instances)."""
    return random_concave_convex_item(rng, num_options, cap)


def make_random_instance(
    rng: np.random.Generator,
    num_items: int = 4,
    num_options: int = 5,
    tightness: float = 0.5,
    with_caps: bool = False,
) -> SeparableKnapsack:
    """Random Theorem-1-class instance (see repro.knapsack.random_instances)."""
    return random_instance(rng, num_items, num_options, tightness, with_caps)
