"""Tests for the fractional relaxation upper bound."""

import numpy as np
import pytest

from repro.knapsack import (
    ItemCurve,
    SeparableKnapsack,
    fractional_upper_bound,
    solve_exact,
)
from tests.conftest import make_random_instance


class TestFractionalUpperBound:
    def test_bounds_exact_optimum(self):
        rng = np.random.default_rng(31)
        for _ in range(25):
            problem = make_random_instance(
                rng, num_items=4, num_options=4, tightness=float(rng.uniform(0.1, 0.9))
            )
            bound = fractional_upper_bound(problem)
            exact = solve_exact(problem)
            assert bound >= exact.value - 1e-9

    def test_bound_tight_when_budget_loose(self):
        rng = np.random.default_rng(33)
        problem = make_random_instance(rng, num_items=3, tightness=1.0)
        bound = fractional_upper_bound(problem)
        exact = solve_exact(problem)
        assert bound == pytest.approx(exact.value)

    def test_bound_equals_base_value_when_budget_is_base(self):
        items = [
            ItemCurve.from_sequences([1.0, 3.0], [1.0, 2.0]),
            ItemCurve.from_sequences([2.0, 3.0], [1.0, 3.0]),
        ]
        problem = SeparableKnapsack(items, budget=2.0)
        assert fractional_upper_bound(problem) == pytest.approx(3.0)

    def test_fractional_last_increment(self):
        # One item, one upgrade of weight 2 worth 4; budget allows
        # exactly half the upgrade -> bound = base + 2.
        item = ItemCurve.from_sequences([0.0, 4.0], [1.0, 3.0])
        problem = SeparableKnapsack([item], budget=2.0)
        assert fractional_upper_bound(problem) == pytest.approx(2.0)

    def test_respects_caps(self):
        item = ItemCurve.from_sequences([0.0, 4.0, 6.0], [1.0, 2.0, 3.0], cap=2.0)
        problem = SeparableKnapsack([item], budget=100.0)
        # Option 2 is cap-blocked: bound must not count its value.
        assert fractional_upper_bound(problem) == pytest.approx(4.0)

    def test_negative_deltas_excluded(self):
        item = ItemCurve.from_sequences([3.0, 1.0], [1.0, 2.0])
        problem = SeparableKnapsack([item], budget=100.0)
        assert fractional_upper_bound(problem) == pytest.approx(3.0)

    def test_fallback_bound_for_non_monotone_density(self):
        # Convex value curve violates the density ordering; the bound
        # must fall back to base + sum of positive deltas and still
        # dominate the optimum.
        item = ItemCurve.from_sequences([0.0, 0.5, 3.0], [1.0, 2.0, 3.0])
        problem = SeparableKnapsack([item], budget=2.5)
        bound = fractional_upper_bound(problem)
        exact = solve_exact(problem)
        assert bound >= exact.value
        assert bound == pytest.approx(3.0)
