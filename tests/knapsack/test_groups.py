"""Tests for the grouped-budget (per-router) knapsack extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleAllocationError
from repro.knapsack import (
    ItemCurve,
    SeparableKnapsack,
    combined_greedy,
    density_greedy,
    solve_dynamic_programming,
    solve_exact,
)


def item(values=(0.0, 2.0, 3.0), weights=(1.0, 2.0, 3.5)):
    return ItemCurve.from_sequences(values, weights)


def grouped(budget=100.0, group_budgets=(4.0, 4.0), n=4, **kwargs):
    items = [item() for _ in range(n)]
    return SeparableKnapsack(
        items,
        budget,
        group_of=[i % len(group_budgets) for i in range(n)],
        group_budgets=list(group_budgets),
        **kwargs,
    )


class TestValidation:
    def test_groups_need_budgets(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack([item()], 10.0, group_of=[0])
        with pytest.raises(ConfigurationError):
            SeparableKnapsack([item()], 10.0, group_budgets=[5.0])

    def test_group_index_range(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack(
                [item()], 10.0, group_of=[2], group_budgets=[5.0]
            )

    def test_group_of_length(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack(
                [item(), item()], 10.0, group_of=[0], group_budgets=[5.0]
            )

    def test_negative_group_budget(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack(
                [item()], 10.0, group_of=[0], group_budgets=[-1.0]
            )


class TestFeasibility:
    def test_group_weights(self):
        problem = grouped()
        totals = problem.group_weights([0, 0, 1, 1])
        assert totals == [1.0 + 2.0, 1.0 + 2.0]

    def test_is_feasible_checks_groups(self):
        problem = grouped(group_budgets=(3.0, 100.0))
        assert problem.is_feasible([0, 0, 0, 0])       # group 0: 2.0
        assert not problem.is_feasible([2, 0, 2, 0])   # group 0: 7.0 > 3

    def test_base_solution_respects_groups(self):
        # Group 0 budget below two bases: must shed one (with skip).
        problem = grouped(group_budgets=(1.5, 100.0), allow_skip=True)
        base = problem.base_solution()
        assert problem.is_feasible(base.options)
        assert base.options.count(-1) == 1
        # The shed item belongs to group 0.
        shed = base.options.index(-1)
        assert shed % 2 == 0

    def test_base_infeasible_without_skip(self):
        problem = grouped(group_budgets=(1.5, 100.0))
        with pytest.raises(InfeasibleAllocationError):
            problem.base_solution()


class TestSolvers:
    def test_greedy_respects_group_budgets(self):
        problem = grouped(group_budgets=(4.0, 100.0))
        solution = combined_greedy(problem)
        assert problem.is_feasible(solution.options)
        totals = problem.group_weights(solution.options)
        assert totals[0] <= 4.0 + 1e-9

    def test_greedy_upgrades_unconstrained_group(self):
        problem = grouped(budget=1000.0, group_budgets=(2.0, 1000.0))
        solution = density_greedy(problem)
        # Group 1 items can max out; group 0 items stay at base.
        assert solution.options[1] == 2
        assert solution.options[3] == 2
        assert solution.options[0] == 0
        assert solution.options[2] == 0

    def test_exact_respects_group_budgets(self):
        problem = grouped(group_budgets=(4.5, 5.5))
        solution = solve_exact(problem)
        assert problem.is_feasible(solution.options)

    def test_exact_matches_enumeration(self):
        import itertools

        problem = grouped(budget=9.0, group_budgets=(4.5, 5.5))
        best = max(
            (
                problem.evaluate(combo).value
                for combo in itertools.product(range(3), repeat=4)
                if problem.is_feasible(combo)
            ),
        )
        assert solve_exact(problem).value == pytest.approx(best)

    def test_exact_dominates_greedy_with_groups(self):
        rng = np.random.default_rng(17)
        from repro.knapsack.random_instances import random_instance

        for _ in range(10):
            base = random_instance(rng, num_items=4, num_options=4,
                                   tightness=0.6)
            per_group = sum(i.weights[-1] for i in base.items) / 3.0
            problem = SeparableKnapsack(
                base.items,
                base.budget,
                group_of=[i % 2 for i in range(4)],
                group_budgets=[per_group, per_group],
            )
            if not problem.is_feasible([0] * 4):
                continue
            greedy = combined_greedy(problem)
            exact = solve_exact(problem)
            assert problem.is_feasible(greedy.options)
            assert exact.value >= greedy.value - 1e-9

    def test_dp_rejects_groups(self):
        with pytest.raises(ConfigurationError):
            solve_dynamic_programming(grouped())

    def test_ungrouped_behaviour_unchanged(self):
        plain = SeparableKnapsack([item(), item()], 5.0)
        assert plain.num_groups == 0
        assert plain.group_weights([0, 0]) == []
        assert combined_greedy(plain).options == (1, 1)
