"""Unit tests for the separable knapsack problem representation."""

import math

import pytest

from repro.errors import ConfigurationError, InfeasibleAllocationError
from repro.knapsack import ItemCurve, SeparableKnapsack


def simple_item(cap=math.inf):
    return ItemCurve.from_sequences([1.0, 2.5, 3.0], [1.0, 2.0, 4.0], cap=cap)


class TestItemCurve:
    def test_basic_construction(self):
        item = simple_item()
        assert item.num_options == 3
        assert item.max_option == 2

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            ItemCurve.from_sequences([1.0, 2.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ItemCurve(tuple(), tuple())

    def test_rejects_non_increasing_weights(self):
        with pytest.raises(ConfigurationError):
            ItemCurve.from_sequences([1.0, 2.0], [2.0, 2.0])
        with pytest.raises(ConfigurationError):
            ItemCurve.from_sequences([1.0, 2.0], [2.0, 1.0])

    def test_rejects_negative_cap(self):
        with pytest.raises(ConfigurationError):
            ItemCurve.from_sequences([1.0], [1.0], cap=-1.0)

    def test_max_option_under_cap(self):
        item = simple_item(cap=2.5)
        assert item.max_option_under_cap() == 1
        assert simple_item(cap=0.5).max_option_under_cap() == -1
        assert simple_item().max_option_under_cap() == 2

    def test_deltas_and_density(self):
        item = simple_item()
        assert item.value_delta(0) == pytest.approx(1.5)
        assert item.weight_delta(0) == pytest.approx(1.0)
        assert item.density(0) == pytest.approx(1.5)
        assert item.density(1) == pytest.approx(0.5 / 2.0)

    def test_concavity_checks(self):
        assert simple_item().is_concave()
        convex_values = ItemCurve.from_sequences([0.0, 1.0, 3.0], [1.0, 2.0, 3.0])
        assert not convex_values.is_concave()

    def test_convex_weight_check(self):
        assert simple_item().is_convex_weights()
        concave_weights = ItemCurve.from_sequences([0.0, 1.0, 1.5], [1.0, 5.0, 6.0])
        assert not concave_weights.is_convex_weights()

    def test_decreasing_density(self):
        assert simple_item().has_decreasing_density()


class TestSeparableKnapsack:
    def test_requires_items(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack([], budget=1.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack([simple_item()], budget=-1.0)

    def test_base_weight_and_feasibility(self):
        problem = SeparableKnapsack([simple_item(), simple_item()], budget=2.0)
        assert problem.base_weight() == pytest.approx(2.0)
        assert problem.base_is_feasible()

    def test_base_infeasible_when_budget_small(self):
        problem = SeparableKnapsack([simple_item(), simple_item()], budget=1.5)
        assert not problem.base_is_feasible()

    def test_base_infeasible_when_cap_below_base(self):
        problem = SeparableKnapsack([simple_item(cap=0.5)], budget=10.0)
        assert not problem.base_is_feasible()

    def test_evaluate(self):
        problem = SeparableKnapsack([simple_item(), simple_item()], budget=10.0)
        solution = problem.evaluate([0, 2])
        assert solution.value == pytest.approx(1.0 + 3.0)
        assert solution.weight == pytest.approx(1.0 + 4.0)
        assert tuple(solution) == (0, 2)

    def test_evaluate_rejects_wrong_length(self):
        problem = SeparableKnapsack([simple_item()], budget=10.0)
        with pytest.raises(ConfigurationError):
            problem.evaluate([0, 0])

    def test_is_feasible(self):
        problem = SeparableKnapsack(
            [simple_item(cap=2.0), simple_item()], budget=5.0
        )
        assert problem.is_feasible([0, 0])
        assert problem.is_feasible([1, 1])
        assert not problem.is_feasible([2, 0])  # cap violated
        assert not problem.is_feasible([1, 2])  # budget violated
        assert not problem.is_feasible([-1, 0])  # skip without allow_skip

    def test_skip_requires_allow_skip(self):
        problem = SeparableKnapsack([simple_item()], budget=10.0)
        with pytest.raises(ConfigurationError):
            problem.option_value(0, -1)

    def test_skip_values_default_to_zero(self):
        problem = SeparableKnapsack([simple_item()], budget=10.0, allow_skip=True)
        assert problem.option_value(0, -1) == 0.0
        assert problem.option_weight(0, -1) == 0.0

    def test_skip_values_length_validated(self):
        with pytest.raises(ConfigurationError):
            SeparableKnapsack(
                [simple_item()], budget=10.0, allow_skip=True, skip_values=[0.0, 1.0]
            )

    def test_base_solution_feasible(self):
        problem = SeparableKnapsack([simple_item(), simple_item()], budget=3.0)
        base = problem.base_solution()
        assert base.options == (0, 0)
        assert base.weight == pytest.approx(2.0)

    def test_base_solution_raises_when_infeasible_without_skip(self):
        problem = SeparableKnapsack([simple_item(), simple_item()], budget=1.0)
        with pytest.raises(InfeasibleAllocationError):
            problem.base_solution()

    def test_base_solution_sheds_to_skip(self):
        problem = SeparableKnapsack(
            [simple_item(), simple_item()], budget=1.0, allow_skip=True
        )
        base = problem.base_solution()
        assert sorted(base.options) == [-1, 0]
        assert base.weight <= 1.0 + 1e-9

    def test_base_solution_cap_forces_skip(self):
        problem = SeparableKnapsack(
            [simple_item(cap=0.5), simple_item()], budget=10.0, allow_skip=True
        )
        base = problem.base_solution()
        assert base.options == (-1, 0)

    def test_base_solution_sheds_lowest_value_density_first(self):
        cheap = ItemCurve.from_sequences([0.1], [1.0])
        precious = ItemCurve.from_sequences([5.0], [1.0])
        problem = SeparableKnapsack([cheap, precious], budget=1.0, allow_skip=True)
        base = problem.base_solution()
        assert base.options == (-1, 0)

    def test_base_solution_total_skip_when_budget_zero(self):
        problem = SeparableKnapsack(
            [simple_item(), simple_item()], budget=0.0, allow_skip=True
        )
        base = problem.base_solution()
        assert base.options == (-1, -1)
        assert base.weight == 0.0
