"""Heap fast path vs reference Algorithm 1 loop: exact equivalence.

The heap variant must be a pure performance change — bit-identical
``Solution.options`` on every instance, including grouped (router
budgets), per-item capped, and skip-allowed ones.  A single property
sweep over a few hundred random draws covers all three greedy orders.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.knapsack import (
    STRATEGIES,
    combined_greedy,
    density_greedy,
    value_greedy,
)
from repro.knapsack.random_instances import random_instance

_ORDERS = (density_greedy, value_greedy, combined_greedy)


def _draw(rng, round_index):
    """One random instance, cycling through the special shapes."""
    shape = round_index % 4
    return random_instance(
        rng,
        num_items=int(rng.integers(1, 9)),
        num_options=int(rng.integers(1, 7)),
        tightness=float(rng.uniform(0.0, 1.2)),
        num_groups=int(rng.integers(1, 4)) if shape == 1 else 0,
        allow_skip=shape == 2,
    )


class TestHeapMatchesReference:
    def test_property_sweep(self):
        """~200 draws x 3 orders: options must match exactly."""
        rng = np.random.default_rng(20220713)
        for round_index in range(200):
            problem = _draw(rng, round_index)
            for solver in _ORDERS:
                reference = solver(problem, strategy="reference")
                heap = solver(problem, strategy="heap")
                assert heap.options == reference.options, (
                    f"round {round_index}, {solver.__name__}: "
                    f"{heap.options} != {reference.options}"
                )
                assert heap.value == reference.value
                assert heap.weight == reference.weight

    def test_large_instance(self):
        """The size regime the heap exists for stays exact too."""
        rng = np.random.default_rng(7)
        problem = random_instance(
            rng, num_items=400, num_options=6, tightness=0.4
        )
        for solver in _ORDERS:
            assert (
                solver(problem, strategy="heap").options
                == solver(problem, strategy="reference").options
            )


class TestSolveApi:
    def test_solve_dispatches_orders(self):
        rng = np.random.default_rng(11)
        problem = random_instance(rng, num_items=6, num_options=5, tightness=0.5)
        for order, solver in (
            ("density", density_greedy),
            ("value", value_greedy),
            ("combined", combined_greedy),
        ):
            for strategy in STRATEGIES:
                assert (
                    problem.solve(order=order, strategy=strategy).options
                    == solver(problem, strategy=strategy).options
                )

    def test_solve_rejects_unknown(self):
        rng = np.random.default_rng(11)
        problem = random_instance(rng, num_items=3, num_options=3, tightness=0.5)
        with pytest.raises(ConfigurationError):
            problem.solve(order="steepest")
        with pytest.raises(ConfigurationError):
            problem.solve(strategy="quantum")
