"""Randomized differential test: heap vs reference vs exact optimum.

Three implementations of the per-slot allocation problem are run
against each other on a few hundred seeded random instances small
enough to brute-force:

* the heap fast path and the reference Algorithm 1 loop must agree
  bit for bit (same options, value, weight);
* both must stay feasible; and
* their gain over the base allocation must reach at least half the
  optimum's gain — the Theorem 1 guarantee, checked against
  :func:`~repro.knapsack.exact.solve_exact` rather than assumed.

Instances stay small (<= 6 items x <= 5 options) so the exact solver
is cheap and a failure is human-readable.
"""

import numpy as np

from repro.knapsack import combined_greedy, solve_exact
from repro.knapsack.random_instances import random_instance

NUM_ROUNDS = 200
SEED = 20220806
_TOL = 1e-7


def _draw(rng):
    return random_instance(
        rng,
        num_items=int(rng.integers(1, 7)),
        num_options=int(rng.integers(2, 6)),
        tightness=float(rng.uniform(0.0, 1.1)),
    )


class TestDifferential:
    def test_heap_reference_exact_three_way(self):
        rng = np.random.default_rng(SEED)
        suboptimal = 0
        for round_index in range(NUM_ROUNDS):
            problem = _draw(rng)
            heap = combined_greedy(problem, strategy="heap")
            reference = combined_greedy(problem, strategy="reference")
            optimum = solve_exact(problem)
            base = problem.base_solution()

            # Differential core: the fast path is bit-identical to the
            # reference loop, not merely close.
            assert heap.options == reference.options, f"round {round_index}"
            assert heap.value == reference.value, f"round {round_index}"
            assert heap.weight == reference.weight, f"round {round_index}"

            # Both stay inside the budget the instance declares.
            assert problem.is_feasible(list(heap.options)), (
                f"round {round_index}: greedy infeasible {heap.options}"
            )

            # Greedy never claims more than the optimum...
            assert heap.value <= optimum.value + _TOL, f"round {round_index}"
            # ...and gains at least half of it over the base (Thm. 1).
            greedy_gain = heap.value - base.value
            optimal_gain = optimum.value - base.value
            assert greedy_gain >= 0.5 * optimal_gain - _TOL, (
                f"round {round_index}: gain {greedy_gain} < "
                f"half of {optimal_gain}"
            )
            if greedy_gain < optimal_gain - _TOL:
                suboptimal += 1

        # The sweep must exercise the interesting regime: some rounds
        # where greedy is strictly worse than the optimum, so the
        # bound check is doing real work.
        assert suboptimal > 0

    def test_exact_matches_reference_when_budget_loose(self):
        # With an all-max budget every solver picks the top option of
        # every item, so all three agree exactly.
        rng = np.random.default_rng(5)
        for _ in range(20):
            problem = _draw(rng)
            loose = random_instance(
                rng, num_items=problem.num_items, num_options=3, tightness=1.0
            )
            heap = combined_greedy(loose, strategy="heap")
            reference = combined_greedy(loose, strategy="reference")
            optimum = solve_exact(loose)
            assert heap.options == reference.options
            assert abs(heap.value - optimum.value) <= _TOL

    def test_failure_output_replays(self):
        # The differential sweep is only useful if a round replays
        # exactly; pin the stream so a reported round index can be
        # reproduced by fast-forwarding the same generator.
        rng_a = np.random.default_rng(SEED)
        rng_b = np.random.default_rng(SEED)
        first = [_draw(rng_a).budget for _ in range(5)]
        second = [_draw(rng_b).budget for _ in range(5)]
        assert first == second
