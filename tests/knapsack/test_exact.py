"""Tests for the exact solvers (branch-and-bound and DP)."""

import itertools
import math

import numpy as np
import pytest

from repro.errors import InfeasibleAllocationError
from repro.knapsack import (
    ItemCurve,
    SeparableKnapsack,
    solve_dynamic_programming,
    solve_exact,
)
from tests.conftest import make_random_instance


def brute_force(problem: SeparableKnapsack):
    """Reference optimum by full enumeration."""
    menus = []
    for n in range(problem.num_items):
        options = list(range(problem.items[n].max_option_under_cap() + 1))
        if problem.allow_skip:
            options = [-1] + options
        menus.append(options)
    best = None
    for combo in itertools.product(*menus):
        if not problem.is_feasible(combo):
            continue
        value = sum(problem.option_value(n, k) for n, k in enumerate(combo))
        if best is None or value > best:
            best = value
    return best


class TestSolveExact:
    def test_matches_brute_force_on_random_instances(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            problem = make_random_instance(
                rng, num_items=3, num_options=4, tightness=float(rng.uniform(0.1, 0.9))
            )
            exact = solve_exact(problem)
            assert exact.value == pytest.approx(brute_force(problem))
            assert problem.is_feasible(exact.options)

    def test_matches_brute_force_with_caps(self):
        rng = np.random.default_rng(5)
        for _ in range(15):
            problem = make_random_instance(
                rng, num_items=3, num_options=4, with_caps=True, tightness=0.5
            )
            if not problem.base_is_feasible():
                continue
            exact = solve_exact(problem)
            assert exact.value == pytest.approx(brute_force(problem))

    def test_matches_brute_force_with_skip(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            base = make_random_instance(rng, num_items=3, num_options=4, tightness=0.3)
            problem = SeparableKnapsack(
                base.items, base.budget * 0.5, allow_skip=True
            )
            exact = solve_exact(problem)
            assert exact.value == pytest.approx(brute_force(problem))

    def test_raises_when_infeasible(self):
        item = ItemCurve.from_sequences([1.0], [5.0])
        problem = SeparableKnapsack([item], budget=1.0)
        with pytest.raises(InfeasibleAllocationError):
            solve_exact(problem)

    def test_cap_below_base_raises_without_skip(self):
        item = ItemCurve.from_sequences([1.0], [5.0], cap=1.0)
        problem = SeparableKnapsack([item], budget=100.0)
        with pytest.raises(InfeasibleAllocationError):
            solve_exact(problem)

    def test_negative_values_allowed(self):
        # h_n can be negative (large variance penalties); the solver
        # must still pick the least-bad feasible assignment.
        item = ItemCurve.from_sequences([-5.0, -1.0, -4.0], [1.0, 2.0, 3.0])
        problem = SeparableKnapsack([item], budget=10.0)
        assert solve_exact(problem).options == (1,)

    def test_prefers_skip_when_everything_negative(self):
        item = ItemCurve.from_sequences([-5.0, -1.0], [1.0, 2.0])
        problem = SeparableKnapsack([item], budget=10.0, allow_skip=True)
        assert solve_exact(problem).options == (-1,)


class TestDynamicProgramming:
    def test_matches_exact_at_high_resolution(self):
        rng = np.random.default_rng(21)
        for _ in range(10):
            problem = make_random_instance(
                rng, num_items=3, num_options=4, tightness=0.5
            )
            dp = solve_dynamic_programming(problem, resolution=4000)
            exact = solve_exact(problem)
            assert dp.value <= exact.value + 1e-9
            assert dp.value >= exact.value - 0.15 * abs(exact.value) - 1e-9
            assert problem.is_feasible(dp.options)

    def test_dp_solution_always_feasible(self):
        rng = np.random.default_rng(23)
        for resolution in (50, 200, 1000):
            problem = make_random_instance(rng, num_items=4, tightness=0.4)
            dp = solve_dynamic_programming(problem, resolution=resolution)
            assert problem.is_feasible(dp.options)

    def test_dp_zero_budget_delegates(self):
        item = ItemCurve.from_sequences([1.0], [1.0])
        problem = SeparableKnapsack([item], budget=0.0, allow_skip=True)
        assert solve_dynamic_programming(problem).options == (-1,)

    def test_dp_infeasible_raises(self):
        item = ItemCurve.from_sequences([1.0], [5.0])
        problem = SeparableKnapsack([item], budget=1.0)
        with pytest.raises(InfeasibleAllocationError):
            solve_dynamic_programming(problem, resolution=100)

    def test_dp_exact_agree_on_integral_weights(self):
        # With integer weights and resolution == budget, rounding is
        # lossless and the DP must equal the exact optimum.
        items = [
            ItemCurve.from_sequences([0.0, 3.0, 4.0], [1.0, 2.0, 3.0]),
            ItemCurve.from_sequences([0.0, 2.0, 5.0], [1.0, 3.0, 5.0]),
        ]
        problem = SeparableKnapsack(items, budget=6.0)
        dp = solve_dynamic_programming(problem, resolution=6)
        assert dp.value == pytest.approx(solve_exact(problem).value)
