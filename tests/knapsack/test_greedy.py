"""Tests for the greedy solvers, including the paper's two worked examples."""

import math

import pytest

from repro.knapsack import (
    ItemCurve,
    SeparableKnapsack,
    combined_greedy,
    density_greedy,
    solve_exact,
    value_greedy,
)


def linear_item(values, weights, cap=math.inf):
    return ItemCurve.from_sequences(values, weights, cap=cap)


class TestPaperCounterexamples:
    """Section III gives one failure case for each greedy order.

    The paper's examples are stated with 0/1 items; here they are
    embedded as upgrade menus with a zero-value zero-ish-weight base,
    preserving the structure: density-greedy wastes budget on a cheap
    item; value-greedy burns the budget on one big item.
    """

    def density_trap(self):
        # User 1: upgrade worth 1 at weight 0.5 (density 2).
        # User 2: upgrade worth 4 at weight 2.4 (density 1.67).
        # Budget leaves room for only one of them after bases.
        user1 = linear_item([0.0, 1.0], [0.05, 0.55])
        user2 = linear_item([0.0, 4.0], [0.05, 2.45])
        return SeparableKnapsack([user1, user2], budget=2.5)

    def value_trap(self):
        # Four users with upgrades worth 2 at weight 0.5 each, one
        # user with an upgrade worth 3 at weight 1.9; budget 2.0.
        items = [linear_item([0.0, 2.0], [0.025, 0.525]) for _ in range(4)]
        items.append(linear_item([0.0, 3.0], [0.025, 1.925]))
        return SeparableKnapsack(items, budget=2.125)

    def test_density_greedy_fails_on_density_trap(self):
        problem = self.density_trap()
        dens = density_greedy(problem)
        opt = solve_exact(problem)
        assert dens.value < opt.value

    def test_value_greedy_rescues_density_trap(self):
        problem = self.density_trap()
        val = value_greedy(problem)
        opt = solve_exact(problem)
        assert val.value == pytest.approx(opt.value)

    def test_value_greedy_fails_on_value_trap(self):
        problem = self.value_trap()
        val = value_greedy(problem)
        opt = solve_exact(problem)
        assert val.value < opt.value

    def test_density_greedy_rescues_value_trap(self):
        problem = self.value_trap()
        dens = density_greedy(problem)
        opt = solve_exact(problem)
        assert dens.value == pytest.approx(opt.value)

    def test_combined_greedy_solves_both_traps(self):
        for problem in (self.density_trap(), self.value_trap()):
            combined = combined_greedy(problem)
            opt = solve_exact(problem)
            assert combined.value == pytest.approx(opt.value)


class TestGreedyMechanics:
    def test_all_upgrades_granted_with_loose_budget(self):
        items = [
            linear_item([0.0, 1.0, 1.8], [1.0, 2.0, 3.0]),
            linear_item([0.0, 2.0, 3.0], [1.0, 2.5, 4.5]),
        ]
        problem = SeparableKnapsack(items, budget=100.0)
        for solver in (density_greedy, value_greedy, combined_greedy):
            assert solver(problem).options == (2, 2)

    def test_stops_at_negative_marginal(self):
        # Second upgrade loses value; concave curve peaks at option 1.
        item = linear_item([0.0, 2.0, 1.0], [1.0, 2.0, 3.5])
        problem = SeparableKnapsack([item], budget=100.0)
        for solver in (density_greedy, value_greedy, combined_greedy):
            assert solver(problem).options == (1,)

    def test_respects_per_item_cap(self):
        item = linear_item([0.0, 1.0, 1.5], [1.0, 2.0, 3.0], cap=2.0)
        problem = SeparableKnapsack([item], budget=100.0)
        solution = combined_greedy(problem)
        assert solution.options == (1,)

    def test_respects_budget(self):
        items = [linear_item([0.0, 1.0], [1.0, 5.0]) for _ in range(3)]
        problem = SeparableKnapsack(items, budget=7.0)
        solution = combined_greedy(problem)
        assert solution.weight <= 7.0 + 1e-9
        # Only one full upgrade fits (3 bases + one 4-unit increment).
        assert sum(solution.options) == 1

    def test_budget_violation_retires_user_but_others_continue(self):
        # Item 0's upgrade is too heavy; item 1's still fits after.
        heavy = linear_item([0.0, 10.0], [1.0, 50.0])
        light = linear_item([0.0, 1.0], [1.0, 2.0])
        problem = SeparableKnapsack([heavy, light], budget=4.0)
        solution = density_greedy(problem)
        assert solution.options == (0, 1)

    def test_base_only_when_budget_exactly_base(self):
        items = [linear_item([1.0, 2.0], [1.0, 2.0]) for _ in range(2)]
        problem = SeparableKnapsack(items, budget=2.0)
        solution = combined_greedy(problem)
        assert solution.options == (0, 0)

    def test_combined_returns_max_of_both(self):
        import numpy as np

        from tests.conftest import make_random_instance

        rng = np.random.default_rng(7)
        for _ in range(25):
            problem = make_random_instance(rng, num_items=4, tightness=0.4)
            d = density_greedy(problem)
            v = value_greedy(problem)
            c = combined_greedy(problem)
            assert c.value == pytest.approx(max(d.value, v.value))

    def test_greedy_output_always_feasible(self):
        import numpy as np

        from tests.conftest import make_random_instance

        rng = np.random.default_rng(11)
        for _ in range(25):
            problem = make_random_instance(rng, with_caps=True, tightness=0.3)
            if not problem.base_is_feasible():
                continue
            for solver in (density_greedy, value_greedy, combined_greedy):
                solution = solver(problem)
                assert problem.is_feasible(solution.options)

    def test_skipped_base_items_stay_skipped(self):
        blocked = linear_item([0.0, 5.0], [3.0, 4.0], cap=1.0)
        open_item = linear_item([0.0, 1.0], [1.0, 2.0])
        problem = SeparableKnapsack(
            [blocked, open_item], budget=10.0, allow_skip=True
        )
        solution = combined_greedy(problem)
        assert solution.options[0] == -1
        assert solution.options[1] == 1

    def test_single_option_items(self):
        items = [linear_item([2.0], [1.0]), linear_item([3.0], [1.5])]
        problem = SeparableKnapsack(items, budget=5.0)
        solution = combined_greedy(problem)
        assert solution.options == (0, 0)
        assert solution.value == pytest.approx(5.0)
