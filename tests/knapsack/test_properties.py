"""Property-based tests (hypothesis) for the knapsack substrate.

The headline property is Theorem 1: on instances with concave value
curves and convex, strictly-increasing weight curves, the combined
density/value greedy achieves at least half the exact optimum.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack import (
    ItemCurve,
    SeparableKnapsack,
    combined_greedy,
    density_greedy,
    fractional_upper_bound,
    solve_exact,
    value_greedy,
)


@st.composite
def concave_convex_items(draw, max_options=5):
    """One Theorem-1-class item curve."""
    num_upgrades = draw(st.integers(min_value=1, max_value=max_options - 1))
    value_deltas = sorted(
        (
            draw(
                st.lists(
                    st.floats(0.01, 3.0, allow_nan=False),
                    min_size=num_upgrades,
                    max_size=num_upgrades,
                )
            )
        ),
        reverse=True,
    )
    weight_deltas = sorted(
        draw(
            st.lists(
                st.floats(0.1, 4.0, allow_nan=False),
                min_size=num_upgrades,
                max_size=num_upgrades,
            )
        )
    )
    base_value = draw(st.floats(-1.0, 2.0, allow_nan=False))
    base_weight = draw(st.floats(0.2, 2.0, allow_nan=False))
    values = [base_value]
    weights = [base_weight]
    for dv, dw in zip(value_deltas, weight_deltas):
        values.append(values[-1] + dv)
        weights.append(weights[-1] + dw)
    return ItemCurve.from_sequences(values, weights)


@st.composite
def instances(draw, max_items=4):
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = [draw(concave_convex_items()) for _ in range(num_items)]
    base = sum(item.weights[0] for item in items)
    top = sum(item.weights[-1] for item in items)
    tightness = draw(st.floats(0.0, 1.0, allow_nan=False))
    return SeparableKnapsack(items, base + tightness * (top - base))


@given(instances())
@settings(max_examples=120, deadline=None)
def test_theorem1_half_approximation(problem):
    """Combined greedy >= 1/2 of the exact optimum (Theorem 1)."""
    greedy = combined_greedy(problem)
    opt = solve_exact(problem)
    # The guarantee is multiplicative on the *gain over the base*
    # whenever values can be negative; with the base included it holds
    # directly for non-negative optima, which we normalise to here.
    base = problem.base_solution().value
    assert greedy.value - base >= 0.5 * (opt.value - base) - 1e-7


@given(instances())
@settings(max_examples=100, deadline=None)
def test_greedy_solutions_feasible(problem):
    for solver in (density_greedy, value_greedy, combined_greedy):
        solution = solver(problem)
        assert problem.is_feasible(solution.options)


@given(instances())
@settings(max_examples=100, deadline=None)
def test_fractional_bound_dominates_optimum(problem):
    assert fractional_upper_bound(problem) >= solve_exact(problem).value - 1e-7


@given(instances())
@settings(max_examples=80, deadline=None)
def test_exact_dominates_greedy(problem):
    assert solve_exact(problem).value >= combined_greedy(problem).value - 1e-9


@given(instances())
@settings(max_examples=60, deadline=None)
def test_evaluate_consistency(problem):
    solution = combined_greedy(problem)
    again = problem.evaluate(solution.options)
    assert math.isclose(solution.value, again.value, rel_tol=1e-12, abs_tol=1e-12)
    assert math.isclose(solution.weight, again.weight, rel_tol=1e-12, abs_tol=1e-12)


@given(concave_convex_items())
@settings(max_examples=80, deadline=None)
def test_generated_items_have_theorem_structure(item):
    assert item.is_concave()
    assert item.is_convex_weights()
    assert item.has_decreasing_density()
