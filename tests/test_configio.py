"""Tests for configuration serialisation."""

from dataclasses import replace

import pytest

from repro.configio import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.simulation import SimulationConfig
from repro.system.experiment import ExperimentConfig, setup2_config


class TestRoundTrips:
    def test_simulation_config_dict_roundtrip(self):
        config = SimulationConfig(
            num_users=7, duration_slots=321, seed=9,
            weights=QoEWeights(0.07, 0.9), predictor="constant-velocity",
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_experiment_config_dict_roundtrip(self):
        config = replace(setup2_config(seed=4), router_aware=True)
        rebuilt = config_from_dict(config_to_dict(config))
        # Tuples serialise as lists; compare field by field via dicts.
        assert config_to_dict(rebuilt) == config_to_dict(config)
        assert rebuilt.weights == config.weights
        assert rebuilt.num_users == 15

    def test_json_roundtrip(self, tmp_path):
        config = SimulationConfig(num_users=3, seed=2)
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_json_roundtrip_system(self, tmp_path):
        config = setup2_config(seed=1)
        path = tmp_path / "system.json"
        save_config(config, path)
        loaded = load_config(path)
        assert isinstance(loaded, ExperimentConfig)
        assert loaded.interference_onset == config.interference_onset


class TestErrors:
    def test_missing_kind(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"alpha": 0.1, "beta": 0.5})

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"kind": "nope", "alpha": 0.1, "beta": 0.5})

    def test_missing_weights(self):
        payload = config_to_dict(SimulationConfig())
        del payload["alpha"]
        with pytest.raises(ConfigurationError):
            config_from_dict(payload)

    def test_unknown_field(self):
        payload = config_to_dict(SimulationConfig())
        payload["bogus"] = 1
        with pytest.raises(ConfigurationError):
            config_from_dict(payload)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            load_config(path)

    def test_validation_still_applies(self):
        payload = config_to_dict(SimulationConfig())
        payload["num_users"] = 0
        with pytest.raises(ConfigurationError):
            config_from_dict(payload)
