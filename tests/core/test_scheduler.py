"""Tests for the online scheduler state machine."""

import pytest

from repro.core.allocation import DensityValueGreedyAllocator
from repro.core.qoe import QoEWeights
from repro.core.scheduler import CollaborativeVrScheduler
from repro.errors import ConfigurationError
from repro.simulation.delaymodel import MM1DelayModel

SIZES = (10.0, 16.0, 26.0, 42.0, 68.0, 110.0)


def make_scheduler(num_users=2, **kwargs):
    return CollaborativeVrScheduler(
        num_users,
        DensityValueGreedyAllocator(),
        QoEWeights(0.02, 0.5),
        **kwargs,
    )


def slot_inputs(scheduler, caps=(60.0, 60.0), budget=108.0):
    model = MM1DelayModel()
    return scheduler.build_slot_problem(
        sizes=[SIZES] * scheduler.num_users,
        delay_fns=[model.delay_fn(c) for c in caps],
        caps_mbps=list(caps),
        budget_mbps=budget,
    )


class TestScheduler:
    def test_initial_state(self):
        scheduler = make_scheduler()
        assert scheduler.current_slot == 1
        assert scheduler.qbar(0) == 0.0
        assert 0.0 < scheduler.delta(0) <= 1.0

    def test_known_delta_fixed(self):
        scheduler = make_scheduler(known_delta=[0.8, 0.95])
        assert scheduler.delta(0) == 0.8
        scheduler.record_outcomes([3, 3], [0, 0], [0.1, 0.1])
        assert scheduler.delta(0) == 0.8  # unaffected by outcomes

    def test_known_delta_validation(self):
        with pytest.raises(ConfigurationError):
            make_scheduler(known_delta=[0.8])
        with pytest.raises(ConfigurationError):
            make_scheduler(known_delta=[0.8, 1.5])

    def test_record_outcomes_updates_state(self):
        scheduler = make_scheduler()
        scheduler.record_outcomes([4, 2], [1, 0], [0.5, 0.3])
        assert scheduler.current_slot == 2
        assert scheduler.qbar(0) == 4.0
        assert scheduler.qbar(1) == 0.0
        assert scheduler.ledgers[0].horizon == 1

    def test_qbar_is_running_mean_of_viewed(self):
        scheduler = make_scheduler()
        scheduler.record_outcomes([4, 2], [1, 1], [0.0, 0.0])
        scheduler.record_outcomes([2, 2], [1, 1], [0.0, 0.0])
        assert scheduler.qbar(0) == pytest.approx(3.0)

    def test_skipped_slot_does_not_update_delta(self):
        scheduler = make_scheduler()
        before = scheduler.delta(0)
        scheduler.record_outcomes([0, 3], [0, 1], [0.0, 0.1])
        assert scheduler.delta(0) == before
        assert scheduler.delta(1) != before or scheduler.delta(1) == before
        # But qbar does see the zero view.
        assert scheduler.qbar(0) == 0.0

    def test_misses_lower_delta_estimate(self):
        scheduler = make_scheduler()
        before = scheduler.delta(0)
        for _ in range(20):
            scheduler.record_outcomes([3, 3], [0, 1], [0.1, 0.1])
        assert scheduler.delta(0) < before
        assert scheduler.delta(1) > scheduler.delta(0)

    def test_build_slot_problem_wires_state(self):
        scheduler = make_scheduler()
        scheduler.record_outcomes([4, 2], [1, 1], [0.5, 0.3])
        problem = slot_inputs(scheduler)
        assert problem.t == 2
        assert problem.users[0].qbar == 4.0
        assert problem.users[0].cap_mbps == 60.0

    def test_build_slot_problem_raw_caps(self):
        scheduler = make_scheduler()
        model = MM1DelayModel()
        problem = scheduler.build_slot_problem(
            [SIZES] * 2,
            [model.delay_fn(60.0)] * 2,
            [50.0, 50.0],
            108.0,
            raw_caps_mbps=[58.0, 59.0],
        )
        assert problem.users[0].raw_cap_mbps == 58.0
        assert problem.users[1].cap_mbps == 50.0

    def test_allocate_and_record_cycle(self):
        scheduler = make_scheduler()
        for _ in range(5):
            problem = slot_inputs(scheduler)
            levels = scheduler.allocate(problem)
            assert problem.is_feasible(levels)
            scheduler.record_outcomes(levels, [1] * 2, [0.1] * 2)
        assert scheduler.current_slot == 6
        assert scheduler.total_qoe() > 0

    def test_input_length_validation(self):
        scheduler = make_scheduler()
        model = MM1DelayModel()
        with pytest.raises(ConfigurationError):
            scheduler.build_slot_problem([SIZES], [model.delay_fn(60.0)] * 2,
                                         [60.0, 60.0], 100.0)
        with pytest.raises(ConfigurationError):
            scheduler.record_outcomes([1], [1, 1], [0.0, 0.0])
        with pytest.raises(ConfigurationError):
            scheduler.build_slot_problem(
                [SIZES] * 2, [model.delay_fn(60.0)] * 2, [60.0, 60.0], 100.0,
                raw_caps_mbps=[58.0],
            )

    def test_reset(self):
        scheduler = make_scheduler()
        scheduler.record_outcomes([4, 2], [1, 1], [0.5, 0.3])
        scheduler.reset()
        assert scheduler.current_slot == 1
        assert scheduler.qbar(0) == 0.0
        assert scheduler.ledgers[0].horizon == 0

    def test_rejects_zero_users(self):
        with pytest.raises(ConfigurationError):
            make_scheduler(num_users=0)
