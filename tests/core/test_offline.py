"""Tests for the per-slot offline optimal allocator."""

import pytest

from repro.core.allocation import DensityValueGreedyAllocator
from repro.core.offline import OfflineOptimalAllocator
from repro.errors import ConfigurationError
from tests.core.test_allocation import make_problem


class TestOfflineOptimalAllocator:
    def test_dominates_greedy(self):
        for budget in (40.0, 90.0, 150.0, 400.0):
            problem = make_problem(num_users=4, budget=budget)
            optimal = OfflineOptimalAllocator().allocate(problem)
            greedy = DensityValueGreedyAllocator().allocate(problem)
            assert problem.objective_value(optimal) >= (
                problem.objective_value(greedy) - 1e-9
            )

    def test_feasible(self):
        problem = make_problem(num_users=4, budget=75.0)
        levels = OfflineOptimalAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_refuses_large_instances(self):
        problem = make_problem(num_users=3)
        allocator = OfflineOptimalAllocator(max_users=2)
        with pytest.raises(ConfigurationError):
            allocator.allocate(problem)

    def test_name(self):
        assert OfflineOptimalAllocator().name == "offline-optimal"

    def test_skip_supported(self):
        problem = make_problem(num_users=2, budget=5.0, allow_skip=True)
        levels = OfflineOptimalAllocator().allocate(problem)
        assert problem.is_feasible(levels)
        assert 0 in levels  # budget below one base size forces a skip
