"""Tests for the Section VIII loss-aware extension."""

import pytest

from repro.core.extensions import (
    LossAwareAllocator,
    delivery_success_probability,
)
from repro.errors import ConfigurationError
from tests.core.test_allocation import make_problem


class TestDeliverySuccessProbability:
    def test_low_utilisation_near_certain(self):
        assert delivery_success_probability(10.0, 100.0) > 0.99

    def test_full_utilisation_coin_toss(self):
        assert delivery_success_probability(100.0, 100.0) == pytest.approx(
            0.5, abs=0.25
        )

    def test_overshoot_mostly_fails(self):
        assert delivery_success_probability(150.0, 100.0) < 0.05

    def test_monotone_decreasing_in_rate(self):
        probs = [
            delivery_success_probability(r, 100.0) for r in range(10, 160, 10)
        ]
        assert all(b <= a for a, b in zip(probs, probs[1:]))

    def test_zero_capacity(self):
        assert delivery_success_probability(10.0, 0.0) == 0.0
        assert delivery_success_probability(0.0, 0.0) == 1.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            delivery_success_probability(-1.0, 100.0)


class TestLossAwareAllocator:
    def test_feasible(self):
        problem = make_problem(num_users=3, budget=100.0)
        levels = LossAwareAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_more_conservative_near_cap(self):
        """Levels close to the cap are discounted versus plain Alg. 1."""
        from repro.core.allocation import DensityValueGreedyAllocator

        # Cap 45 makes level 4 (size 42) a 93%-utilisation gamble.
        problem = make_problem(num_users=1, budget=1000.0, cap=45.0,
                               bandwidth=60.0, qbar=3.0, t=50)
        plain = DensityValueGreedyAllocator().allocate(problem)[0]
        aware = LossAwareAllocator().allocate(problem)[0]
        assert aware <= plain

    def test_matches_plain_when_headroom_large(self):
        from repro.core.allocation import DensityValueGreedyAllocator

        problem = make_problem(num_users=2, budget=80.0, cap=200.0,
                               bandwidth=300.0)
        plain = DensityValueGreedyAllocator().allocate(problem)
        aware = LossAwareAllocator().allocate(problem)
        assert aware == plain

    def test_skip_supported(self):
        problem = make_problem(num_users=2, budget=5.0, allow_skip=True)
        levels = LossAwareAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_name(self):
        assert LossAwareAllocator().name == "loss-aware-greedy"


class TestLossAwareWithRouters:
    def test_respects_router_budgets(self):
        from tests.core.test_router_aware import make_problem

        problem = make_problem(router_budgets=(25.0, 1000.0))
        levels = LossAwareAllocator().allocate(problem)
        assert problem.is_feasible(levels)
