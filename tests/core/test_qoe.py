"""Tests for the QoE definition of Section II."""

import numpy as np
import pytest

from repro.core.qoe import QoEWeights, UserQoELedger, system_qoe
from repro.errors import ConfigurationError


class TestQoEWeights:
    def test_paper_defaults(self):
        sim = QoEWeights.simulation_defaults()
        assert (sim.alpha, sim.beta) == (0.02, 0.5)
        system = QoEWeights.system_defaults()
        assert (system.alpha, system.beta) == (0.1, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            QoEWeights(-0.1, 0.5)
        with pytest.raises(ConfigurationError):
            QoEWeights(0.1, -0.5)


class TestUserQoELedger:
    def test_empty_ledger(self):
        ledger = UserQoELedger()
        assert ledger.horizon == 0
        assert ledger.mean_viewed_quality() == 0.0
        assert ledger.quality_variance() == 0.0
        assert ledger.qoe(QoEWeights(0.1, 0.5)) == 0.0

    def test_single_slot(self):
        ledger = UserQoELedger()
        ledger.record(level=4, indicator=1, delay=0.5)
        assert ledger.mean_viewed_quality() == 4.0
        assert ledger.quality_variance() == 0.0
        assert ledger.mean_delay() == 0.5

    def test_miss_zeroes_viewed_quality(self):
        ledger = UserQoELedger()
        ledger.record(level=4, indicator=0, delay=0.5)
        assert ledger.mean_viewed_quality() == 0.0
        assert ledger.mean_allocated_level() == 4.0

    def test_skip_slot(self):
        ledger = UserQoELedger()
        ledger.record(level=0, indicator=0, delay=0.0)
        assert ledger.mean_viewed_quality() == 0.0
        assert ledger.mean_delay() == 0.0

    def test_skip_forces_zero_indicator(self):
        ledger = UserQoELedger()
        ledger.record(level=0, indicator=1, delay=0.0)
        assert ledger.viewed_qualities == (0.0,)

    def test_skip_with_delay_rejected(self):
        ledger = UserQoELedger()
        with pytest.raises(ConfigurationError):
            ledger.record(level=0, indicator=0, delay=0.5)

    def test_variance_matches_numpy(self):
        ledger = UserQoELedger()
        rng = np.random.default_rng(0)
        viewed = []
        for _ in range(200):
            level = int(rng.integers(1, 7))
            indicator = int(rng.uniform() < 0.9)
            ledger.record(level, indicator, float(rng.uniform(0, 2)))
            viewed.append(level * indicator)
        assert ledger.quality_variance() == pytest.approx(float(np.var(viewed)))
        assert ledger.mean_viewed_quality() == pytest.approx(float(np.mean(viewed)))

    def test_qoe_formula(self):
        """QoE_n(T) = sum viewed - alpha*sum delay - beta*T*var."""
        ledger = UserQoELedger()
        records = [(3, 1, 0.5), (5, 1, 1.0), (4, 0, 0.2)]
        for level, ind, delay in records:
            ledger.record(level, ind, delay)
        viewed = [3.0, 5.0, 0.0]
        weights = QoEWeights(alpha=0.1, beta=0.5)
        expected = (
            sum(viewed)
            - 0.1 * (0.5 + 1.0 + 0.2)
            - 0.5 * 3 * float(np.var(viewed))
        )
        assert ledger.qoe(weights) == pytest.approx(expected)
        assert ledger.qoe_per_slot(weights) == pytest.approx(expected / 3)

    def test_higher_alpha_penalises_delay_more(self):
        ledger = UserQoELedger()
        ledger.record(3, 1, 2.0)
        assert ledger.qoe(QoEWeights(1.0, 0.0)) < ledger.qoe(QoEWeights(0.1, 0.0))

    def test_validation(self):
        ledger = UserQoELedger()
        with pytest.raises(ConfigurationError):
            ledger.record(-1, 0, 0.0)
        with pytest.raises(ConfigurationError):
            ledger.record(1, 2, 0.0)
        with pytest.raises(ConfigurationError):
            ledger.record(1, 1, -0.1)

    def test_reset(self):
        ledger = UserQoELedger()
        ledger.record(3, 1, 0.5)
        ledger.reset()
        assert ledger.horizon == 0


class TestSystemQoE:
    def test_sums_over_users(self):
        weights = QoEWeights(0.1, 0.5)
        ledgers = [UserQoELedger() for _ in range(3)]
        for ledger in ledgers:
            ledger.record(4, 1, 0.5)
        assert system_qoe(ledgers, weights) == pytest.approx(
            3 * ledgers[0].qoe(weights)
        )

    def test_empty(self):
        assert system_qoe([], QoEWeights(0.1, 0.5)) == 0.0
