"""Tests for the uniform and max-min-fair sanity baselines."""

import pytest

from repro.core.baselines import MaxMinFairAllocator, UniformAllocator
from repro.core import DensityValueGreedyAllocator
from repro.errors import InfeasibleAllocationError
from tests.core.test_allocation import make_problem


class TestUniformAllocator:
    def test_everyone_same_level(self):
        problem = make_problem(num_users=4, budget=120.0)
        levels = UniformAllocator().allocate(problem)
        assert len(set(levels)) == 1
        assert problem.is_feasible(levels)

    def test_highest_feasible_common_level(self):
        # Budget 3 x 26 = 78 allows level 3 for all; level 4 (3 x 42)
        # does not.
        problem = make_problem(num_users=3, budget=80.0, cap=60.0)
        assert UniformAllocator().allocate(problem) == [3, 3, 3]

    def test_cap_binds_common_level(self):
        problem = make_problem(num_users=2, budget=1000.0, cap=20.0,
                               bandwidth=60.0)
        assert UniformAllocator().allocate(problem) == [2, 2]

    def test_infeasible_raises(self):
        problem = make_problem(num_users=3, budget=20.0)
        with pytest.raises(InfeasibleAllocationError):
            UniformAllocator().allocate(problem)

    def test_skip_fallback(self):
        problem = make_problem(num_users=3, budget=20.0, allow_skip=True)
        assert UniformAllocator().allocate(problem) == [0, 0, 0]


class TestMaxMinFairAllocator:
    def test_feasible(self):
        problem = make_problem(num_users=4, budget=120.0)
        levels = MaxMinFairAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_levels_balanced(self):
        problem = make_problem(num_users=4, budget=120.0)
        levels = MaxMinFairAllocator().allocate(problem)
        assert max(levels) - min(levels) <= 1

    def test_caps_can_unbalance(self):
        # One capped user cannot follow; others may pass it.
        from repro.core.allocation import SlotProblem, UserSlotState
        from repro.core.qoe import QoEWeights
        from repro.simulation.delaymodel import MM1DelayModel
        from tests.core.test_allocation import SIZES

        model = MM1DelayModel()
        users = (
            UserSlotState(SIZES, model.delay_fn(80.0), 0.9, 2.0, 12.0),
            UserSlotState(SIZES, model.delay_fn(80.0), 0.9, 2.0, 80.0),
        )
        problem = SlotProblem(3, users, 100.0, QoEWeights(0.02, 0.5))
        levels = MaxMinFairAllocator().allocate(problem)
        assert levels[0] == 1  # capped at 12 Mbps -> only level 1 fits
        assert levels[1] > 1

    def test_infeasible_base_raises(self):
        problem = make_problem(num_users=4, budget=20.0)
        with pytest.raises(InfeasibleAllocationError):
            MaxMinFairAllocator().allocate(problem)

    def test_skip_degradation(self):
        problem = make_problem(num_users=4, budget=25.0, allow_skip=True)
        levels = MaxMinFairAllocator().allocate(problem)
        assert problem.is_feasible(levels)
        assert levels.count(0) == 2

    def test_algorithm1_beats_sanity_baselines_on_qoe(self):
        """The principled objective must dominate QoE-blind fairness."""
        problem = make_problem(num_users=4, budget=110.0, qbar=2.5, t=30)
        ours = problem.objective_value(
            DensityValueGreedyAllocator().allocate(problem)
        )
        uniform = problem.objective_value(UniformAllocator().allocate(problem))
        maxmin = problem.objective_value(
            MaxMinFairAllocator().allocate(problem)
        )
        assert ours >= uniform - 1e-9
        assert ours >= maxmin - 1e-9
