"""Tests for the single-user exact horizon oracle."""

import itertools

import numpy as np
import pytest

from repro.core.horizon import horizon_optimal_qoe
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.simulation.delaymodel import MM1DelayModel

SIZES = (6.0, 14.0, 22.0)
WEIGHTS = QoEWeights(alpha=0.3, beta=0.8)
MODEL = MM1DelayModel()


def constant_bandwidth(_t):
    return 40.0


def alternating_bandwidth(t):
    return 50.0 if t % 2 else 25.0


def exhaustive(sizes, bandwidth_of_slot, horizon, weights):
    best = -np.inf
    best_seq = None
    levels = range(1, len(sizes) + 1)
    for seq in itertools.product(levels, repeat=horizon):
        if any(
            sizes[l - 1] > bandwidth_of_slot(t + 1) + 1e-9
            for t, l in enumerate(seq)
        ):
            continue
        viewed = np.array(seq, dtype=float)
        qoe = (
            viewed.sum()
            - weights.alpha
            * sum(
                MODEL.delay(sizes[l - 1], bandwidth_of_slot(t + 1))
                for t, l in enumerate(seq)
            )
            - weights.beta * horizon * viewed.var()
        )
        if qoe > best:
            best, best_seq = qoe, seq
    return best, best_seq


class TestHorizonOptimalQoe:
    @pytest.mark.parametrize("horizon", [1, 3, 5, 7])
    def test_matches_exhaustive_constant_bandwidth(self, horizon):
        value, sequence = horizon_optimal_qoe(
            SIZES, constant_bandwidth, horizon, WEIGHTS, MODEL.delay
        )
        expected, _ = exhaustive(SIZES, constant_bandwidth, horizon, WEIGHTS)
        assert value == pytest.approx(expected)
        assert len(sequence) == horizon

    @pytest.mark.parametrize("horizon", [2, 4, 6])
    def test_matches_exhaustive_alternating_bandwidth(self, horizon):
        value, _ = horizon_optimal_qoe(
            SIZES, alternating_bandwidth, horizon, WEIGHTS, MODEL.delay
        )
        expected, _ = exhaustive(SIZES, alternating_bandwidth, horizon, WEIGHTS)
        assert value == pytest.approx(expected)

    def test_sequence_achieves_reported_value(self):
        horizon = 6
        value, sequence = horizon_optimal_qoe(
            SIZES, alternating_bandwidth, horizon, WEIGHTS, MODEL.delay
        )
        viewed = np.array(sequence, dtype=float)
        recomputed = (
            viewed.sum()
            - WEIGHTS.alpha
            * sum(
                MODEL.delay(SIZES[l - 1], alternating_bandwidth(t + 1))
                for t, l in enumerate(sequence)
            )
            - WEIGHTS.beta * horizon * viewed.var()
        )
        assert recomputed == pytest.approx(value)

    def test_sequence_respects_bandwidth(self):
        _, sequence = horizon_optimal_qoe(
            SIZES, alternating_bandwidth, 8, WEIGHTS, MODEL.delay
        )
        for t, level in enumerate(sequence, start=1):
            assert SIZES[level - 1] <= alternating_bandwidth(t) + 1e-9

    def test_high_beta_prefers_constant_sequence(self):
        heavy = QoEWeights(alpha=0.01, beta=10.0)
        _, sequence = horizon_optimal_qoe(
            SIZES, constant_bandwidth, 8, heavy, MODEL.delay
        )
        assert len(set(sequence)) == 1

    def test_zero_beta_maximises_per_slot(self):
        none = QoEWeights(alpha=0.01, beta=0.0)
        _, sequence = horizon_optimal_qoe(
            SIZES, constant_bandwidth, 5, none, MODEL.delay
        )
        assert all(level == 3 for level in sequence)

    def test_infeasible_slot_raises(self):
        with pytest.raises(ConfigurationError):
            horizon_optimal_qoe(
                SIZES, lambda t: 1.0, 3, WEIGHTS, MODEL.delay
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            horizon_optimal_qoe(SIZES, constant_bandwidth, 0, WEIGHTS, MODEL.delay)
        with pytest.raises(ConfigurationError):
            horizon_optimal_qoe(tuple(), constant_bandwidth, 3, WEIGHTS, MODEL.delay)
