"""Tests for the Firefly and PAVQ baseline allocators."""

import pytest

from repro.core.allocation import SlotProblem, UserSlotState
from repro.core.baselines import FireflyAllocator, PavqAllocator
from repro.core.qoe import QoEWeights
from repro.errors import InfeasibleAllocationError
from repro.simulation.delaymodel import MM1DelayModel
from tests.core.test_allocation import SIZES, make_problem, make_user


class TestFirefly:
    def test_feasible(self):
        problem = make_problem(num_users=4, budget=120.0)
        levels = FireflyAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_max_fills_raw_cap(self):
        """With a loose server budget, Firefly rides the raw estimate."""
        problem = make_problem(num_users=1, budget=1000.0, cap=45.0)
        levels = FireflyAllocator().allocate(problem)
        # Largest size <= 45 is level 4 (42).
        assert levels == [4]

    def test_uses_raw_cap_not_discounted(self):
        model = MM1DelayModel()
        user = UserSlotState(
            sizes=SIZES, delay_of_rate=model.delay_fn(60.0), delta=0.9,
            qbar=2.0, cap_mbps=20.0, raw_cap_mbps=45.0,
        )
        problem = SlotProblem(5, (user,), 1000.0, QoEWeights(0.02, 0.5))
        assert FireflyAllocator().allocate(problem) == [4]

    def test_lru_rotation_under_scarcity(self):
        """When the server budget binds, upgrades rotate across users."""
        allocator = FireflyAllocator()
        # Budget: all bases (3 x 10) + one upgrade to level 4 (+32).
        winners = []
        for _ in range(3):
            problem = make_problem(num_users=3, budget=64.0, cap=45.0)
            levels = allocator.allocate(problem)
            upgraded = [n for n, level in enumerate(levels) if level > 1]
            winners.extend(upgraded)
        # Different users win across slots (LRU moves winners back).
        assert len(set(winners)) >= 2

    def test_everyone_gets_base_first(self):
        problem = make_problem(num_users=4, budget=45.0, cap=45.0)
        levels = FireflyAllocator().allocate(problem)
        assert all(level >= 1 for level in levels)

    def test_infeasible_base_raises_without_skip(self):
        problem = make_problem(num_users=4, budget=25.0)
        with pytest.raises(InfeasibleAllocationError):
            FireflyAllocator().allocate(problem)

    def test_infeasible_base_skips_with_skip(self):
        problem = make_problem(num_users=4, budget=25.0, allow_skip=True)
        levels = FireflyAllocator().allocate(problem)
        assert levels.count(0) == 2
        assert problem.is_feasible(levels)

    def test_reset_clears_lru(self):
        allocator = FireflyAllocator()
        allocator.allocate(make_problem(num_users=2, budget=60.0))
        allocator.reset()
        assert allocator._lru == {}  # noqa: SLF001 - intentional state check

    def test_no_delay_or_variance_awareness(self):
        """Firefly ignores qbar/delta entirely: same output regardless."""
        a = make_problem(num_users=2, budget=100.0, qbar=1.0, delta=0.5)
        b = make_problem(num_users=2, budget=100.0, qbar=5.0, delta=1.0)
        assert FireflyAllocator().allocate(a) == FireflyAllocator().allocate(b)


class TestPavq:
    def test_feasible(self):
        problem = make_problem(num_users=4, budget=120.0)
        levels = PavqAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_anchors_to_allocated_mean(self):
        """After a history of level 2, PAVQ resists jumping to 6."""
        allocator = PavqAllocator()
        tight = make_problem(num_users=1, budget=16.0, cap=16.0, bandwidth=60.0)
        for _ in range(50):
            assert allocator.allocate(tight) == [2]
        # Budget opens up: the variance anchor holds it near 2.
        open_problem = make_problem(num_users=1, budget=1000.0, cap=200.0,
                                    bandwidth=400.0)
        level = allocator.allocate(open_problem)[0]
        assert level <= 4

    def test_fresh_allocator_jumps_to_utility_max(self):
        open_problem = make_problem(num_users=1, budget=1000.0, cap=200.0,
                                    bandwidth=400.0)
        level = PavqAllocator().allocate(open_problem)[0]
        assert level >= 4

    def test_repair_respects_budget(self):
        problem = make_problem(num_users=4, budget=50.0, cap=45.0)
        levels = PavqAllocator().allocate(problem)
        assert problem.total_rate(levels) <= 50.0 + 1e-9

    def test_ignores_delta(self):
        """PAVQ pre-dates viewport prediction: delta must not matter."""
        a = make_problem(num_users=2, budget=100.0, delta=0.5)
        b = make_problem(num_users=2, budget=100.0, delta=1.0)
        assert PavqAllocator().allocate(a) == PavqAllocator().allocate(b)

    def test_uses_raw_cap(self):
        model = MM1DelayModel()
        user = UserSlotState(
            sizes=SIZES, delay_of_rate=model.delay_fn(60.0), delta=0.9,
            qbar=2.0, cap_mbps=12.0, raw_cap_mbps=45.0,
        )
        problem = SlotProblem(5, (user,), 1000.0, QoEWeights(0.02, 0.5))
        assert PavqAllocator().allocate(problem)[0] >= 1

    def test_infeasible_raises_without_skip(self):
        problem = make_problem(num_users=2, budget=5.0)
        with pytest.raises(InfeasibleAllocationError):
            PavqAllocator().allocate(problem)

    def test_skip_when_nothing_fits(self):
        model = MM1DelayModel()
        user = UserSlotState(
            sizes=SIZES, delay_of_rate=model.delay_fn(60.0), delta=0.9,
            qbar=2.0, cap_mbps=5.0, raw_cap_mbps=5.0,
        )
        problem = SlotProblem(
            5, (user,), 100.0, QoEWeights(0.02, 0.5), allow_skip=True
        )
        assert PavqAllocator().allocate(problem) == [0]

    def test_reset(self):
        allocator = PavqAllocator()
        allocator.allocate(make_problem(num_users=1, budget=16.0, cap=16.0))
        allocator.reset()
        assert allocator._t == 0  # noqa: SLF001 - intentional state check
