"""Tests for router-aware slot problems (per-router budgets)."""

import pytest

from repro.core.allocation import (
    DensityValueGreedyAllocator,
    SlotProblem,
    UserSlotState,
)
from repro.core.offline import OfflineOptimalAllocator
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.simulation.delaymodel import MM1DelayModel

SIZES = (10.0, 16.0, 26.0, 42.0)


def make_problem(router_budgets, budget=1000.0, n=4):
    model = MM1DelayModel()
    users = tuple(
        UserSlotState(
            sizes=SIZES,
            delay_of_rate=model.delay_fn(100.0),
            delta=0.95,
            qbar=2.0,
            cap_mbps=80.0,
        )
        for _ in range(n)
    )
    return SlotProblem(
        t=5,
        users=users,
        budget_mbps=budget,
        weights=QoEWeights(0.02, 0.5),
        router_of=tuple(i % len(router_budgets) for i in range(n)),
        router_budgets_mbps=tuple(router_budgets),
    )


class TestRouterAwareSlotProblem:
    def test_validation(self):
        model = MM1DelayModel()
        user = UserSlotState(SIZES, model.delay_fn(100.0), 0.95, 2.0, 80.0)
        with pytest.raises(ConfigurationError):
            SlotProblem(
                1, (user,), 100.0, QoEWeights(0.02, 0.5), router_of=(0,)
            )
        with pytest.raises(ConfigurationError):
            SlotProblem(
                1, (user,), 100.0, QoEWeights(0.02, 0.5),
                router_of=(0, 0), router_budgets_mbps=(50.0,),
            )

    def test_is_feasible_checks_routers(self):
        problem = make_problem(router_budgets=(30.0, 1000.0))
        # Router 0 carries users 0 and 2: two level-2 = 32 > 30.
        assert not problem.is_feasible([2, 1, 2, 1])
        assert problem.is_feasible([1, 2, 1, 2])

    def test_greedy_respects_router_budgets(self):
        problem = make_problem(router_budgets=(25.0, 1000.0))
        levels = DensityValueGreedyAllocator().allocate(problem)
        assert problem.is_feasible(levels)
        # Router 1's users got more than router 0's congested pair.
        assert levels[1] + levels[3] > levels[0] + levels[2]

    def test_exact_respects_router_budgets(self):
        problem = make_problem(router_budgets=(30.0, 60.0), budget=85.0)
        levels = OfflineOptimalAllocator().allocate(problem)
        assert problem.is_feasible(levels)

    def test_exact_dominates_greedy(self):
        problem = make_problem(router_budgets=(35.0, 55.0), budget=85.0)
        greedy = DensityValueGreedyAllocator().allocate(problem)
        optimal = OfflineOptimalAllocator().allocate(problem)
        assert problem.objective_value(optimal) >= (
            problem.objective_value(greedy) - 1e-9
        )

    def test_router_budget_tightens_allocation(self):
        loose = make_problem(router_budgets=(1000.0, 1000.0))
        tight = make_problem(router_budgets=(25.0, 25.0))
        loose_levels = DensityValueGreedyAllocator().allocate(loose)
        tight_levels = DensityValueGreedyAllocator().allocate(tight)
        assert sum(tight_levels) < sum(loose_levels)


class TestRouterAwareSystem:
    def test_experiment_runs_router_aware(self):
        from dataclasses import replace

        from repro.system import SystemExperiment, setup2_config
        from repro.system.experiment import scaled_config

        config = replace(
            scaled_config(setup2_config(seed=3), duration_slots=180),
            router_aware=True,
        )
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        assert result.num_users == 15
        for user in result.users:
            assert user.fps is not None
