"""Tests for SlotProblem and the Algorithm 1 allocators."""

import pytest

from repro.core.allocation import (
    DensityGreedyAllocator,
    DensityValueGreedyAllocator,
    SlotProblem,
    UserSlotState,
    ValueGreedyAllocator,
)
from repro.core.offline import OfflineOptimalAllocator
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.simulation.delaymodel import MM1DelayModel

SIZES = (10.0, 16.0, 26.0, 42.0, 68.0, 110.0)


def make_user(cap=60.0, qbar=2.0, delta=0.9, sizes=SIZES, bandwidth=None):
    model = MM1DelayModel()
    return UserSlotState(
        sizes=sizes,
        delay_of_rate=model.delay_fn(bandwidth if bandwidth is not None else cap),
        delta=delta,
        qbar=qbar,
        cap_mbps=cap,
    )


def make_problem(num_users=3, budget=108.0, t=5, allow_skip=False, **user_kw):
    return SlotProblem(
        t=t,
        users=tuple(make_user(**user_kw) for _ in range(num_users)),
        budget_mbps=budget,
        weights=QoEWeights(alpha=0.02, beta=0.5),
        allow_skip=allow_skip,
    )


class TestUserSlotState:
    def test_raw_cap_defaults_to_cap(self):
        user = make_user(cap=50.0)
        assert user.raw_cap_mbps == 50.0

    def test_raw_cap_explicit(self):
        model = MM1DelayModel()
        user = UserSlotState(
            sizes=SIZES, delay_of_rate=model.delay_fn(60.0), delta=0.9,
            qbar=2.0, cap_mbps=50.0, raw_cap_mbps=58.0,
        )
        assert user.raw_cap_mbps == 58.0

    def test_validation(self):
        model = MM1DelayModel()
        with pytest.raises(ConfigurationError):
            UserSlotState(tuple(), model.delay_fn(60.0), 0.9, 2.0, 60.0)
        with pytest.raises(ConfigurationError):
            UserSlotState(SIZES, model.delay_fn(60.0), 1.5, 2.0, 60.0)
        with pytest.raises(ConfigurationError):
            UserSlotState(SIZES, model.delay_fn(60.0), 0.9, -1.0, 60.0)
        with pytest.raises(ConfigurationError):
            UserSlotState(SIZES, model.delay_fn(60.0), 0.9, 2.0, -1.0)


class TestSlotProblem:
    def test_properties(self):
        problem = make_problem()
        assert problem.num_users == 3
        assert problem.num_levels == 6

    def test_objective_curve_matches_slot_objective(self):
        from repro.core.decomposition import slot_objective

        problem = make_problem(num_users=1)
        user = problem.users[0]
        curve = problem.objective_curve(0)
        for level in range(1, 7):
            expected = slot_objective(
                level, problem.t, user.qbar, user.delta,
                problem.weights.alpha, problem.weights.beta,
                user.delay_of_rate(user.sizes[level - 1]),
            )
            assert curve[level - 1] == pytest.approx(expected)

    def test_objective_value_and_total_rate(self):
        problem = make_problem(num_users=2)
        levels = [2, 3]
        value = problem.objective_value(levels)
        expected = problem.objective_curve(0)[1] + problem.objective_curve(1)[2]
        assert value == pytest.approx(expected)
        assert problem.total_rate(levels) == pytest.approx(16.0 + 26.0)

    def test_objective_value_with_skip(self):
        problem = make_problem(num_users=2, allow_skip=True)
        value = problem.objective_value([0, 1])
        assert value == pytest.approx(
            problem.skip_value(0) + problem.objective_curve(1)[0]
        )

    def test_is_feasible(self):
        problem = make_problem(num_users=2, budget=30.0)
        assert problem.is_feasible([1, 1])
        assert not problem.is_feasible([3, 1])  # budget
        assert not problem.is_feasible([7, 1])  # level range
        assert not problem.is_feasible([0, 1])  # skip without allow_skip

    def test_to_knapsack_mapping(self):
        problem = make_problem(num_users=2)
        knapsack = problem.to_knapsack()
        assert knapsack.num_items == 2
        assert knapsack.items[0].weights == SIZES
        assert knapsack.budget == problem.budget_mbps
        assert not knapsack.allow_skip

    def test_to_knapsack_with_skip(self):
        problem = make_problem(num_users=2, allow_skip=True, qbar=3.0)
        knapsack = problem.to_knapsack()
        assert knapsack.allow_skip
        assert knapsack.skip_values[0] == pytest.approx(problem.skip_value(0))
        assert knapsack.skip_values[0] < 0  # variance penalty of viewing 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_problem(t=0)
        with pytest.raises(ConfigurationError):
            SlotProblem(1, tuple(), 10.0, QoEWeights(0.1, 0.5))
        with pytest.raises(ConfigurationError):
            make_problem(budget=-1.0)
        problem = make_problem(num_users=2)
        with pytest.raises(ConfigurationError):
            problem.objective_value([1])


class TestAllocators:
    @pytest.mark.parametrize(
        "allocator_cls",
        [DensityValueGreedyAllocator, DensityGreedyAllocator, ValueGreedyAllocator],
    )
    def test_allocation_feasible(self, allocator_cls):
        problem = make_problem(budget=80.0)
        levels = allocator_cls().allocate(problem)
        assert len(levels) == problem.num_users
        assert problem.is_feasible(levels)

    def test_combined_at_least_each_half(self):
        problem = make_problem(budget=90.0)
        combined = DensityValueGreedyAllocator().allocate(problem)
        dens = DensityGreedyAllocator().allocate(problem)
        val = ValueGreedyAllocator().allocate(problem)
        v_combined = problem.objective_value(combined)
        assert v_combined >= problem.objective_value(dens) - 1e-9
        assert v_combined >= problem.objective_value(val) - 1e-9

    def test_combined_within_half_of_optimal(self):
        """Theorem 1 on a realistic slot problem."""
        problem = make_problem(budget=90.0)
        greedy = DensityValueGreedyAllocator().allocate(problem)
        optimal = OfflineOptimalAllocator().allocate(problem)
        v_greedy = problem.objective_value(greedy)
        v_opt = problem.objective_value(optimal)
        assert v_greedy >= 0.5 * v_opt - 1e-9

    def test_everyone_at_least_level_one_without_skip(self):
        problem = make_problem(budget=200.0)
        levels = DensityValueGreedyAllocator().allocate(problem)
        assert all(level >= 1 for level in levels)

    def test_tight_budget_keeps_base(self):
        problem = make_problem(num_users=3, budget=30.0)
        levels = DensityValueGreedyAllocator().allocate(problem)
        assert levels == [1, 1, 1]

    def test_loose_budget_upgrades(self):
        problem = make_problem(num_users=2, budget=500.0, cap=200.0, bandwidth=300.0)
        levels = DensityValueGreedyAllocator().allocate(problem)
        assert all(level >= 3 for level in levels)

    def test_variance_term_anchors_to_qbar(self):
        """High beta pins allocations near the running viewed mean."""
        low_anchor = make_problem(num_users=1, budget=500.0, cap=200.0,
                                  bandwidth=400.0, qbar=1.0, t=100)
        high_anchor = make_problem(num_users=1, budget=500.0, cap=200.0,
                                   bandwidth=400.0, qbar=5.0, t=100)
        level_low = DensityValueGreedyAllocator().allocate(low_anchor)[0]
        level_high = DensityValueGreedyAllocator().allocate(high_anchor)[0]
        assert level_high > level_low

    def test_skip_chosen_when_cap_below_base(self):
        problem = SlotProblem(
            t=5,
            users=(make_user(cap=5.0),),
            budget_mbps=100.0,
            weights=QoEWeights(0.02, 0.5),
            allow_skip=True,
        )
        levels = DensityValueGreedyAllocator().allocate(problem)
        assert levels == [0]

    def test_allocator_names(self):
        assert DensityValueGreedyAllocator().name == "density-value-greedy"
        assert DensityGreedyAllocator().name == "density-greedy"
        assert ValueGreedyAllocator().name == "value-greedy"
