"""Tests for the Welford decomposition and the per-slot objective."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    running_means,
    skip_objective,
    slot_objective,
    slot_objective_curve,
    variance_penalty_term,
    welford_decomposition,
)
from repro.errors import ConfigurationError


class TestWelfordDecomposition:
    @given(
        st.lists(st.floats(0.0, 6.0, allow_nan=False), min_size=1, max_size=100)
    )
    @settings(max_examples=150, deadline=None)
    def test_identity_eq4(self, viewed):
        """Eq. (4): sum of terms == T * population variance."""
        _, total = welford_decomposition(viewed)
        expected = len(viewed) * float(np.var(viewed))
        assert total == pytest.approx(expected, rel=1e-9, abs=1e-7)

    def test_first_term_zero(self):
        terms, _ = welford_decomposition([5.0, 5.0, 3.0])
        assert terms[0] == 0.0

    def test_constant_series_zero_variance(self):
        terms, total = welford_decomposition([4.0] * 20)
        assert total == pytest.approx(0.0)
        assert all(t == pytest.approx(0.0) for t in terms)

    def test_running_means(self):
        assert running_means([2.0, 4.0, 6.0]) == [2.0, 3.0, 4.0]

    def test_variance_penalty_term(self):
        assert variance_penalty_term(1, 5.0, 0.0) == 0.0
        assert variance_penalty_term(2, 5.0, 3.0) == pytest.approx(0.5 * 4.0)

    def test_penalty_rejects_bad_t(self):
        with pytest.raises(ConfigurationError):
            variance_penalty_term(0, 1.0, 1.0)


class TestSlotObjective:
    def test_no_variance_penalty_at_t1(self):
        h = slot_objective(4, t=1, qbar_prev=0.0, delta=0.9, alpha=0.1,
                           beta=0.5, expected_delay=1.0)
        assert h == pytest.approx(0.9 * 4 - 0.1 * 1.0)

    def test_matches_eq9(self):
        """Hand-computed h_n(q) for a nontrivial state."""
        q, t, qbar, delta, alpha, beta, delay = 3, 5, 2.0, 0.8, 0.1, 0.5, 0.7
        ratio = (t - 1) / t
        expected = (
            delta * q
            - alpha * delay
            - beta * (delta * ratio * (q - qbar) ** 2 + (1 - delta) * ratio * qbar ** 2)
        )
        assert slot_objective(q, t, qbar, delta, alpha, beta, delay) == pytest.approx(
            expected
        )

    def test_skip_objective(self):
        assert skip_objective(1, 3.0, 0.5) == 0.0
        assert skip_objective(4, 3.0, 0.5) == pytest.approx(-0.5 * 0.75 * 9.0)

    def test_level_zero_matches_skip(self):
        h0 = slot_objective(0, 4, 3.0, 0.9, 0.1, 0.5, 0.0)
        assert h0 == pytest.approx(skip_objective(4, 3.0, 0.5))

    def test_perfect_prediction_removes_miss_penalty(self):
        h_perfect = slot_objective(3, 5, 3.0, 1.0, 0.0, 0.5, 0.0)
        # delta=1 and q == qbar: no variance penalty at all.
        assert h_perfect == pytest.approx(3.0)

    def test_imperfect_prediction_discounts(self):
        h_perfect = slot_objective(4, 5, 2.0, 1.0, 0.1, 0.5, 0.5)
        h_imperfect = slot_objective(4, 5, 2.0, 0.7, 0.1, 0.5, 0.5)
        assert h_imperfect < h_perfect

    def test_variance_penalty_grows_with_distance(self):
        base = dict(t=10, delta=0.9, alpha=0.0, beta=0.5, expected_delay=0.0)
        near = slot_objective(3, qbar_prev=3.0, **base)
        far = slot_objective(6, qbar_prev=3.0, **base)
        # The level gain is +3 but the variance penalty eats into it.
        assert far - near < 3.0

    def test_curve_shape(self):
        curve = slot_objective_curve(
            6, t=5, qbar_prev=2.0, delta=0.9, alpha=0.1, beta=0.5,
            delay_of_level=lambda level: 0.1 * level,
        )
        assert len(curve) == 6
        assert curve[0] == pytest.approx(
            slot_objective(1, 5, 2.0, 0.9, 0.1, 0.5, 0.1)
        )

    def test_curve_concave_under_convex_delay(self):
        """h_n is concave in q when the delay curve is convex."""
        delays = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2]
        curve = slot_objective_curve(
            6, t=8, qbar_prev=3.0, delta=0.9, alpha=0.5, beta=0.5,
            delay_of_level=lambda level: delays[level - 1],
        )
        increments = [b - a for a, b in zip(curve, curve[1:])]
        assert all(b <= a + 1e-9 for a, b in zip(increments, increments[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            slot_objective(-1, 1, 0.0, 0.9, 0.1, 0.5, 0.0)
        with pytest.raises(ConfigurationError):
            slot_objective(1, 0, 0.0, 0.9, 0.1, 0.5, 0.0)
        with pytest.raises(ConfigurationError):
            slot_objective(1, 1, 0.0, 1.5, 0.1, 0.5, 0.0)
        with pytest.raises(ConfigurationError):
            slot_objective_curve(0, 1, 0.0, 0.9, 0.1, 0.5, lambda level: 0.0)
