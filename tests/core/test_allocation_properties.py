"""Property-based tests over randomly generated slot problems.

Random-but-valid :class:`SlotProblem` instances exercise every
allocator's contract: outputs are always feasible, the combined greedy
dominates its halves, the oracle dominates the greedy, and loosening
the budget never hurts.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    DensityGreedyAllocator,
    DensityValueGreedyAllocator,
    SlotProblem,
    UserSlotState,
    ValueGreedyAllocator,
)
from repro.core.baselines import (
    FireflyAllocator,
    MaxMinFairAllocator,
    PavqAllocator,
    UniformAllocator,
)
from repro.core.offline import OfflineOptimalAllocator
from repro.core.qoe import QoEWeights
from repro.simulation.delaymodel import MM1DelayModel

_MODEL = MM1DelayModel()


@st.composite
def slot_problems(draw, max_users=4):
    num_users = draw(st.integers(1, max_users))
    num_levels = draw(st.integers(2, 5))
    base = draw(st.floats(5.0, 15.0))
    ratio = draw(st.floats(1.2, 1.7))
    sizes = tuple(base * ratio ** k for k in range(num_levels))

    users = []
    for _ in range(num_users):
        cap = draw(st.floats(sizes[0] + 1.0, sizes[-1] * 1.5))
        bandwidth = max(cap, sizes[0] * 2.0) * draw(st.floats(1.0, 2.0))
        users.append(
            UserSlotState(
                sizes=sizes,
                delay_of_rate=_MODEL.delay_fn(bandwidth),
                delta=draw(st.floats(0.5, 1.0)),
                qbar=draw(st.floats(0.0, float(num_levels))),
                cap_mbps=cap,
            )
        )
    total_base = sizes[0] * num_users
    total_top = sizes[-1] * num_users
    budget = total_base + draw(st.floats(0.0, 1.0)) * (total_top - total_base)
    t = draw(st.integers(1, 50))
    return SlotProblem(
        t=t,
        users=tuple(users),
        budget_mbps=budget,
        weights=QoEWeights(alpha=draw(st.floats(0.0, 0.5)),
                           beta=draw(st.floats(0.0, 1.0))),
    )


ALL_ALLOCATORS = [
    DensityValueGreedyAllocator,
    DensityGreedyAllocator,
    ValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
    UniformAllocator,
    MaxMinFairAllocator,
    OfflineOptimalAllocator,
]


@given(slot_problems())
@settings(max_examples=60, deadline=None)
def test_every_allocator_feasible(problem):
    for allocator_cls in ALL_ALLOCATORS:
        levels = allocator_cls().allocate(problem)
        assert problem.is_feasible(levels), allocator_cls.__name__


@given(slot_problems())
@settings(max_examples=60, deadline=None)
def test_combined_dominates_halves(problem):
    combined = problem.objective_value(
        DensityValueGreedyAllocator().allocate(problem)
    )
    dens = problem.objective_value(DensityGreedyAllocator().allocate(problem))
    val = problem.objective_value(ValueGreedyAllocator().allocate(problem))
    assert combined >= max(dens, val) - 1e-9


@given(slot_problems(max_users=3))
@settings(max_examples=40, deadline=None)
def test_oracle_dominates_everyone(problem):
    optimal = problem.objective_value(OfflineOptimalAllocator().allocate(problem))
    for allocator_cls in (DensityValueGreedyAllocator, PavqAllocator):
        value = problem.objective_value(allocator_cls().allocate(problem))
        assert optimal >= value - 1e-7, allocator_cls.__name__


@given(slot_problems(max_users=3), st.floats(1.1, 3.0))
@settings(max_examples=40, deadline=None)
def test_loosening_budget_never_hurts_oracle(problem, factor):
    import dataclasses

    optimal = problem.objective_value(OfflineOptimalAllocator().allocate(problem))
    looser = dataclasses.replace(problem, budget_mbps=problem.budget_mbps * factor)
    optimal_loose = looser.objective_value(
        OfflineOptimalAllocator().allocate(looser)
    )
    assert optimal_loose >= optimal - 1e-9


@given(slot_problems())
@settings(max_examples=40, deadline=None)
def test_theorem1_gain_bound_on_random_slot_problems(problem):
    if problem.num_users > 3:
        return  # keep the oracle tractable under hypothesis budgets
    base = problem.objective_value([1] * problem.num_users)
    greedy = problem.objective_value(
        DensityValueGreedyAllocator().allocate(problem)
    )
    optimal = problem.objective_value(OfflineOptimalAllocator().allocate(problem))
    assert greedy - base >= 0.5 * (optimal - base) - 1e-7
    assert not math.isnan(greedy)
