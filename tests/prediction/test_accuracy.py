"""Tests for the running mean and prediction accuracy tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.prediction.accuracy import PredictionAccuracyTracker, RunningMean


class TestRunningMean:
    def test_empty(self):
        mean = RunningMean()
        assert mean.mean == 0.0
        assert mean.count == 0

    def test_single(self):
        mean = RunningMean()
        assert mean.update(5.0) == 5.0

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_mean(self, values):
        mean = RunningMean()
        for v in values:
            mean.update(v)
        assert mean.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)

    def test_reset(self):
        mean = RunningMean()
        mean.update(3.0)
        mean.reset()
        assert mean.count == 0
        assert mean.mean == 0.0


class TestPredictionAccuracyTracker:
    def test_prior_before_data(self):
        tracker = PredictionAccuracyTracker(prior_success=0.9, prior_count=5.0)
        assert tracker.estimate() == pytest.approx(0.9)

    def test_record_updates_counts(self):
        tracker = PredictionAccuracyTracker()
        tracker.record(1)
        tracker.record(0)
        assert tracker.trials == 2
        assert tracker.successes == 1

    def test_rejects_non_binary(self):
        tracker = PredictionAccuracyTracker()
        with pytest.raises(ConfigurationError):
            tracker.record(2)

    def test_converges_to_empirical_rate(self):
        """delta_bar_n(t) -> delta_n (Section III)."""
        tracker = PredictionAccuracyTracker(prior_success=0.5, prior_count=5.0)
        rng = np.random.default_rng(0)
        true_delta = 0.85
        for _ in range(5000):
            tracker.record(int(rng.uniform() < true_delta))
        assert tracker.estimate() == pytest.approx(true_delta, abs=0.02)
        assert tracker.empirical() == pytest.approx(true_delta, abs=0.02)

    def test_prior_dampens_early_extremes(self):
        tracker = PredictionAccuracyTracker(prior_success=0.9, prior_count=5.0)
        tracker.record(0)
        # One failure should not drive the estimate near zero.
        assert tracker.estimate() > 0.7

    def test_empirical_zero_when_empty(self):
        assert PredictionAccuracyTracker().empirical() == 0.0

    def test_reset(self):
        tracker = PredictionAccuracyTracker()
        tracker.record(1)
        tracker.reset()
        assert tracker.trials == 0

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError):
            PredictionAccuracyTracker(prior_success=1.5)
        with pytest.raises(ConfigurationError):
            PredictionAccuracyTracker(prior_count=-1.0)
