"""Tests for the EMA throughput estimator."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.throughput import EmaThroughputEstimator


class TestEmaThroughputEstimator:
    def test_first_sample_sets_estimate(self):
        est = EmaThroughputEstimator(alpha=0.3)
        assert est.observe(50.0) == 50.0

    def test_initial_estimate_used(self):
        est = EmaThroughputEstimator(alpha=0.5, initial_mbps=40.0)
        assert est.estimate() == 40.0
        assert est.observe(60.0) == pytest.approx(50.0)

    def test_ema_recursion(self):
        est = EmaThroughputEstimator(alpha=0.25, initial_mbps=40.0)
        est.observe(80.0)
        assert est.estimate() == pytest.approx(40.0 + 0.25 * 40.0)

    def test_converges_to_constant_input(self):
        est = EmaThroughputEstimator(alpha=0.3, initial_mbps=10.0)
        for _ in range(100):
            est.observe(55.0)
        assert est.estimate() == pytest.approx(55.0, abs=1e-6)

    def test_conservative_discount(self):
        est = EmaThroughputEstimator(alpha=0.3, initial_mbps=100.0, safety_factor=0.9)
        assert est.conservative() == pytest.approx(90.0)

    def test_estimate_zero_when_uninitialised(self):
        assert EmaThroughputEstimator().estimate() == 0.0

    def test_num_samples(self):
        est = EmaThroughputEstimator()
        est.observe(1.0)
        est.observe(2.0)
        assert est.num_samples == 2

    def test_reset(self):
        est = EmaThroughputEstimator()
        est.observe(10.0)
        est.reset(initial_mbps=5.0)
        assert est.estimate() == 5.0
        assert est.num_samples == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmaThroughputEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EmaThroughputEstimator(alpha=1.5)
        with pytest.raises(ConfigurationError):
            EmaThroughputEstimator(initial_mbps=-1.0)
        with pytest.raises(ConfigurationError):
            EmaThroughputEstimator(safety_factor=0.0)
        est = EmaThroughputEstimator()
        with pytest.raises(ConfigurationError):
            est.observe(-5.0)
