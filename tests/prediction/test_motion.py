"""Tests for the linear-regression 6-DoF predictor."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.pose import Pose


def linear_walk(n, dx=0.1, dyaw=2.0):
    """Poses moving at constant velocity (exactly linear)."""
    return [
        Pose(i * dx, 0.0, 1.6, yaw=i * dyaw, pitch=0.0) for i in range(n)
    ]


class TestLinearMotionPredictor:
    def test_no_observation_returns_none(self):
        assert LinearMotionPredictor().predict() is None

    def test_single_observation_returns_it(self):
        predictor = LinearMotionPredictor()
        pose = Pose(1.0, 2.0, 1.6, 30.0, 5.0)
        predictor.observe(pose)
        assert predictor.predict() == pose

    def test_exact_on_linear_motion(self):
        predictor = LinearMotionPredictor(window=5, horizon=1)
        for pose in linear_walk(5):
            predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted.x == pytest.approx(0.5, abs=1e-9)
        assert predicted.yaw == pytest.approx(10.0, abs=1e-9)

    def test_horizon_extrapolation(self):
        predictor = LinearMotionPredictor(window=5, horizon=3)
        for pose in linear_walk(5):
            predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted.x == pytest.approx(0.7, abs=1e-9)

    def test_explicit_horizon_overrides_default(self):
        predictor = LinearMotionPredictor(window=5, horizon=1)
        for pose in linear_walk(5):
            predictor.observe(pose)
        predicted = predictor.predict(horizon=2)
        assert predicted.x == pytest.approx(0.6, abs=1e-9)

    def test_yaw_wraparound_handled(self):
        """A trajectory crossing +-180 must not jump 360 degrees."""
        predictor = LinearMotionPredictor(window=5, horizon=1)
        for yaw in (170.0, 174.0, 178.0, -178.0, -174.0):
            predictor.observe(Pose(0, 0, 0, yaw=yaw, pitch=0.0))
        predicted = predictor.predict()
        assert predicted.yaw == pytest.approx(-170.0, abs=1e-6)

    def test_pitch_clamped(self):
        predictor = LinearMotionPredictor(window=3, horizon=5)
        for pitch in (70.0, 80.0, 89.0):
            predictor.observe(Pose(0, 0, 0, yaw=0.0, pitch=pitch))
        assert predictor.predict().pitch <= 90.0

    def test_window_limits_history(self):
        predictor = LinearMotionPredictor(window=3, horizon=1)
        # Old non-linear history should be forgotten: feed garbage
        # then a clean linear tail of window size.
        predictor.observe(Pose(100.0, 0, 0, 0, 0))
        for pose in linear_walk(3):
            predictor.observe(pose)
        assert predictor.num_observations == 3
        assert predictor.predict().x == pytest.approx(0.3, abs=1e-9)

    def test_stationary_user(self):
        predictor = LinearMotionPredictor(window=4, horizon=1)
        pose = Pose(1.0, 1.0, 1.6, 45.0, -10.0)
        for _ in range(4):
            predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted.translation_distance(pose) < 1e-9
        assert predicted.orientation_distance(pose) < 1e-9

    def test_reset(self):
        predictor = LinearMotionPredictor()
        predictor.observe(Pose(0, 0, 0, 0, 0))
        predictor.reset()
        assert predictor.predict() is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LinearMotionPredictor(window=1)
        with pytest.raises(ConfigurationError):
            LinearMotionPredictor(horizon=0)
        predictor = LinearMotionPredictor()
        predictor.observe(Pose(0, 0, 0, 0, 0))
        with pytest.raises(ConfigurationError):
            predictor.predict(horizon=0)

    def test_predict_or_last_raises_when_empty(self):
        with pytest.raises(ConfigurationError):
            LinearMotionPredictor().predict_or_last()
