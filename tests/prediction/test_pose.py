"""Tests for the 6-DoF pose type."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.pose import Pose


class TestPose:
    def test_construction_wraps_angles(self):
        pose = Pose(1.0, 2.0, 1.6, yaw=190.0, pitch=10.0, roll=-190.0)
        assert pose.yaw == pytest.approx(-170.0)
        assert pose.roll == pytest.approx(170.0)

    def test_rejects_out_of_range_pitch(self):
        with pytest.raises(ConfigurationError):
            Pose(0.0, 0.0, 0.0, 0.0, pitch=91.0)

    def test_position_and_orientation(self):
        pose = Pose(1.0, 2.0, 3.0, 10.0, 20.0, 30.0)
        assert pose.position() == (1.0, 2.0, 3.0)
        assert pose.orientation() == (10.0, 20.0, 30.0)

    def test_as_vector_roundtrip(self):
        pose = Pose(1.0, 2.0, 3.0, 10.0, 20.0, 30.0)
        assert Pose.from_vector(pose.as_vector()) == pose

    def test_from_vector_clamps_pitch(self):
        pose = Pose.from_vector([0, 0, 0, 0, 120.0, 0])
        assert pose.pitch == 90.0

    def test_from_vector_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            Pose.from_vector([1, 2, 3])

    def test_translation_distance(self):
        a = Pose(0.0, 0.0, 0.0, 0.0, 0.0)
        b = Pose(3.0, 4.0, 0.0, 0.0, 0.0)
        assert a.translation_distance(b) == pytest.approx(5.0)

    def test_orientation_distance_wraps(self):
        a = Pose(0, 0, 0, yaw=175.0, pitch=0.0)
        b = Pose(0, 0, 0, yaw=-175.0, pitch=5.0)
        assert a.orientation_distance(b) == pytest.approx(10.0)
