"""Tests for the polynomial-regression delay predictor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.prediction.delay import PolynomialDelayPredictor


class TestPolynomialDelayPredictor:
    def test_fallback_before_data(self):
        predictor = PolynomialDelayPredictor(fallback_delay=0.7)
        assert predictor.predict(30.0) == 0.7

    def test_mean_with_few_samples(self):
        predictor = PolynomialDelayPredictor(min_samples=8)
        predictor.observe(10.0, 0.2)
        predictor.observe(20.0, 0.4)
        assert predictor.predict(50.0) == pytest.approx(0.3)

    def test_recovers_quadratic_relationship(self):
        """Delay = 0.001 r^2 + 0.01 r must be learned accurately."""
        predictor = PolynomialDelayPredictor(degree=2, window=100, min_samples=8)
        rng = np.random.default_rng(1)
        for _ in range(60):
            r = float(rng.uniform(5.0, 60.0))
            predictor.observe(r, 0.001 * r * r + 0.01 * r)
        for r in (10.0, 30.0, 55.0):
            expected = 0.001 * r * r + 0.01 * r
            assert predictor.predict(r) == pytest.approx(expected, rel=1e-6)

    def test_degenerate_rates_fall_back_to_mean(self):
        """All samples at one rate: rank-deficient fit must not blow up."""
        predictor = PolynomialDelayPredictor(degree=2, min_samples=3)
        for _ in range(10):
            predictor.observe(25.0, 0.5)
        assert predictor.predict(25.0) == pytest.approx(0.5)
        assert predictor.predict(60.0) == pytest.approx(0.5)

    def test_two_distinct_rates_fit_line(self):
        predictor = PolynomialDelayPredictor(degree=2, min_samples=4)
        for _ in range(5):
            predictor.observe(10.0, 0.1)
            predictor.observe(20.0, 0.3)
        assert predictor.predict(30.0) == pytest.approx(0.5, abs=1e-6)

    def test_prediction_never_negative(self):
        predictor = PolynomialDelayPredictor(degree=2, min_samples=4)
        for r, d in [(10.0, 0.5), (20.0, 0.3), (30.0, 0.1), (40.0, 0.05)]:
            predictor.observe(r, d)
            predictor.observe(r + 1, d)
        assert predictor.predict(80.0) >= 0.0

    def test_sliding_window_forgets(self):
        predictor = PolynomialDelayPredictor(degree=1, window=4, min_samples=2)
        for _ in range(4):
            predictor.observe(10.0, 5.0)
        for _ in range(4):
            predictor.observe(10.0, 1.0)
        assert predictor.predict(10.0) == pytest.approx(1.0)

    def test_reset(self):
        predictor = PolynomialDelayPredictor(fallback_delay=0.9)
        predictor.observe(10.0, 1.0)
        predictor.reset()
        assert predictor.num_samples == 0
        assert predictor.predict(10.0) == 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolynomialDelayPredictor(degree=0)
        with pytest.raises(ConfigurationError):
            PolynomialDelayPredictor(degree=3, window=3)
        with pytest.raises(ConfigurationError):
            PolynomialDelayPredictor(min_samples=1)
        with pytest.raises(ConfigurationError):
            PolynomialDelayPredictor(fallback_delay=-1.0)
        predictor = PolynomialDelayPredictor()
        with pytest.raises(ConfigurationError):
            predictor.observe(-1.0, 0.5)
        with pytest.raises(ConfigurationError):
            predictor.observe(1.0, -0.5)
        with pytest.raises(ConfigurationError):
            predictor.predict(-1.0)
