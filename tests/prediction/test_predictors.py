"""Tests for the alternative motion predictors."""

import pytest

from repro.errors import ConfigurationError
from repro.prediction.predictors import (
    PREDICTOR_REGISTRY,
    ConstantVelocityPredictor,
    ExponentialSmoothingPredictor,
    LastPosePredictor,
    make_predictor,
)
from repro.prediction.pose import Pose


def linear_walk(n, dx=0.1, dyaw=2.0):
    return [Pose(i * dx, 0.0, 1.6, yaw=i * dyaw, pitch=0.0) for i in range(n)]


ALL_PREDICTORS = [
    LastPosePredictor,
    ConstantVelocityPredictor,
    ExponentialSmoothingPredictor,
]


class TestProtocol:
    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_none_before_observation(self, cls):
        assert cls().predict() is None

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_single_observation_returns_it(self, cls):
        predictor = cls()
        pose = Pose(1.0, 2.0, 1.6, 30.0, 5.0)
        predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted.translation_distance(pose) < 1e-9

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_reset(self, cls):
        predictor = cls()
        predictor.observe(Pose(0, 0, 0, 0, 0))
        predictor.reset()
        assert predictor.predict() is None

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_rejects_bad_horizon(self, cls):
        with pytest.raises(ConfigurationError):
            cls(horizon=0)


class TestLastPose:
    def test_holds_last(self):
        predictor = LastPosePredictor()
        for pose in linear_walk(5):
            predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted == linear_walk(5)[-1]


class TestConstantVelocity:
    def test_exact_on_linear_motion(self):
        predictor = ConstantVelocityPredictor(horizon=1)
        for pose in linear_walk(4):
            predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted.x == pytest.approx(0.4)
        assert predicted.yaw == pytest.approx(8.0)

    def test_horizon_scaling(self):
        predictor = ConstantVelocityPredictor(horizon=3)
        for pose in linear_walk(3):
            predictor.observe(pose)
        assert predictor.predict().x == pytest.approx(0.5)

    def test_yaw_wraparound(self):
        predictor = ConstantVelocityPredictor()
        predictor.observe(Pose(0, 0, 0, yaw=176.0, pitch=0.0))
        predictor.observe(Pose(0, 0, 0, yaw=-178.0, pitch=0.0))
        # Step was +6 degrees across the seam; next is -172.
        assert predictor.predict().yaw == pytest.approx(-172.0)

    def test_pitch_clamped(self):
        predictor = ConstantVelocityPredictor(horizon=10)
        predictor.observe(Pose(0, 0, 0, 0.0, 60.0))
        predictor.observe(Pose(0, 0, 0, 0.0, 80.0))
        assert predictor.predict().pitch == 90.0


class TestExponentialSmoothing:
    def test_converges_on_linear_motion(self):
        predictor = ExponentialSmoothingPredictor(horizon=1)
        walk = linear_walk(60)
        for pose in walk:
            predictor.observe(pose)
        predicted = predictor.predict()
        # After convergence the trend matches the constant velocity.
        assert predicted.x == pytest.approx(6.0, abs=0.05)

    def test_stationary_user(self):
        predictor = ExponentialSmoothingPredictor()
        pose = Pose(1.0, 1.0, 1.6, 45.0, -10.0)
        for _ in range(30):
            predictor.observe(pose)
        predicted = predictor.predict()
        assert predicted.translation_distance(pose) < 1e-6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialSmoothingPredictor(level_alpha=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialSmoothingPredictor(trend_beta=1.5)


class TestRegistry:
    def test_all_names_construct(self):
        for name in PREDICTOR_REGISTRY:
            predictor = make_predictor(name, horizon=2)
            predictor.observe(Pose(0, 0, 0, 0, 0))
            assert predictor.predict() is not None

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_predictor("oracle")

    def test_linear_regression_registered(self):
        predictor = make_predictor("linear-regression", horizon=1)
        for pose in linear_walk(5):
            predictor.observe(pose)
        assert predictor.predict().x == pytest.approx(0.5, abs=1e-9)
