"""The coverage cache must never change an evaluate() outcome."""

import numpy as np

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose


def _random_pose(rng, world):
    return Pose(
        x=float(rng.uniform(world.x_min, world.x_max)),
        y=float(rng.uniform(world.y_min, world.y_max)),
        z=0.0,
        yaw=float(rng.uniform(-180.0, 180.0)),
        pitch=float(rng.uniform(-90.0, 90.0)),
        roll=0.0,
    )


class TestCoverageCache:
    def test_cached_equals_uncached(self):
        world = GridWorld(0.0, 4.0, 0.0, 4.0, cell_size=0.05)
        grid = TileGrid()
        cached = CoverageEvaluator(world, grid, FieldOfView(), cache=True)
        plain = CoverageEvaluator(world, grid, FieldOfView(), cache=False)
        rng = np.random.default_rng(13)
        for _ in range(400):
            predicted = _random_pose(rng, world)
            actual = _random_pose(rng, world)
            a = cached.evaluate(predicted, actual)
            b = plain.evaluate(predicted, actual)
            assert a == b
        # The cache must actually be in play for the default geometry.
        assert cached._deliver_bucket is not None
        assert cached._deliver_cache

    def test_precomputed_cells_match(self):
        world = GridWorld(0.0, 4.0, 0.0, 4.0, cell_size=0.05)
        evaluator = CoverageEvaluator(world, TileGrid(), FieldOfView())
        rng = np.random.default_rng(3)
        for _ in range(100):
            predicted = _random_pose(rng, world)
            actual = _random_pose(rng, world)
            direct = evaluator.evaluate(predicted, actual)
            precomputed = evaluator.evaluate(
                predicted,
                actual,
                predicted_cell=world.cell_of(predicted.x, predicted.y),
                actual_cell=world.cell_of(actual.x, actual.y),
            )
            assert direct == precomputed

    def test_cells_of_matches_cell_of(self):
        world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
        rng = np.random.default_rng(21)
        xs = rng.uniform(-1.0, 9.0, size=500)  # includes out-of-bounds
        ys = rng.uniform(-1.0, 9.0, size=500)
        vectorized = world.cells_of(xs, ys)
        for i in range(len(xs)):
            assert int(vectorized[i]) == world.cell_of(float(xs[i]), float(ys[i]))
