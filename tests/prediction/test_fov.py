"""Tests for the coverage indicator 1_n(t)."""

import pytest

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.errors import ConfigurationError
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose


@pytest.fixture
def evaluator():
    world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
    return CoverageEvaluator(world, TileGrid(), FieldOfView(), margin_deg=15.0)


def pose(x=4.0, y=4.0, yaw=0.0, pitch=0.0):
    return Pose(x, y, 1.6, yaw, pitch)


class TestCoverageEvaluator:
    def test_perfect_prediction_covers(self, evaluator):
        outcome = evaluator.evaluate(pose(), pose())
        assert outcome.covered
        assert outcome.indicator == 1

    def test_small_orientation_error_within_margin(self, evaluator):
        outcome = evaluator.evaluate(pose(yaw=0.0), pose(yaw=10.0))
        assert outcome.covered

    def test_large_orientation_error_can_fail(self, evaluator):
        # Predicted facing east, user actually turned to face west:
        # the needed tiles cannot all be in the delivered set.
        outcome = evaluator.evaluate(pose(yaw=90.0), pose(yaw=-90.0))
        assert not outcome.covered
        assert outcome.indicator == 0

    def test_wrong_cell_fails(self, evaluator):
        outcome = evaluator.evaluate(pose(x=4.0), pose(x=5.0))
        assert outcome.predicted_cell != outcome.actual_cell
        assert not outcome.covered

    def test_cell_tolerance_allows_neighbours(self, evaluator):
        # One cell off (5 cm) within the default tolerance of 1.
        outcome = evaluator.evaluate(pose(x=4.0), pose(x=4.05))
        assert outcome.covered

    def test_zero_tolerance_requires_exact_cell(self):
        world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
        strict = CoverageEvaluator(
            world, TileGrid(), FieldOfView(), margin_deg=15.0, cell_tolerance=0
        )
        outcome = strict.evaluate(pose(x=4.0), pose(x=4.06))
        assert not outcome.covered

    def test_delivered_superset_of_prediction_fov(self, evaluator):
        predicted = pose(yaw=30.0)
        delivered = evaluator.tiles_to_deliver(predicted)
        needed_if_exact = evaluator.tiles_needed(predicted)
        assert needed_if_exact <= delivered

    def test_outcome_reports_tile_sets(self, evaluator):
        outcome = evaluator.evaluate(pose(), pose())
        assert outcome.needed_tiles <= outcome.delivered_tiles
        assert len(outcome.delivered_tiles) >= 1

    def test_zero_margin_is_fragile(self):
        world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
        tight = CoverageEvaluator(
            world, TileGrid(), FieldOfView(), margin_deg=0.0
        )
        wide = CoverageEvaluator(
            world, TileGrid(), FieldOfView(), margin_deg=30.0
        )
        # An error that the wide margin absorbs but zero margin may not:
        # facing a tile boundary makes the needed set flip.
        predicted, actual = pose(yaw=-40.0), pose(yaw=-55.0)
        assert wide.evaluate(predicted, actual).covered
        tight_outcome = tight.evaluate(predicted, actual)
        wide_outcome = wide.evaluate(predicted, actual)
        assert len(wide_outcome.delivered_tiles) >= len(tight_outcome.delivered_tiles)

    def test_rejects_bad_parameters(self):
        world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
        with pytest.raises(ConfigurationError):
            CoverageEvaluator(world, TileGrid(), margin_deg=-1.0)
        with pytest.raises(ConfigurationError):
            CoverageEvaluator(world, TileGrid(), cell_tolerance=-1)
