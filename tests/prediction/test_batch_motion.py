"""Vectorized batch predictions vs the sequential predictor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.prediction.motion import LinearMotionPredictor, batch_linear_predictions
from repro.prediction.pose import Pose


def _random_walk(rng, num_slots):
    """A pose trajectory that exercises wrap (yaw) and clamp (pitch)."""
    steps = rng.normal(scale=[0.1, 0.1, 0.02, 25.0, 12.0, 5.0], size=(num_slots, 6))
    raw = np.cumsum(steps, axis=0)
    raw[:, 3] += 170.0  # start near the +-180 seam
    raw[:, 4] = np.clip(raw[:, 4] + 80.0, -90.0, 90.0)  # ride the pitch clamp
    return [Pose.from_vector(raw[t]) for t in range(num_slots)]


class TestBatchLinearPredictions:
    @pytest.mark.parametrize("window", [2, 3, 10])
    def test_bitwise_equal_to_sequential(self, window):
        rng = np.random.default_rng(42)
        poses = _random_walk(rng, 120)
        vectors = np.array([p.as_vector() for p in poses])
        batch = batch_linear_predictions(vectors, window=window, horizon=1)

        predictor = LinearMotionPredictor(window=window, horizon=1)
        for t, pose in enumerate(poses):
            sequential = predictor.predict()
            if sequential is None:
                assert np.isnan(batch[t]).all()
            else:
                assert tuple(batch[t]) == sequential.as_vector(), f"slot {t}"
            predictor.observe(pose)

    def test_short_trajectories(self):
        rng = np.random.default_rng(0)
        for num_slots in (1, 2, 3):
            vectors = np.array(
                [p.as_vector() for p in _random_walk(rng, num_slots)]
            )
            batch = batch_linear_predictions(vectors, window=10)
            assert batch.shape == (num_slots, 6)
            assert np.isnan(batch[0]).all()

    def test_rejects_bad_arguments(self):
        vectors = np.zeros((5, 6))
        with pytest.raises(ConfigurationError):
            batch_linear_predictions(vectors, window=1)
        with pytest.raises(ConfigurationError):
            batch_linear_predictions(vectors, window=5, horizon=0)
        with pytest.raises(ConfigurationError):
            batch_linear_predictions(np.zeros((5, 4)), window=3)
