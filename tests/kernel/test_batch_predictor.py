"""BatchMotionPredictor vs per-user LinearMotionPredictor.

Property test: drive a population through random walks with partial
observation masks and a mid-stream reset, and demand ``np.array_equal``
(bit-identical, NaN-free rows) between the batched fit and a fleet of
scalar predictors at every step.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernel import BatchMotionPredictor
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.pose import Pose

SEED = 20220806


def _random_poses(rng, num_users):
    poses = np.empty((num_users, 6))
    poses[:, 0:3] = rng.uniform(-50, 50, size=(num_users, 3))
    poses[:, 3] = rng.uniform(-180, 180, size=num_users)
    poses[:, 4] = rng.uniform(-90, 90, size=num_users)
    poses[:, 5] = rng.uniform(-180, 180, size=num_users)
    return poses


def _assert_matches_scalars(batch, scalars, step):
    out = batch.predict()
    for i, scalar in enumerate(scalars):
        want = scalar.predict()
        if want is None:
            assert np.all(np.isnan(out[i])), f"step {step} user {i}"
        else:
            want_arr = np.array(want.as_vector(), dtype=float)
            assert np.array_equal(out[i], want_arr), f"step {step} user {i}"


def test_matches_scalar_predictors_under_masks_and_resets():
    num_users, window, steps = 40, 10, 30
    rng = np.random.default_rng(SEED)
    batch = BatchMotionPredictor(num_users, window=window, horizon=1)
    scalars = [
        LinearMotionPredictor(window=window, horizon=1) for _ in range(num_users)
    ]
    for step in range(steps):
        poses = _random_poses(rng, num_users)
        mask = rng.uniform(size=num_users) < 0.8
        batch.observe(poses, mask=mask)
        for i in np.nonzero(mask)[0]:
            scalars[i].observe(Pose(*poses[i]))
        if step == 17:
            batch.reset_user(3)
            scalars[3].reset()
        _assert_matches_scalars(batch, scalars, step)


def test_smooth_walk_matches_scalar_predictors():
    # Correlated motion (the realistic case): small angular steps, so
    # the unwrap path sees genuine wraps rather than white noise.
    num_users, window, steps = 16, 6, 25
    rng = np.random.default_rng(SEED + 1)
    batch = BatchMotionPredictor(num_users, window=window, horizon=2)
    scalars = [
        LinearMotionPredictor(window=window, horizon=2) for _ in range(num_users)
    ]
    poses = _random_poses(rng, num_users)
    for step in range(steps):
        poses[:, 0:3] += rng.normal(0.0, 0.5, size=(num_users, 3))
        poses[:, 3] = (poses[:, 3] + rng.normal(15.0, 5.0, size=num_users) + 180.0) % 360.0 - 180.0
        poses[:, 4] = np.clip(poses[:, 4] + rng.normal(0.0, 3.0, size=num_users), -90.0, 90.0)
        poses[:, 5] = (poses[:, 5] + rng.normal(-10.0, 5.0, size=num_users) + 180.0) % 360.0 - 180.0
        batch.observe(poses)
        for i in range(num_users):
            scalars[i].observe(Pose(*poses[i]))
        _assert_matches_scalars(batch, scalars, step)


def test_empty_and_single_observation_rows():
    batch = BatchMotionPredictor(3, window=4)
    out = batch.predict()
    assert np.all(np.isnan(out))
    poses = np.arange(18, dtype=float).reshape(3, 6)
    batch.observe(poses, mask=np.array([True, False, False]))
    out = batch.predict()
    assert np.array_equal(out[0], poses[0])  # single obs: passthrough
    assert np.all(np.isnan(out[1:]))
    assert list(batch.num_observations) == [1, 0, 0]


def test_reset_clears_all_users():
    batch = BatchMotionPredictor(2, window=3)
    batch.observe(np.ones((2, 6)))
    batch.reset()
    assert np.all(np.isnan(batch.predict()))


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_users": 0},
        {"num_users": 1, "window": 1},
        {"num_users": 1, "horizon": 0},
    ],
)
def test_bad_constructor_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        BatchMotionPredictor(**{"window": 5, **kwargs})


def test_bad_observe_and_predict_rejected():
    batch = BatchMotionPredictor(2, window=3)
    with pytest.raises(ConfigurationError):
        batch.observe(np.zeros((3, 6)))
    with pytest.raises(ConfigurationError):
        batch.predict(horizon=0)
    with pytest.raises(ConfigurationError):
        batch.reset_user(2)
