"""SlotBatch construction, validation, and bit-identity of its math.

``gain_matrix`` must equal :func:`repro.core.decomposition.slot_objective`
entry by entry with ``==`` (no tolerance), and ``mm1_delay_matrix``
must match :meth:`repro.simulation.delaymodel.MM1DelayModel.delay`
across every branch: healthy link, saturated link, dead link.
"""

import numpy as np
import pytest

from repro.core.allocation import SlotProblem, UserSlotState
from repro.core.decomposition import skip_objective, slot_objective
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.kernel import SlotBatch, mm1_delay_matrix
from repro.simulation.delaymodel import MM1DelayModel

WEIGHTS = QoEWeights(alpha=0.02, beta=0.5)


def _random_batch(rng, num_users=16, num_levels=5, t=7):
    base = rng.uniform(0.5, 3.0, size=num_users)
    sizes = base[:, None] * 1.5 ** np.arange(num_levels)[None, :]
    caps = rng.uniform(5.0, 100.0, size=num_users)
    return SlotBatch(
        t=t,
        sizes=sizes,
        delays=mm1_delay_matrix(sizes, caps),
        delta=rng.uniform(0.0, 1.0, size=num_users),
        qbar=rng.uniform(0.0, num_levels, size=num_users),
        caps_mbps=caps,
        budget_mbps=float(sizes.sum()),
        weights=WEIGHTS,
    )


class TestMm1DelayMatrix:
    def test_matches_scalar_model_branch_by_branch(self):
        rng = np.random.default_rng(0)
        model = MM1DelayModel()
        rates = rng.uniform(0.0, 30.0, size=(64, 4))
        # Mix healthy, nearly saturated, saturated, and dead links.
        bandwidth = np.concatenate(
            [
                rng.uniform(1.0, 40.0, size=32),
                rng.uniform(0.0, 5.0, size=16),
                np.zeros(16),
            ]
        )
        got = mm1_delay_matrix(rates, bandwidth)
        for n in range(rates.shape[0]):
            for k in range(rates.shape[1]):
                want = model.delay(float(rates[n, k]), float(bandwidth[n]))
                assert got[n, k] == want, (n, k)

    def test_idle_dead_link_is_free(self):
        got = mm1_delay_matrix(np.array([[0.0, 1.0]]), np.array([0.0]))
        assert got[0, 0] == 0.0
        assert got[0, 1] == 100.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            mm1_delay_matrix(np.array([[-1.0]]), np.array([10.0]))

    def test_bad_max_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            mm1_delay_matrix(np.array([[1.0]]), np.array([10.0]), max_delay=0.0)


class TestGainMatrix:
    def test_matches_slot_objective_exactly(self):
        rng = np.random.default_rng(1)
        batch = _random_batch(rng)
        gains = batch.gain_matrix()
        for n in range(batch.num_users):
            for q in range(1, batch.num_levels + 1):
                want = slot_objective(
                    q,
                    batch.t,
                    float(batch.qbar[n]),
                    float(batch.delta[n]),
                    WEIGHTS.alpha,
                    WEIGHTS.beta,
                    float(batch.delays[n, q - 1]),
                )
                assert gains[n, q - 1] == want, (n, q)

    def test_skip_values_match_skip_objective(self):
        rng = np.random.default_rng(2)
        batch = _random_batch(rng)
        skips = batch.skip_values()
        for n in range(batch.num_users):
            assert skips[n] == skip_objective(
                batch.t, float(batch.qbar[n]), WEIGHTS.beta
            )


class TestFromProblem:
    def test_round_trips_a_slot_problem(self):
        model = MM1DelayModel()
        users = tuple(
            UserSlotState(
                sizes=(1.0 + n, 2.0 + n, 4.0 + n),
                delay_of_rate=model.delay_fn(20.0 + n),
                delta=0.5 + 0.1 * n,
                qbar=float(n),
                cap_mbps=20.0 + n,
            )
            for n in range(3)
        )
        problem = SlotProblem(
            t=5,
            users=users,
            budget_mbps=9.0,
            weights=WEIGHTS,
            allow_skip=True,
            router_of=(0, 0, 1),
            router_budgets_mbps=(6.0, 6.0),
        )
        batch = SlotBatch.from_problem(problem)
        assert batch.t == 5
        assert batch.num_users == 3 and batch.num_levels == 3
        assert batch.allow_skip
        for n, user in enumerate(users):
            assert tuple(batch.sizes[n]) == user.sizes
            assert batch.delta[n] == user.delta
            assert batch.qbar[n] == user.qbar
            for k, size in enumerate(user.sizes):
                assert batch.delays[n, k] == user.delay_of_rate(size)
        assert tuple(batch.router_of) == (0, 0, 1)
        assert tuple(batch.router_budgets_mbps) == (6.0, 6.0)
        assert batch.nbytes() > 0


class TestValidation:
    def _kwargs(self, **overrides):
        kwargs = dict(
            t=1,
            sizes=np.array([[1.0, 2.0]]),
            delays=np.zeros((1, 2)),
            delta=np.array([0.5]),
            qbar=np.array([0.0]),
            caps_mbps=np.array([10.0]),
            budget_mbps=5.0,
            weights=WEIGHTS,
        )
        kwargs.update(overrides)
        return kwargs

    def test_valid_batch_accepted(self):
        SlotBatch(**self._kwargs())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"t": 0},
            {"sizes": np.array([1.0, 2.0])},
            {"delays": np.zeros((1, 3))},
            {"delta": np.array([0.5, 0.5])},
            {"qbar": np.zeros(2)},
            {"caps_mbps": np.zeros(2)},
            {"budget_mbps": -1.0},
            {"delta": np.array([1.5])},
            {"sizes": np.array([[2.0, 1.0]]), "delays": np.zeros((1, 2))},
            {"router_of": np.array([0])},
            {"router_of": np.array([0, 1]), "router_budgets_mbps": np.array([1.0, 1.0])},
        ],
    )
    def test_bad_batch_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            SlotBatch(**self._kwargs(**overrides))
