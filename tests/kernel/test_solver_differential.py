"""Array solver vs heap solver: bit-identical, or an honest refusal.

The same 200-round seeded sweep as ``tests/knapsack/test_differential``
plus the constraint variants (caps, groups, skip), comparing
:func:`repro.kernel.solver.solve_arrays` against the heap strategy.
Identity here means ``==`` on options, value, and weight — floats
included, no tolerance.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleAllocationError
from repro.kernel.solver import solve_arrays
from repro.knapsack import combined_greedy
from repro.knapsack.random_instances import random_instance

NUM_ROUNDS = 200
SEED = 20220806


def _arrays_of(problem):
    values = np.array([item.values for item in problem.items], dtype=float)
    weights = np.array([item.weights for item in problem.items], dtype=float)
    caps = np.array([item.cap for item in problem.items], dtype=float)
    skip = (
        np.array(problem.skip_values, dtype=float)
        if problem.skip_values
        else None
    )
    group_of = (
        np.array(problem.group_of, dtype=np.int64)
        if problem.group_of is not None
        else None
    )
    group_budgets = (
        np.array(problem.group_budgets, dtype=float)
        if problem.group_budgets is not None
        else None
    )
    return values, weights, caps, skip, group_of, group_budgets


def _solve_both(problem):
    heap = combined_greedy(problem, strategy="heap")
    values, weights, caps, skip, group_of, group_budgets = _arrays_of(problem)
    array = solve_arrays(
        values,
        weights,
        problem.budget,
        caps=caps,
        allow_skip=problem.allow_skip,
        skip_values=skip,
        group_of=group_of,
        group_budgets=group_budgets,
    )
    return heap, array


def _assert_identical(problem, round_index):
    heap, array = _solve_both(problem)
    assert array is not None, f"round {round_index}: fast path refused"
    assert array.options == heap.options, f"round {round_index}"
    assert array.value == heap.value, f"round {round_index}"
    assert array.weight == heap.weight, f"round {round_index}"


class TestSolverDifferential:
    def test_plain_instances(self):
        rng = np.random.default_rng(SEED)
        for round_index in range(NUM_ROUNDS):
            problem = random_instance(
                rng,
                num_items=int(rng.integers(1, 7)),
                num_options=int(rng.integers(2, 6)),
                tightness=float(rng.uniform(0.0, 1.1)),
            )
            _assert_identical(problem, round_index)

    def test_capped_instances(self):
        rng = np.random.default_rng(SEED)
        for round_index in range(NUM_ROUNDS):
            problem = random_instance(
                rng,
                num_items=int(rng.integers(1, 7)),
                num_options=int(rng.integers(2, 6)),
                tightness=float(rng.uniform(0.0, 1.1)),
                with_caps=True,
            )
            _assert_identical(problem, round_index)

    def test_skip_instances(self):
        rng = np.random.default_rng(SEED)
        for round_index in range(NUM_ROUNDS):
            problem = random_instance(
                rng,
                num_items=int(rng.integers(1, 7)),
                num_options=int(rng.integers(2, 6)),
                tightness=float(rng.uniform(0.0, 1.1)),
                allow_skip=True,
            )
            _assert_identical(problem, round_index)

    def test_grouped_instances(self):
        rng = np.random.default_rng(SEED)
        for round_index in range(NUM_ROUNDS):
            problem = random_instance(
                rng,
                num_items=int(rng.integers(2, 7)),
                num_options=int(rng.integers(2, 6)),
                tightness=float(rng.uniform(0.0, 1.1)),
                num_groups=int(rng.integers(1, 4)),
            )
            _assert_identical(problem, round_index)

    def test_everything_at_once(self):
        rng = np.random.default_rng(SEED)
        for round_index in range(NUM_ROUNDS):
            problem = random_instance(
                rng,
                num_items=int(rng.integers(2, 7)),
                num_options=int(rng.integers(2, 6)),
                tightness=float(rng.uniform(0.0, 1.1)),
                with_caps=True,
                num_groups=int(rng.integers(1, 4)),
                allow_skip=True,
            )
            _assert_identical(problem, round_index)


class TestFastPathBoundaries:
    def test_non_monotone_priorities_refused(self):
        # A convex value curve makes the density deltas *increase*
        # along the row, breaking the sorted-sweep precondition; the
        # solver must refuse (return None), never guess.
        values = np.array([[0.0, 1.0, 5.0]])
        weights = np.array([[1.0, 2.0, 3.0]])
        assert solve_arrays(values, weights, budget=10.0) is None

    def test_negative_tail_is_truncated_not_refused(self):
        # Decreasing then negative priorities stay on the fast path:
        # the object greedy stops at the first negative candidate, the
        # array solver truncates the row there.
        values = np.array([[0.0, 2.0, 1.0]])
        weights = np.array([[1.0, 2.0, 3.0]])
        solution = solve_arrays(values, weights, budget=10.0)
        assert solution is not None
        assert solution.options == (1,)

    def test_single_level_rows(self):
        values = np.array([[1.0], [2.0]])
        weights = np.array([[1.0], [1.0]])
        solution = solve_arrays(values, weights, budget=10.0)
        assert solution is not None
        assert solution.options == (0, 0)

    def test_infeasible_base_raises(self):
        values = np.array([[1.0, 2.0]])
        weights = np.array([[5.0, 6.0]])
        with pytest.raises(InfeasibleAllocationError):
            solve_arrays(values, weights, budget=1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_arrays(np.zeros((2, 3)), np.ones((2, 2)), budget=1.0)

    def test_unknown_order_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_arrays(
                np.zeros((1, 2)), np.ones((1, 2)), budget=1.0, order="magic"
            )
