"""BatchCoverage vs the scalar CoverageEvaluator.

Random poses and cells through both paths, with the evaluator cache
enabled (bucketed fast path) and disabled (per-user fallback); the
indicators must be identical, and correlated draws must produce
positive indicators so the test cannot pass vacuously.
"""

import numpy as np
import pytest

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.errors import ConfigurationError
from repro.kernel import BatchCoverage
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose

SEED = 20220806


def _evaluator(cache, margin_deg=15.0):
    # margin 15 deg admits an exact yaw bucket (vectorized bitmask
    # path); margin 10 deg does not, forcing the per-user fallback.
    return CoverageEvaluator(
        world=GridWorld(),
        grid=TileGrid(rows=2, cols=2),
        fov=FieldOfView(horizontal_deg=90.0, vertical_deg=90.0),
        margin_deg=margin_deg,
        cache=cache,
    )


def _scalar_indicators(evaluator, pyaw, ppitch, ayaw, apitch, pcell, acell):
    out = np.empty(pyaw.shape[0], dtype=np.int64)
    for i in range(out.size):
        outcome = evaluator.evaluate(
            Pose(0, 0, 0, float(pyaw[i]), float(ppitch[i]), 0),
            Pose(0, 0, 0, float(ayaw[i]), float(apitch[i]), 0),
            predicted_cell=int(pcell[i]),
            actual_cell=int(acell[i]),
        )
        out[i] = outcome.indicator
    return out


@pytest.mark.parametrize(
    "cache,margin", [(True, 15.0), (True, 10.0), (False, 15.0)]
)
def test_matches_scalar_evaluator_on_random_poses(cache, margin):
    rng = np.random.default_rng(SEED)
    world = GridWorld()
    batch = BatchCoverage(_evaluator(cache, margin))
    num = 500
    pyaw = rng.uniform(-180, 180, size=num)
    ppitch = rng.uniform(-90, 90, size=num)
    ayaw = rng.uniform(-180, 180, size=num)
    apitch = rng.uniform(-90, 90, size=num)
    pcell = rng.integers(0, world.rows * world.cols, size=num)
    acell = rng.integers(0, world.rows * world.cols, size=num)
    got = batch.indicators(pyaw, ppitch, ayaw, apitch, pcell, acell)
    want = _scalar_indicators(
        _evaluator(cache, margin), pyaw, ppitch, ayaw, apitch, pcell, acell
    )
    assert np.array_equal(got, want)


@pytest.mark.parametrize("cache", [True, False])
def test_correlated_draws_cover(cache):
    # Good predictions: actual pose and cell near the predicted ones.
    rng = np.random.default_rng(SEED + 1)
    world = GridWorld()
    batch = BatchCoverage(_evaluator(cache))
    num = 200
    pyaw = rng.uniform(-180, 180, size=num)
    ppitch = rng.uniform(-60, 60, size=num)
    ayaw = pyaw + rng.normal(0.0, 3.0, size=num)
    apitch = np.clip(ppitch + rng.normal(0.0, 3.0, size=num), -90, 90)
    pcell = rng.integers(0, world.rows * world.cols, size=num)
    acell = pcell.copy()
    got = batch.indicators(pyaw, ppitch, ayaw, apitch, pcell, acell)
    want = _scalar_indicators(
        _evaluator(cache), pyaw, ppitch, ayaw, apitch, pcell, acell
    )
    assert np.array_equal(got, want)
    assert got.sum() > num // 2  # mostly covered, not vacuously zero


def test_repeated_calls_reuse_the_mask_memo():
    rng = np.random.default_rng(SEED + 2)
    world = GridWorld()
    batch = BatchCoverage(_evaluator(True))
    num = 64
    args = (
        rng.uniform(-180, 180, size=num),
        rng.uniform(-90, 90, size=num),
        rng.uniform(-180, 180, size=num),
        rng.uniform(-90, 90, size=num),
        rng.integers(0, world.rows * world.cols, size=num),
        rng.integers(0, world.rows * world.cols, size=num),
    )
    first = batch.indicators(*args)
    memo_sizes = (len(batch._deliver_masks), len(batch._needed_masks))
    second = batch.indicators(*args)
    assert np.array_equal(first, second)
    assert (len(batch._deliver_masks), len(batch._needed_masks)) == memo_sizes
    assert memo_sizes[0] > 0


def test_shape_mismatch_rejected():
    batch = BatchCoverage(_evaluator(True))
    with pytest.raises(ConfigurationError):
        batch.indicators(
            np.zeros(3), np.zeros(3), np.zeros(2), np.zeros(3),
            np.zeros(3, dtype=int), np.zeros(3, dtype=int),
        )
