"""ArrayAllocator vs the object heap allocator on real slot problems.

The solver differential covers the knapsack layer; these tests cover
the layer above it — eq. (9) gain construction, M/M/1 delays, skip
options, router groups — by allocating the *same* random
:class:`~repro.core.allocation.SlotProblem` through both allocators
and demanding identical level lists.
"""

import numpy as np
import pytest

from repro.core.allocation import (
    DensityValueGreedyAllocator,
    SlotProblem,
    UserSlotState,
)
from repro.core.qoe import QoEWeights
from repro.core.scheduler import CollaborativeVrScheduler
from repro.errors import ConfigurationError
from repro.kernel import ArrayAllocator, SlotBatch, mm1_delay_matrix
from repro.simulation.delaymodel import MM1DelayModel

NUM_ROUNDS = 200
SEED = 20220806

WEIGHTS = QoEWeights(alpha=0.02, beta=0.5)


def _random_problem(rng, model):
    n = int(rng.integers(1, 12))
    num_levels = int(rng.integers(2, 7))
    t = int(rng.integers(1, 50))
    users = []
    for _ in range(n):
        base = float(rng.uniform(0.5, 3.0))
        sizes = tuple(base * 1.5**k for k in range(num_levels))
        cap = float(rng.uniform(5.0, 100.0))
        users.append(
            UserSlotState(
                sizes=sizes,
                delay_of_rate=model.delay_fn(cap),
                delta=float(rng.uniform(0.0, 1.0)),
                qbar=float(rng.uniform(0.0, num_levels)),
                cap_mbps=cap,
            )
        )
    base_total = sum(u.sizes[0] for u in users)
    top_total = sum(u.sizes[-1] for u in users)
    budget = base_total + float(rng.uniform(0.0, 1.0)) * (top_total - base_total)
    router_of = None
    router_budgets = None
    if rng.integers(0, 2):
        num_routers = int(rng.integers(1, 3))
        router_of = tuple(int(x) for x in rng.integers(0, num_routers, size=n))
        router_budgets = tuple(
            float(budget * rng.uniform(0.4, 1.0)) for _ in range(num_routers)
        )
    return SlotProblem(
        t=t,
        users=tuple(users),
        budget_mbps=budget,
        weights=WEIGHTS,
        allow_skip=bool(rng.integers(0, 2)),
        router_of=router_of,
        router_budgets_mbps=router_budgets,
    )


def test_allocators_identical_over_random_slots():
    rng = np.random.default_rng(SEED)
    model = MM1DelayModel()
    heap_alloc = DensityValueGreedyAllocator()
    array_alloc = ArrayAllocator()
    for round_index in range(NUM_ROUNDS):
        problem = _random_problem(rng, model)
        try:
            want = heap_alloc.allocate(problem)
        except Exception as exc:
            # Infeasible draws must fail identically on both paths.
            with pytest.raises(type(exc)):
                array_alloc.allocate(problem)
            continue
        got = array_alloc.allocate(problem)
        assert got == want, f"round {round_index}: {got} != {want}"
    assert array_alloc.fallbacks == 0


def test_ragged_menu_falls_back_to_heap():
    model = MM1DelayModel()
    users = (
        UserSlotState(
            sizes=(1.0, 2.0, 4.0),
            delay_of_rate=model.delay_fn(50.0),
            delta=0.9,
            qbar=1.0,
            cap_mbps=50.0,
        ),
        UserSlotState(
            sizes=(1.0, 3.0),
            delay_of_rate=model.delay_fn(50.0),
            delta=0.8,
            qbar=0.5,
            cap_mbps=50.0,
        ),
    )
    problem = SlotProblem(
        t=3, users=users, budget_mbps=5.0, weights=WEIGHTS
    )
    with pytest.raises(ConfigurationError):
        SlotBatch.from_problem(problem)
    array_alloc = ArrayAllocator()
    heap_alloc = DensityValueGreedyAllocator()
    assert array_alloc.allocate(problem) == heap_alloc.allocate(problem)
    assert array_alloc.fallbacks == 1
    array_alloc.reset()
    assert array_alloc.fallbacks == 0


def test_scheduler_batch_path_matches_problem_path():
    rng = np.random.default_rng(SEED + 1)
    model = MM1DelayModel()
    num_users, num_levels, num_slots = 8, 5, 20
    object_sched = CollaborativeVrScheduler(
        num_users, DensityValueGreedyAllocator(), WEIGHTS, allow_skip=True
    )
    array_sched = CollaborativeVrScheduler(
        num_users, ArrayAllocator(), WEIGHTS, allow_skip=True
    )
    for _ in range(num_slots):
        base = rng.uniform(0.5, 3.0, size=num_users)
        sizes = base[:, None] * 1.5 ** np.arange(num_levels)[None, :]
        caps = rng.uniform(5.0, 100.0, size=num_users)
        budget = float(sizes[:, 0].sum() + rng.uniform(0.0, 1.0) * (
            sizes[:, -1].sum() - sizes[:, 0].sum()
        ))

        problem = object_sched.build_slot_problem(
            sizes=[tuple(row) for row in sizes],
            delay_fns=[model.delay_fn(float(c)) for c in caps],
            caps_mbps=list(caps),
            budget_mbps=budget,
        )
        want = object_sched.allocate(problem)

        batch = array_sched.build_slot_batch(
            sizes=sizes,
            delays=mm1_delay_matrix(sizes, caps),
            caps_mbps=caps,
            budget_mbps=budget,
        )
        got = array_sched.allocator.allocate_batch(batch)
        assert got is not None, "array kernel refused a scheduler batch"
        assert [int(level) for level in got] == want

        # Fold identical outcomes so the running qbar/delta state (and
        # therefore the next slot's gain matrices) stays in lockstep.
        indicators = (rng.uniform(size=num_users) < 0.85).astype(int)
        delays = rng.uniform(0.0, 2.0, size=num_users)
        object_sched.record_outcomes(want, list(indicators), list(delays))
        array_sched.record_outcomes(want, list(indicators), list(delays))

    assert object_sched.total_qoe() == array_sched.total_qoe()
