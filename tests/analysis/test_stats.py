"""Tests for the statistical helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    jain_fairness,
    mean_difference_significant,
)
from repro.errors import ConfigurationError


class TestBootstrapCi:
    def test_contains_mean(self):
        mean, lo, hi = bootstrap_ci([1.0, 2.0, 3.0, 4.0], num_resamples=500)
        assert lo <= mean <= hi
        assert mean == pytest.approx(2.5)

    def test_tightens_with_more_data(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=1000)
        _, lo_s, hi_s = bootstrap_ci(small, num_resamples=500)
        _, lo_l, hi_l = bootstrap_ci(large, num_resamples=500)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_deterministic_given_seed(self):
        a = bootstrap_ci([1.0, 5.0, 9.0], seed=3, num_resamples=200)
        b = bootstrap_ci([1.0, 5.0, 9.0], seed=3, num_resamples=200)
        assert a == b

    def test_degenerate_sample(self):
        mean, lo, hi = bootstrap_ci([2.0], num_resamples=100)
        assert mean == lo == hi == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], num_resamples=5)


class TestMeanDifferenceSignificant:
    def test_clear_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5, 0.5, size=100)
        b = rng.normal(1, 0.5, size=100)
        assert mean_difference_significant(a, b)

    def test_no_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, size=100)
        b = rng.normal(0, 1, size=100)
        assert not mean_difference_significant(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_difference_significant([], [1.0])


class TestJainFairness:
    def test_perfect_equality(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hog(self):
        n = 4
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(1.0 / n)

    def test_range(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            values = rng.uniform(0, 10, size=int(rng.integers(2, 10)))
            index = jain_fairness(values)
            assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    def test_negative_values_shifted(self):
        # The shift maps the min to zero; ordering still sensible.
        skewed = jain_fairness([-1.0, 5.0])
        balanced = jain_fairness([2.0, 2.0])
        assert skewed < balanced

    def test_all_zero(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jain_fairness([])
