"""Tests for the empirical CDF utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCdf
from repro.errors import ConfigurationError


class TestEmpiricalCdf:
    def test_basic(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.num_samples == 4
        assert cdf.min == 1.0
        assert cdf.max == 4.0
        assert cdf.mean() == pytest.approx(2.5)

    def test_evaluate(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0
        assert cdf.median() == 2.0

    def test_rejects_empty_and_nan(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([])
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([1.0, float("nan")])

    def test_rejects_bad_quantile(self):
        cdf = EmpiricalCdf([1.0])
        with pytest.raises(ConfigurationError):
            cdf.quantile(1.5)

    def test_curve(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0])
        xs, ys = cdf.curve(points=10)
        assert len(xs) == 10
        assert ys[0] > 0.0  # right-continuous at the minimum
        assert ys[-1] == 1.0
        assert (np.diff(ys) >= 0).all()

    def test_curve_rejects_too_few_points(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([1.0]).curve(points=1)

    def test_stochastic_dominance(self):
        better = EmpiricalCdf([3.0, 4.0, 5.0])
        worse = EmpiricalCdf([1.0, 2.0, 3.0])
        assert better.stochastically_dominates(worse)
        assert not worse.stochastically_dominates(better)

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, samples):
        cdf = EmpiricalCdf(samples)
        assert cdf.evaluate(cdf.max) == 1.0
        assert cdf.evaluate(cdf.min - 1.0) == 0.0
        # Monotone non-decreasing over arbitrary probe points.
        probes = np.linspace(cdf.min - 1, cdf.max + 1, 13)
        values = [cdf.evaluate(x) for x in probes]
        assert all(b >= a for a, b in zip(values, values[1:]))

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50),
        st.floats(0.01, 0.99),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_inverts_evaluate(self, samples, p):
        cdf = EmpiricalCdf(samples)
        q = cdf.quantile(p)
        assert cdf.evaluate(q) >= p - 1e-12
