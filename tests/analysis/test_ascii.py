"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.ascii import ascii_bars, ascii_cdf
from repro.analysis.cdf import EmpiricalCdf
from repro.errors import ConfigurationError


class TestAsciiBars:
    def test_renders_all_labels(self):
        chart = ascii_bars({"ours": 2.0, "firefly": 1.0})
        assert "ours" in chart
        assert "firefly" in chart

    def test_longest_bar_is_largest_value(self):
        chart = ascii_bars({"a": 4.0, "b": 1.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_negative_values_marked(self):
        chart = ascii_bars({"bad": -1.0, "good": 1.0})
        assert "-" in chart.splitlines()[0]

    def test_zero_scale(self):
        chart = ascii_bars({"a": 0.0})
        assert "0.000" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_bars({})
        with pytest.raises(ConfigurationError):
            ascii_bars({"a": 1.0}, width=2)


class TestAsciiCdf:
    def test_renders_grid_and_legend(self):
        cdfs = {
            "ours": EmpiricalCdf([2.0, 3.0, 4.0]),
            "firefly": EmpiricalCdf([1.0, 2.0, 3.0]),
        }
        chart = ascii_cdf(cdfs)
        assert "o=ours" in chart
        assert "x=firefly" in chart
        assert "1.00 |" in chart

    def test_single_series(self):
        chart = ascii_cdf({"only": EmpiricalCdf([1.0, 5.0])})
        assert "o=only" in chart

    def test_degenerate_support(self):
        chart = ascii_cdf({"const": EmpiricalCdf([3.0, 3.0])})
        assert "const" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_cdf({})
        with pytest.raises(ConfigurationError):
            ascii_cdf({"a": EmpiricalCdf([1.0])}, width=2)
        too_many = {
            f"s{i}": EmpiricalCdf([float(i)]) for i in range(9)
        }
        with pytest.raises(ConfigurationError):
            ascii_cdf(too_many)
