"""Tests for remaining report/CDF helpers."""

import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.report import cdf_summary_rows


class TestCdfSummaryRows:
    def test_rows_per_algorithm(self):
        cdfs = {
            "ours": EmpiricalCdf([1.0, 2.0, 3.0, 4.0]),
            "firefly": EmpiricalCdf([0.0, 1.0, 2.0, 3.0]),
        }
        rows = cdf_summary_rows(cdfs, quantiles=(0.25, 0.5, 0.75))
        assert set(rows) == {"ours", "firefly"}
        assert rows["ours"] == [
            pytest.approx(1.0),
            pytest.approx(2.0),
            pytest.approx(3.0),
        ]

    def test_default_quantiles(self):
        rows = cdf_summary_rows({"x": EmpiricalCdf([5.0])})
        assert len(rows["x"]) == 5
        assert all(v == 5.0 for v in rows["x"])


class TestStochasticDominance:
    def test_identical_distributions_dominate_each_other(self):
        a = EmpiricalCdf([1.0, 2.0])
        b = EmpiricalCdf([1.0, 2.0])
        assert a.stochastically_dominates(b)
        assert b.stochastically_dominates(a)

    def test_crossing_distributions_no_dominance(self):
        # a has lower spread around the same median; CDFs cross.
        a = EmpiricalCdf([1.9, 2.0, 2.1])
        b = EmpiricalCdf([1.0, 2.0, 3.0])
        assert not a.stochastically_dominates(b)
        assert not b.stochastically_dominates(a)

    def test_shifted_distribution_dominates(self):
        low = EmpiricalCdf([1.0, 2.0, 3.0])
        high = EmpiricalCdf([2.0, 3.0, 4.0])
        assert high.stochastically_dominates(low)
        assert not low.stochastically_dominates(high)
