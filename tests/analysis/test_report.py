"""Tests for the reporting helpers."""

import pytest

from repro.analysis.report import (
    comparison_table,
    format_table,
    improvement_percent,
)
from repro.errors import ConfigurationError


class TestImprovementPercent:
    def test_positive_baseline(self):
        assert improvement_percent(1.819, 1.0) == pytest.approx(81.9)

    def test_regression(self):
        assert improvement_percent(0.5, 1.0) == pytest.approx(-50.0)

    def test_negative_baseline(self):
        """Fig. 8: improvement over a negative-QoE baseline keeps sign."""
        assert improvement_percent(1.0, -0.5) == pytest.approx(300.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            improvement_percent(1.0, 0.0)


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestComparisonTable:
    def metrics(self):
        return {
            "ours": {"qoe": 2.0, "delay": 0.5},
            "firefly": {"qoe": 1.0, "delay": 1.0},
        }

    def test_basic(self):
        table = comparison_table(self.metrics(), ["qoe", "delay"])
        assert "ours" in table
        assert "firefly" in table

    def test_reference_column(self):
        table = comparison_table(self.metrics(), ["qoe", "delay"], reference="firefly")
        assert "+100.0" in table
        assert "vs firefly" in table

    def test_unknown_reference(self):
        with pytest.raises(ConfigurationError):
            comparison_table(self.metrics(), ["qoe"], reference="nope")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            comparison_table({}, ["qoe"])
