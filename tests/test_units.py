"""Tests for the shared unit conventions."""

import pytest

from repro import units


class TestConstants:
    def test_paper_constants(self):
        assert units.TARGET_FPS == 60
        assert units.DEFAULT_NUM_LEVELS == 6
        assert units.CRF_VALUES == (15, 19, 23, 27, 31, 35)
        assert units.SERVER_MBPS_PER_USER == 36.0
        assert units.TRACE_MIN_MBPS == 20.0
        assert units.TRACE_MAX_MBPS == 100.0
        assert units.SETUP1_SERVER_MBPS == 400.0
        assert units.SETUP2_SERVER_MBPS == 800.0
        assert units.CLIENT_DECODERS == 5
        assert units.THROTTLE_GUIDELINES_MBPS == (40.0, 45.0, 50.0, 55.0, 60.0)

    def test_slot_duration(self):
        assert units.SLOT_DURATION_S == pytest.approx(1 / 60)
        assert units.TRACE_SLOT_DURATION_S == 0.015

    def test_qoe_weight_constants(self):
        assert (units.SIM_ALPHA, units.SIM_BETA) == (0.02, 0.5)
        assert (units.SYSTEM_ALPHA, units.SYSTEM_BETA) == (0.1, 0.5)

    def test_fov_fraction(self):
        assert units.FOV_FRACTION == 0.20


class TestConversions:
    def test_mbps_to_bits_roundtrip(self):
        bits = units.mbps_to_bits_per_slot(36.0)
        assert bits == pytest.approx(36.0e6 / 60)
        assert units.bits_per_slot_to_mbps(bits) == pytest.approx(36.0)

    def test_custom_slot_duration(self):
        bits = units.mbps_to_bits_per_slot(10.0, slot_s=0.015)
        assert bits == pytest.approx(150_000.0)
        assert units.bits_per_slot_to_mbps(bits, slot_s=0.015) == pytest.approx(10.0)

    def test_zero_rate(self):
        assert units.mbps_to_bits_per_slot(0.0) == 0.0
