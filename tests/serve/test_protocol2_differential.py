"""Differential equivalence: the binary codec vs the JSON codec.

The wire format is an implementation detail of the serving loop — the
planner, data plane, QoE ledgers, and telemetry must not be able to
tell which codec carried the frames.  These tests run the same seeded
lockstep fleet once per codec generation and require the results to
be **bit-identical** everywhere except wall-clock stage latencies:

* per-client ledgers (frames, displayed, quality, delay, fps);
* the server's per-seat QoE summaries sent in the end-of-run frame;
* the full per-(slot, user) telemetry stream;
* the metrics summary minus its ``stage_latency_ms`` section.

A second group pins the negotiation matrix: every (server ceiling,
client offer) pair lands on the newest mutually spoken generation,
and a future-generation offer downgrades instead of failing.
"""

import asyncio
from dataclasses import replace

from repro.serve.config import PROTOCOL_VERSION, serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet
from repro.serve.protocol import JoinRequest, Welcome, read_message, send_message
from repro.serve.protocol2 import (
    CODEC_BINARY,
    CODEC_JSON,
    SUPPORTED_CODEC,
    negotiate_codec,
)
from repro.serve.server import VrServeServer


def _run(server_codec, client_codec, num=3, slots=31, seed=5):
    serve_config = replace(
        serve_setup1(
            max_users=num, duration_slots=slots, seed=seed,
            expect_clients=num, lockstep=True,
        ),
        codec_max=server_codec,
    )
    fleet_config = LoadGenConfig(
        num_clients=num, seed=seed, codec=client_codec
    )
    return asyncio.run(run_serve_and_fleet(serve_config, fleet_config))


def _ledger(fleet):
    """Per-seat client ledger with every deterministic field."""
    return {
        client.seat: (
            client.frames,
            client.displayed,
            client.mean_viewed_quality,
            client.mean_delay_slots,
            client.fps,
            client.end_reason,
            client.resumes,
            client.server_summary,
        )
        for client in fleet.admitted
    }


def _scrubbed_summary(result):
    """Metrics summary minus the wall-clock-dependent figures.

    Stage latencies are measured in real time even under lockstep,
    and the deadline-hit counters are derived from them; everything
    else in the summary is required to match exactly.
    """
    summary = result.metrics.summary()
    for clock_key in ("stage_latency_ms", "deadline_hits", "deadline_hit_rate"):
        summary.pop(clock_key)
    return summary


class TestCodecEquivalence:
    def test_lockstep_run_is_bit_identical_across_codecs(self):
        result_v1, fleet_v1 = _run(CODEC_JSON, CODEC_JSON)
        result_v2, fleet_v2 = _run(CODEC_BINARY, CODEC_BINARY)
        assert _ledger(fleet_v1) == _ledger(fleet_v2)
        assert _scrubbed_summary(result_v1) == _scrubbed_summary(result_v2)
        assert (
            result_v1.metrics.telemetry.records
            == result_v2.metrics.telemetry.records
        )
        # The runs really did speak different generations.
        assert result_v1.metrics.protocol_sessions == {"1": 3}
        assert result_v2.metrics.protocol_sessions == {"2": 3}

    def test_downgraded_run_matches_native_json_run(self):
        """codec_max=1 server forces v2 clients onto the JSON wire —
        and the downgraded run is indistinguishable from a native one."""
        result_native, fleet_native = _run(CODEC_JSON, CODEC_JSON)
        result_down, fleet_down = _run(CODEC_JSON, CODEC_BINARY)
        assert result_down.metrics.protocol_sessions == {"1": 3}
        assert _ledger(fleet_native) == _ledger(fleet_down)
        assert _scrubbed_summary(result_native) == _scrubbed_summary(result_down)

    def test_v1_client_on_v2_server_stays_json(self):
        result, fleet = _run(CODEC_BINARY, CODEC_JSON)
        assert result.metrics.protocol_sessions == {"1": 3}
        assert {c.end_reason for c in fleet.admitted} == {"complete"}

    def test_equivalence_holds_with_degradation_active(self):
        """A tighter fleet where lag degradation fires: the codec must
        not shift which seats degrade or when."""
        result_v1, fleet_v1 = _run(CODEC_JSON, CODEC_JSON, num=6, slots=41)
        result_v2, fleet_v2 = _run(CODEC_BINARY, CODEC_BINARY, num=6, slots=41)
        assert _ledger(fleet_v1) == _ledger(fleet_v2)
        assert _scrubbed_summary(result_v1) == _scrubbed_summary(result_v2)


class TestNegotiationMatrix:
    def test_negotiate_codec_truth_table(self):
        assert negotiate_codec(1, 2) == CODEC_JSON
        assert negotiate_codec(2, 2) == CODEC_BINARY
        assert negotiate_codec(2, 1) == CODEC_JSON
        assert negotiate_codec(1, 1) == CODEC_JSON
        # Offers from the future downgrade to this build's best.
        assert negotiate_codec(7, 2) == CODEC_BINARY
        assert negotiate_codec(7, 1) == CODEC_JSON
        # Nonsense offers can only fall back, never fail.
        assert negotiate_codec(0, 2) == CODEC_JSON
        assert negotiate_codec(-3, 2) == CODEC_JSON
        # A ceiling from the future is clamped to what we can speak.
        assert negotiate_codec(9, 9) == SUPPORTED_CODEC

    def test_future_codec_offer_downgrades_on_the_wire(self):
        """A client one generation ahead joins a live server and is
        welcomed at this build's newest generation, not rejected."""

        async def scenario():
            config = serve_setup1(
                max_users=1, duration_slots=6, seed=0, expect_clients=1,
            )
            server = VrServeServer(config)
            await server.start()
            server_task = asyncio.ensure_future(server.run())
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await send_message(
                    writer,
                    JoinRequest(
                        client="futurist", version=PROTOCOL_VERSION,
                        codec=SUPPORTED_CODEC + 1,
                    ),
                )
                welcome = await asyncio.wait_for(read_message(reader), 5.0)
                writer.close()
                await writer.wait_closed()
            finally:
                if not server_task.done():
                    server_task.cancel()
                    await asyncio.gather(server_task, return_exceptions=True)
            return welcome

        welcome = asyncio.run(scenario())
        assert isinstance(welcome, Welcome)
        assert welcome.codec == SUPPORTED_CODEC
