"""Tests for the cap-and-version admission policy."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import (
    REJECT_CAPACITY,
    REJECT_DRAINING,
    REJECT_VERSION,
    AdmissionPolicy,
)
from repro.serve.config import PROTOCOL_VERSION


class TestAdmissionPolicy:
    def test_admits_below_capacity(self):
        policy = AdmissionPolicy(capacity=4, protocol_version=PROTOCOL_VERSION)
        decision = policy.decide(PROTOCOL_VERSION, occupancy=3)
        assert decision.admitted
        assert decision.code == ""

    def test_rejects_at_capacity(self):
        policy = AdmissionPolicy(capacity=4, protocol_version=PROTOCOL_VERSION)
        decision = policy.decide(PROTOCOL_VERSION, occupancy=4)
        assert not decision.admitted
        assert decision.code == REJECT_CAPACITY
        assert "4/4" in decision.reason

    def test_rejects_version_mismatch(self):
        policy = AdmissionPolicy(capacity=4, protocol_version=PROTOCOL_VERSION)
        decision = policy.decide(PROTOCOL_VERSION + 1, occupancy=0)
        assert not decision.admitted
        assert decision.code == REJECT_VERSION
        assert str(PROTOCOL_VERSION) in decision.reason

    def test_version_checked_before_capacity(self):
        policy = AdmissionPolicy(capacity=1, protocol_version=PROTOCOL_VERSION)
        decision = policy.decide(PROTOCOL_VERSION + 1, occupancy=1)
        assert decision.code == REJECT_VERSION

    def test_rejects_while_draining(self):
        policy = AdmissionPolicy(capacity=4, protocol_version=PROTOCOL_VERSION)
        policy.start_draining()
        decision = policy.decide(PROTOCOL_VERSION, occupancy=0)
        assert not decision.admitted
        assert decision.code == REJECT_DRAINING

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(capacity=0, protocol_version=PROTOCOL_VERSION)
        policy = AdmissionPolicy(capacity=1, protocol_version=PROTOCOL_VERSION)
        with pytest.raises(ConfigurationError):
            policy.decide(PROTOCOL_VERSION, occupancy=-1)
