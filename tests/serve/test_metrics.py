"""Tests for serving metrics: histograms, deadlines, realized QoE."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.metrics import STAGES, LatencyHistogram, ServingMetrics
from repro.system.telemetry import SlotUserRecord


def record(slot, user, level, displayed):
    return SlotUserRecord(
        slot=slot, user=user, level=level, demand_mbps=0.0,
        achieved_mbps=0.0, believed_cap_mbps=0.0, displayed=displayed,
        covered=displayed, delay_slots=0.0,
    )


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean() == 0.0
        assert hist.max() == 0.0
        assert hist.fraction_below(1.0) == 1.0

    def test_quantiles_nearest_rank_in_exact_mode(self):
        hist = LatencyHistogram(exact=True)
        for value in (0.004, 0.001, 0.003, 0.002):
            hist.record(value)
        assert hist.quantile(0.0) == pytest.approx(0.001)
        assert hist.quantile(0.5) == pytest.approx(0.003)
        assert hist.quantile(1.0) == pytest.approx(0.004)
        assert hist.max() == pytest.approx(0.004)
        assert hist.mean() == pytest.approx(0.0025)

    def test_bounded_mode_keeps_no_samples(self):
        hist = LatencyHistogram()
        for i in range(10_000):
            hist.record((i % 50) / 10_000.0)
        # Default mode never retains samples — memory is the fixed
        # bucket vector (the fix for the unbounded recorder).
        assert hist._samples == []
        assert len(hist) == 10_000
        assert hist.mean() == pytest.approx(
            sum((i % 50) / 10_000.0 for i in range(10_000)) / 10_000
        )

    def test_bounded_quantiles_stay_within_observed_range(self):
        hist = LatencyHistogram()
        for value in (0.004, 0.001, 0.003, 0.002):
            hist.record(value)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert 0.001 <= hist.quantile(q) <= 0.004

    def test_fraction_below_is_strict_in_exact_mode(self):
        hist = LatencyHistogram(exact=True)
        for value in (0.001, 0.002, 0.003, 0.004):
            hist.record(value)
        assert hist.fraction_below(0.003) == pytest.approx(0.5)
        assert hist.fraction_below(0.0005) == 0.0
        assert hist.fraction_below(1.0) == 1.0

    def test_sort_cache_survives_interleaved_reads(self):
        hist = LatencyHistogram(exact=True)
        hist.record(0.002)
        assert hist.quantile(1.0) == pytest.approx(0.002)
        hist.record(0.001)
        assert hist.quantile(0.0) == pytest.approx(0.001)

    def test_summary_ms(self):
        hist = LatencyHistogram()
        hist.record(0.010)
        summary = hist.summary_ms()
        assert summary["count"] == 1.0
        assert summary["p50_ms"] == pytest.approx(10.0)
        assert summary["p99_ms"] == pytest.approx(10.0)
        assert summary["max_ms"] == pytest.approx(10.0)

    def test_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            hist.record(-0.001)
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)


class TestServingMetrics:
    def test_deadline_hit_accounting(self):
        metrics = ServingMetrics(slot_s=0.010)
        metrics.record_slot(0.005)
        metrics.record_slot(0.015)
        metrics.record_slot(0.009)
        # The deadline is exclusive: exactly-on-deadline is a miss.
        metrics.record_slot(0.010)
        assert metrics.slots == 4
        assert metrics.deadline_hits == 2
        assert metrics.deadline_hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_before_any_slot(self):
        assert ServingMetrics(slot_s=0.010).deadline_hit_rate == 0.0

    def test_record_stage_validates_name(self):
        metrics = ServingMetrics(slot_s=0.010)
        for stage in STAGES:
            metrics.record_stage(stage, 0.001)
        with pytest.raises(ConfigurationError):
            metrics.record_stage("teleport", 0.001)

    def test_record_reject_counts_by_code(self):
        metrics = ServingMetrics(slot_s=0.010)
        metrics.record_reject("capacity")
        metrics.record_reject("capacity")
        metrics.record_reject("version")
        assert metrics.rejects == {"capacity": 2, "version": 1}

    def test_per_user_quality_follows_viewed_convention(self):
        metrics = ServingMetrics(slot_s=0.010)
        metrics.telemetry.add(record(0, 0, 4, displayed=True))
        metrics.telemetry.add(record(1, 0, 2, displayed=False))
        metrics.telemetry.add(record(0, 1, 3, displayed=True))
        quality = metrics.per_user_quality()
        assert quality == {0: pytest.approx(2.0), 1: pytest.approx(3.0)}

    def test_summary_shape(self):
        metrics = ServingMetrics(slot_s=0.010)
        metrics.record_stage("allocate", 0.002)
        metrics.record_slot(0.006)
        metrics.record_reject("capacity")
        metrics.telemetry.add(record(0, 0, 4, displayed=True))
        summary = metrics.summary()
        assert summary["slots"] == 1
        assert summary["deadline_hit_rate"] == 1.0
        assert summary["slot_deadline_ms"] == pytest.approx(10.0)
        assert set(summary["stage_latency_ms"]) == {"allocate", "slot"}
        assert summary["rejects"] == {"capacity": 1}
        assert summary["per_user_mean_viewed_quality"] == {"0": 4.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServingMetrics(slot_s=0.0)

    def test_figures_are_registry_backed_not_parallel_bookkeeping(self):
        metrics = ServingMetrics(slot_s=0.010)
        metrics.record_slot(0.005)
        metrics.record_join()
        metrics.record_reject("capacity")
        page = metrics.registry.render_prometheus()
        assert "repro_serve_slots_total 1" in page
        assert "repro_serve_deadline_hits_total 1" in page
        assert "repro_serve_active_sessions 1" in page
        assert 'repro_serve_rejects_total{code="capacity"} 1' in page
        assert "repro_serve_stage_latency_seconds_bucket" in page

    def test_shared_registry_is_reused(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        metrics = ServingMetrics(slot_s=0.010, registry=registry)
        assert metrics.registry is registry
        metrics.record_slot(0.001)
        assert "repro_serve_slots_total" in registry.render_prometheus()
