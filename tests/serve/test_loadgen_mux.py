"""Multiplexed load generator: determinism and real-socket parity.

The mux fleet drives hundreds of virtual clients over a handful of
sockets, but each virtual client's *behaviour* — its motion trace,
its phone model, its QoE ledger — is keyed by seat, exactly like a
real-socket client.  Two properties follow and are pinned here:

* **determinism** — the same config produces bit-identical per-seat
  ledgers run after run, whatever the connection count;
* **parity** — under lockstep, the mux fleet's ledgers match a
  real-socket fleet's, seat for seat.  Multiplexing is a transport
  optimisation, invisible to everything above it.

Config validation is pinned too: the mux path refuses (rather than
silently ignores) the per-client shaping knobs it cannot honour.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultSchedule
from repro.serve.config import serve_setup1
from repro.serve.loadgen import (
    LoadGenConfig,
    ReconnectPolicy,
    run_serve_and_fleet,
)
from repro.serve.mux import run_mux_fleet, run_serve_and_mux_fleet
from repro.serve.protocol2 import CODEC_JSON


def _lockstep_config(num, slots, seed, kernel=False):
    config = serve_setup1(
        max_users=num, duration_slots=slots, seed=seed,
        expect_clients=num, lockstep=True,
    )
    return replace(config, kernel=kernel) if kernel else config


def _mux_run(num, slots, seed, connections, kernel=False):
    return asyncio.run(
        run_serve_and_mux_fleet(
            _lockstep_config(num, slots, seed, kernel=kernel),
            LoadGenConfig(num_clients=num, seed=seed),
            connections,
        )
    )


def _ledger(fleet):
    return {
        client.seat: (
            client.frames,
            client.displayed,
            client.mean_viewed_quality,
            client.mean_delay_slots,
            client.fps,
            client.end_reason,
            client.server_summary,
        )
        for client in fleet.clients
    }


class TestDeterminism:
    def test_hundred_clients_identical_ledgers_across_runs(self):
        first_result, first = _mux_run(100, 11, 3, 4, kernel=True)
        second_result, second = _mux_run(100, 11, 3, 4, kernel=True)
        assert len(first.clients) == 100
        assert {c.end_reason for c in first.clients} == {"complete"}
        assert _ledger(first) == _ledger(second)
        assert (
            first_result.metrics.telemetry.records
            == second_result.metrics.telemetry.records
        )

    def test_connection_count_does_not_change_ledgers(self):
        """Seats, not sockets, key client behaviour: packing the same
        fleet onto 2 or 8 connections yields the same ledgers."""
        _, narrow = _mux_run(16, 21, 9, 2)
        _, wide = _mux_run(16, 21, 9, 8)
        assert _ledger(narrow) == _ledger(wide)


class TestRealSocketParity:
    def test_mux_ledgers_match_real_socket_fleet(self):
        num, slots, seed = 8, 31, 5
        _, real = asyncio.run(
            run_serve_and_fleet(
                _lockstep_config(num, slots, seed),
                LoadGenConfig(num_clients=num, seed=seed),
            )
        )
        _, mux = _mux_run(num, slots, seed, 3)
        assert _ledger(real) == _ledger(mux)


class TestPacedSmoke:
    def test_paced_mux_run_completes(self):
        serve_config = serve_setup1(
            max_users=12, duration_slots=21, seed=1, expect_clients=12,
        )
        result, fleet = asyncio.run(
            run_serve_and_mux_fleet(
                replace(serve_config, kernel=True),
                LoadGenConfig(num_clients=12, seed=1),
                3,
            )
        )
        assert result.slots == 20
        assert len(fleet.clients) == 12
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        assert result.metrics.protocol_sessions == {"2": 12}


class TestConfigValidation:
    def test_rejects_zero_connections(self):
        with pytest.raises(ConfigurationError, match="connections"):
            asyncio.run(
                run_mux_fleet(LoadGenConfig(num_clients=2, port=1), 0)
            )

    def test_rejects_unbound_port(self):
        with pytest.raises(ConfigurationError, match="port"):
            asyncio.run(run_mux_fleet(LoadGenConfig(num_clients=2), 2))

    def test_rejects_json_codec(self):
        with pytest.raises(ConfigurationError, match="codec 2"):
            asyncio.run(
                run_mux_fleet(
                    LoadGenConfig(num_clients=2, port=1, codec=CODEC_JSON), 2
                )
            )

    def test_rejects_per_client_shaping_knobs(self):
        for shaped in (
            LoadGenConfig(num_clients=2, port=1, slow_clients=1),
            LoadGenConfig(
                num_clients=2, port=1, churn_clients=1,
                churn_leave_after_slots=5,
            ),
            LoadGenConfig(
                num_clients=2, port=1,
                reconnect=ReconnectPolicy(max_attempts=1),
            ),
            LoadGenConfig(num_clients=2, port=1, faults=FaultSchedule()),
        ):
            with pytest.raises(ConfigurationError, match="mux mode"):
                asyncio.run(run_mux_fleet(shaped, 2))

    def test_json_only_server_rejects_oversubscribed_mux(self):
        """A server capped at codec 1 cannot multiplex: the fleet
        surfaces a clear error instead of hanging on crossed frames."""
        serve_config = replace(
            _lockstep_config(4, 11, 0), codec_max=CODEC_JSON
        )
        with pytest.raises(ConfigurationError, match="negotiated JSON"):
            asyncio.run(
                run_serve_and_mux_fleet(
                    serve_config, LoadGenConfig(num_clients=4, seed=0), 2
                )
            )
