"""Cross-codec limit symmetry: both wires hold the same line.

The two codec generations must enforce identical invariants, or a
value that one wire can carry becomes a desync trap the moment a
connection negotiates the other: non-finite floats are refused on
encode *and* decode by both codecs, the 1 MiB frame cap chokes at
the same four points (each codec's encoder and reader), and a
resumed session's fresh wire state starts with an absolute pose so
no delta can reference state the peer lost.

The NaN-decode tests are regression tests: the JSON decoder
originally accepted hand-crafted ``NaN``/``Infinity`` constants that
its own encoder (``allow_nan=False``) and the binary codec both
refuse.
"""

import asyncio
import struct
from dataclasses import replace

import pytest

from repro.errors import FrameCorruptError, TransportError
from repro.faults import FAULT_DISCONNECT, FaultEvent, FaultSchedule
from repro.serve.config import serve_setup1
from repro.serve.loadgen import (
    LoadGenConfig,
    ReconnectPolicy,
    run_serve_and_fleet,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    Bye,
    Ready,
    SlotReport,
    decode_payload,
    encode_message,
    read_message,
)
from repro.serve.protocol2 import BinaryChannelCodec


def _report(**overrides):
    fields = dict(
        slot=3, delivered_ids=(1, 2), released_ids=(), indicator=1,
        delay_slots=7.25, viewed_quality=4.0, pose=(0.5,) * 6,
    )
    fields.update(overrides)
    return SlotReport(**fields)


class TestNonFiniteSymmetry:
    def test_json_decoder_rejects_smuggled_constants(self):
        body = encode_message(_report())[4:]
        assert b"7.25" in body
        for constant in (b"NaN", b"Infinity", b"-Infinity"):
            with pytest.raises(FrameCorruptError):
                decode_payload(body.replace(b"7.25", constant))

    def test_json_encoder_refuses_non_finite_floats(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(TransportError):
                encode_message(Ready(pose=(bad,) + (0.0,) * 5))
            with pytest.raises(TransportError):
                encode_message(_report(delay_slots=bad))

    def test_binary_encoder_refuses_the_same_values(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(TransportError):
                BinaryChannelCodec().encode(Ready(pose=(bad,) + (0.0,) * 5))
            with pytest.raises(TransportError):
                BinaryChannelCodec().encode(_report(delay_slots=bad))


class TestMaxFrameSymmetry:
    def test_both_encoders_choke_at_the_shared_cap(self):
        oversized = Bye(reason="x" * (MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError):
            encode_message(oversized)
        with pytest.raises(TransportError):
            BinaryChannelCodec().encode(oversized)

    def test_json_reader_rejects_declared_oversize_before_body(self):
        async def scenario():
            reader = asyncio.StreamReader()
            # Header only — the cap must trip without any body bytes.
            reader.feed_data(struct.pack("!I", MAX_FRAME_BYTES + 1))
            return await asyncio.wait_for(read_message(reader), 2.0)

        with pytest.raises(TransportError):
            asyncio.run(scenario())

    def test_frame_at_exactly_the_cap_survives_both_codecs(self):
        message = Bye(reason="x" * (MAX_FRAME_BYTES - 64))
        body = encode_message(message)[4:]
        assert decode_payload(body) == message
        codec = BinaryChannelCodec()
        frame = codec.encode(message)
        (unit,) = BinaryChannelCodec().decode(frame[2], frame[3], frame[8:])
        assert unit.message == message


class TestResumeWireReset:
    def test_resumed_binary_session_loses_no_reports(self):
        """A mid-run disconnect rebinds a fresh wire: if the client's
        first post-resume report were still delta-coded against the
        dead connection's state, the server would quarantine it and
        the corrupt-frame counter would show it."""
        schedule = FaultSchedule(events=(
            FaultEvent(slot=5, seat=1, kind=FAULT_DISCONNECT),
        ))
        serve_config = replace(
            serve_setup1(
                max_users=3, duration_slots=21, seed=2, expect_clients=3,
                lockstep=True,
            ),
            faults=schedule,
            resume_grace_s=5.0,
            report_timeout_s=1.0,
        )
        fleet_config = LoadGenConfig(
            num_clients=3, seed=2, faults=schedule,
            reconnect=ReconnectPolicy(max_attempts=4),
        )
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        assert metrics.session_resumes == 1
        assert metrics.corrupt_frames == 0
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[1].resumes == 1
        # The whole fleet — including the resumed session — spoke the
        # binary generation throughout.
        assert set(metrics.protocol_sessions) == {"2"}
