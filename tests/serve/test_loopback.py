"""End-to-end loopback tests: server + client fleet over real sockets.

These are the acceptance tests for the serving subsystem: a client
fleet replays motion traces against a live server over 127.0.0.1 and
the realized per-user QoE is compared against the in-process
:class:`~repro.system.experiment.SystemExperiment`.  Lockstep mode
removes wall-clock influence, so the equivalence and determinism
assertions are exact, not statistical.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.core.allocation import DensityValueGreedyAllocator
from repro.serve.admission import REJECT_CAPACITY
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet
from repro.system.experiment import SystemExperiment, setup1_config


def run_loopback(serve_config, fleet_config):
    return asyncio.run(run_serve_and_fleet(serve_config, fleet_config))


class TestSmoke:
    def test_two_user_paced_run_shuts_down_cleanly(self):
        serve_config = serve_setup1(
            max_users=2, duration_slots=21, seed=0, expect_clients=2,
        )
        result, fleet = run_loopback(
            serve_config, LoadGenConfig(num_clients=2, seed=0)
        )
        assert result.slots == 20
        assert result.metrics.slots == 20
        assert result.metrics.joins == 2
        assert result.metrics.leaves == 2
        assert result.metrics.timeouts == 0
        assert result.metrics.rejects == {}
        assert result.deadline_hit_rate > 0.0
        assert len(fleet.admitted) == 2
        assert {c.end_reason for c in fleet.admitted} == {"complete"}
        # Every client got the server's end-of-run summary.
        for client in fleet.admitted:
            assert client.server_summary is not None
            assert "qoe" in client.server_summary

    def test_stage_latencies_recorded_for_every_slot(self):
        serve_config = serve_setup1(
            max_users=2, duration_slots=11, seed=0, expect_clients=2,
            lockstep=True,
        )
        result, _ = run_loopback(
            serve_config, LoadGenConfig(num_clients=2, seed=0)
        )
        for stage in ("predict", "allocate", "encode", "send", "slot"):
            assert len(result.metrics.stage_latency[stage]) == result.slots


class TestOverload:
    def test_client_beyond_capacity_is_rejected_with_reason(self):
        serve_config = serve_setup1(
            max_users=2, duration_slots=11, seed=0, expect_clients=2,
            lockstep=True,
        )
        result, fleet = run_loopback(
            serve_config, LoadGenConfig(num_clients=3, seed=0)
        )
        assert len(fleet.admitted) == 2
        assert len(fleet.rejected) == 1
        rejected = fleet.rejected[0]
        assert rejected.reject_code == REJECT_CAPACITY
        assert "2/2" in rejected.reject_reason
        assert result.metrics.rejects == {REJECT_CAPACITY: 1}
        # The admitted clients still complete the run.
        assert {c.end_reason for c in fleet.admitted} == {"complete"}

    def test_slow_client_degrades_without_stalling_others(self):
        # Paced loop with a 5 ms slot: a client that sits on each plan
        # for 100 ms falls behind lag_degrade_slots immediately.
        serve_config = replace(
            serve_setup1(
                max_users=2, duration_slots=41, seed=0, expect_clients=2,
                slot_s=0.005,
            ),
            lag_degrade_slots=2,
        )
        fleet_config = LoadGenConfig(
            num_clients=2, seed=0, slow_clients=1, slow_latency_s=0.1,
        )
        result, fleet = run_loopback(serve_config, fleet_config)
        # The loop ran all slots at cadence; the slow client was
        # degraded to the minimum level, not waited for.
        assert result.slots == 40
        assert result.metrics.degraded_user_slots > 0
        fast = [c for c in fleet.admitted if c.name == "client-1"]
        assert fast and fast[0].frames >= 39


class TestChurn:
    def test_leaver_frees_seat_and_run_continues(self):
        serve_config = serve_setup1(
            max_users=2, duration_slots=41, seed=0, expect_clients=2,
        )
        fleet_config = LoadGenConfig(
            num_clients=2, seed=0, churn_clients=1, churn_leave_after_slots=5,
        )
        result, fleet = run_loopback(serve_config, fleet_config)
        churned = [c for c in fleet.admitted if c.end_reason == "churned"]
        stayed = [c for c in fleet.admitted if c.end_reason == "complete"]
        assert len(churned) == 1
        assert len(stayed) == 1
        assert result.metrics.leaves == 2
        assert result.slots == 40


class TestDeterminism:
    def test_seeded_lockstep_runs_are_identical(self):
        def one_run():
            serve_config = serve_setup1(
                max_users=4, duration_slots=31, seed=7, expect_clients=4,
                lockstep=True,
            )
            result, fleet = run_loopback(
                serve_config, LoadGenConfig(num_clients=4, seed=7)
            )
            return (
                result.metrics.per_user_quality(),
                fleet.mean_viewed_quality(),
            )

        first_server, first_fleet = one_run()
        second_server, second_fleet = one_run()
        assert first_server == second_server
        assert first_fleet == second_fleet
        assert set(first_server) == {0, 1, 2, 3}


class TestExperimentEquivalence:
    def test_eight_clients_match_in_process_setup1(self):
        """The ISSUE acceptance bar: 8 clients, >= 50 slots, per-user
        mean viewed quality within 10% of the in-process experiment
        under the same seed — lockstep makes it exact."""
        slots = 61
        serve_config = serve_setup1(
            max_users=8, duration_slots=slots, seed=0, expect_clients=8,
            lockstep=True,
        )
        result, fleet = run_loopback(
            serve_config, LoadGenConfig(num_clients=8, seed=0)
        )
        assert result.slots == slots - 1 >= 50
        assert result.deadline_hit_rate >= 0.95

        experiment = SystemExperiment(
            setup1_config(duration_slots=slots, seed=0)
        )
        reference = experiment.run_repeat(DensityValueGreedyAllocator(), 0)

        served = result.metrics.per_user_quality()
        assert set(served) == set(range(8))
        for user, summary in enumerate(reference.users):
            assert served[user] == pytest.approx(summary.quality, rel=0.10)
        # The fleet's client-side view agrees with the server.
        client_side = fleet.mean_viewed_quality()
        for user in range(8):
            assert client_side[user] == pytest.approx(served[user], rel=1e-9)
