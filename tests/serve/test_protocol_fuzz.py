"""Seeded fuzz tests for the wire protocol.

Two properties the serving path depends on:

* every valid message — whatever its field values — survives an
  encode/decode round trip exactly;
* arbitrary damage to a frame (truncation, oversize, bit flips)
  surfaces as a clean :class:`~repro.errors.TransportError` (or a
  still-valid message, for flips that happen to keep the JSON well
  formed) — never a hang, never a stray exception type.

Everything is drawn from one seeded generator, so a failure prints a
round index that replays exactly.
"""

import asyncio
import string
import struct

import numpy as np
import pytest

from repro.errors import TransportError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Reject,
    SlotReport,
    TilePlan,
    Welcome,
    decode_payload,
    encode_message,
    read_message,
)

_CHARS = string.ascii_letters + string.digits + " -_./:"


def _rand_text(rng, max_len=24):
    length = int(rng.integers(0, max_len))
    return "".join(_CHARS[int(i)] for i in rng.integers(0, len(_CHARS), length))


def _rand_float(rng, low=-1e6, high=1e6):
    return float(rng.uniform(low, high))


def _rand_pose(rng):
    return tuple(_rand_float(rng, -100.0, 100.0) for _ in range(6))


def _rand_ints(rng, max_len=16):
    length = int(rng.integers(0, max_len))
    return tuple(int(v) for v in rng.integers(0, 10_000, length))


def _rand_floats(rng, length):
    return tuple(_rand_float(rng, 0.0, 1e7) for _ in range(length))


def _rand_message(rng):
    """One random valid message of a random kind."""
    kind = int(rng.integers(0, 8))
    if kind == 0:
        return JoinRequest(
            client=_rand_text(rng), version=int(rng.integers(0, 100)),
            token=_rand_text(rng),
        )
    if kind == 1:
        return Welcome(
            seat=int(rng.integers(0, 64)), version=int(rng.integers(0, 100)),
            slot_s=_rand_float(rng, 1e-4, 1.0),
            num_tx_slots=int(rng.integers(1, 100_000)),
            guideline_mbps=_rand_float(rng, 0.0, 1e3),
            level_count=int(rng.integers(1, 16)),
            world_size_m=_rand_float(rng, 1.0, 100.0),
            world_cell_m=_rand_float(rng, 0.01, 1.0),
            margin_deg=_rand_float(rng, 0.0, 90.0),
            cell_tolerance=int(rng.integers(0, 4)),
            client_cache_tiles=int(rng.integers(0, 10_000)),
            num_decoders=int(rng.integers(1, 16)),
            decode_rate_mbps=_rand_float(rng, 1.0, 1e4),
            lockstep=bool(rng.integers(0, 2)),
            resume_token=_rand_text(rng),
            resumed=bool(rng.integers(0, 2)),
        )
    if kind == 2:
        return Reject(
            code=_rand_text(rng, 12), reason=_rand_text(rng),
            capacity=int(rng.integers(0, 64)),
        )
    if kind == 3:
        return Ready(pose=_rand_pose(rng))
    if kind == 4:
        ids = _rand_ints(rng)
        return TilePlan(
            slot=int(rng.integers(0, 100_000)),
            level=int(rng.integers(0, 16)),
            predicted_pose=_rand_pose(rng) if rng.integers(0, 2) else None,
            video_ids=ids,
            tile_bits=_rand_floats(rng, len(ids)),
            lost_positions=tuple(
                int(i) for i in sorted(rng.integers(0, max(len(ids), 1), 2))
            ) if len(ids) else (),
            duration_s=_rand_float(rng, 0.0, 1.0),
            startup_delay_s=_rand_float(rng, 0.0, 1.0),
            demand_mbps=_rand_float(rng, 0.0, 1e3),
            achieved_mbps=_rand_float(rng, 0.0, 1e3),
            degraded=bool(rng.integers(0, 2)),
        )
    if kind == 5:
        return SlotReport(
            slot=int(rng.integers(0, 100_000)),
            delivered_ids=_rand_ints(rng),
            released_ids=_rand_ints(rng),
            indicator=int(rng.integers(0, 2)),
            delay_slots=_rand_float(rng, 0.0, 60.0),
            viewed_quality=_rand_float(rng, 0.0, 6.0),
            pose=_rand_pose(rng),
        )
    if kind == 6:
        return EndOfRun(
            slots=int(rng.integers(0, 100_000)),
            reason=_rand_text(rng, 12),
            summary={
                _rand_text(rng, 8) or "k": _rand_float(rng)
                for _ in range(int(rng.integers(0, 5)))
            },
        )
    return Bye(reason=_rand_text(rng))


def _read_one(data, timeout_s=2.0):
    """Feed raw bytes to a reader; fail the test on any hang."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await asyncio.wait_for(read_message(reader), timeout_s)

    return asyncio.run(scenario())


class TestRoundTripFuzz:
    def test_random_messages_round_trip_exactly(self):
        rng = np.random.default_rng(20260806)
        for round_index in range(300):
            message = _rand_message(rng)
            frame = encode_message(message)
            decoded = decode_payload(frame[4:])
            assert decoded == message, f"round {round_index}: {message}"

    def test_random_messages_round_trip_through_reader(self):
        rng = np.random.default_rng(99)
        for round_index in range(50):
            message = _rand_message(rng)
            received = _read_one(encode_message(message))
            assert received == message, f"round {round_index}"


class TestDamageFuzz:
    def test_truncation_at_every_cut_is_clean(self):
        rng = np.random.default_rng(7)
        frame = encode_message(_rand_message(rng))
        for cut in range(len(frame)):
            if cut == 0:
                # Empty feed is a clean EOF, not an error.
                assert _read_one(b"") is None
                continue
            with pytest.raises(TransportError):
                _read_one(frame[:cut])

    def test_random_truncations_are_clean(self):
        rng = np.random.default_rng(13)
        for round_index in range(100):
            frame = encode_message(_rand_message(rng))
            cut = int(rng.integers(1, len(frame)))
            with pytest.raises(TransportError):
                _read_one(frame[:cut])

    def test_oversized_frames_rejected_without_reading_body(self):
        rng = np.random.default_rng(17)
        for _ in range(20):
            declared = int(rng.integers(MAX_FRAME_BYTES + 1, 2**32))
            with pytest.raises(TransportError):
                _read_one(struct.Struct("!I").pack(declared))

    def test_bit_flips_never_hang_or_leak_odd_errors(self):
        """Any single-bit flip ends in a TransportError or a message."""
        rng = np.random.default_rng(23)
        errors = 0
        for round_index in range(200):
            frame = bytearray(encode_message(_rand_message(rng)))
            position = int(rng.integers(0, len(frame)))
            frame[position] ^= 1 << int(rng.integers(0, 8))
            try:
                _read_one(bytes(frame))
            except TransportError:
                errors += 1
        # Most flips damage the frame; a few may leave valid JSON.
        assert errors > 100

    def test_garbage_bodies_are_clean(self):
        rng = np.random.default_rng(29)
        for length in (0, 1, 7, 64, 512):
            body = bytes(rng.integers(0, 256, length, dtype=np.uint8))
            frame = struct.Struct("!I").pack(len(body)) + body
            with pytest.raises(TransportError):
                _read_one(frame)
