"""Tests for the length-prefixed JSON wire protocol."""

import asyncio
import json
import struct

import pytest

from repro.errors import TransportError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Reject,
    SlotReport,
    TilePlan,
    Welcome,
    decode_payload,
    encode_message,
    parse_message,
    pose_to_wire,
    read_message,
    send_message,
    write_message,
)

POSE = (1.0, 2.0, 0.5, 30.0, -10.0, 0.0)

MESSAGES = [
    JoinRequest(client="phone-1", version=1),
    Welcome(
        seat=3, version=1, slot_s=1.0 / 60.0, num_tx_slots=299,
        guideline_mbps=45.0, level_count=6, world_size_m=8.0,
        world_cell_m=0.05, margin_deg=15.0, cell_tolerance=1,
        client_cache_tiles=600, num_decoders=5, decode_rate_mbps=400.0,
        lockstep=True,
    ),
    Reject(code="capacity", reason="at capacity: 8/8", capacity=8),
    Ready(pose=POSE),
    TilePlan(
        slot=7, level=4, predicted_pose=POSE, video_ids=(11, 12, 13),
        tile_bits=(1e5, 2e5, 5e4), lost_positions=(1,), duration_s=0.004,
        startup_delay_s=0.0, demand_mbps=21.0, achieved_mbps=48.0,
        degraded=False,
    ),
    TilePlan(
        slot=0, level=0, predicted_pose=None, video_ids=(), tile_bits=(),
        lost_positions=(), duration_s=0.0, startup_delay_s=0.0,
        demand_mbps=0.0, achieved_mbps=0.0, degraded=True,
    ),
    SlotReport(
        slot=7, delivered_ids=(11, 13), released_ids=(4,), indicator=1,
        delay_slots=0.31, viewed_quality=4.0, pose=POSE,
    ),
    EndOfRun(slots=299, reason="complete", summary={"qoe": 3.4, "quality": 4.1}),
    Bye(reason="done"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: m.KIND)
    def test_encode_decode_identity(self, message):
        frame = encode_message(message)
        (length,) = struct.Struct("!I").unpack(frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == message

    def test_payload_is_compact_json(self):
        frame = encode_message(Bye(reason="x"))
        body = json.loads(frame[4:].decode("utf-8"))
        assert body == {"kind": "bye", "reason": "x"}

    def test_non_finite_floats_rejected(self):
        message = SlotReport(
            slot=0, delivered_ids=(), released_ids=(), indicator=0,
            delay_slots=float("inf"), viewed_quality=0.0, pose=POSE,
        )
        with pytest.raises(TransportError):
            encode_message(message)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(TransportError):
            parse_message({"kind": "teleport"})

    def test_missing_kind(self):
        with pytest.raises(TransportError):
            parse_message({"client": "x"})

    def test_wrong_field_type(self):
        with pytest.raises(TransportError):
            parse_message({"kind": "join", "client": "x", "version": "1"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(TransportError):
            parse_message({"kind": "join", "client": "x", "version": True})

    def test_pose_must_have_six_floats(self):
        with pytest.raises(TransportError):
            parse_message({"kind": "ready", "pose": [1.0, 2.0]})

    def test_non_object_frame(self):
        with pytest.raises(TransportError):
            decode_payload(b"[1, 2, 3]")

    def test_malformed_json(self):
        with pytest.raises(TransportError):
            decode_payload(b"{nope")

    def test_pose_to_wire_validates_length(self):
        with pytest.raises(TransportError):
            pose_to_wire((1.0, 2.0, 3.0))


class TestFraming:
    def _stream_pair(self):
        reader = asyncio.StreamReader()
        return reader

    def test_read_message_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message(Bye(reason="ok")))
            reader.feed_eof()
            first = await read_message(reader)
            second = await read_message(reader)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == Bye(reason="ok")
        assert second is None

    def test_read_message_mid_frame_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message(Bye(reason="ok"))[:-2])
            reader.feed_eof()
            return await read_message(reader)

        with pytest.raises(TransportError):
            asyncio.run(scenario())

    def test_read_message_oversized_frame(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.Struct("!I").pack(MAX_FRAME_BYTES + 1))
            reader.feed_eof()
            return await read_message(reader)

        with pytest.raises(TransportError):
            asyncio.run(scenario())

    def test_multiple_frames_in_sequence(self):
        async def scenario():
            reader = asyncio.StreamReader()
            for message in MESSAGES:
                reader.feed_data(encode_message(message))
            reader.feed_eof()
            received = []
            while True:
                message = await read_message(reader)
                if message is None:
                    return received
                received.append(message)

        assert asyncio.run(scenario()) == MESSAGES

    def test_send_and_write_over_loopback(self):
        async def scenario():
            received = []

            async def handler(reader, writer):
                received.append(await read_message(reader))
                received.append(await read_message(reader))
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_message(writer, JoinRequest(client="a", version=1))
            size = write_message(writer, Bye(reason="done"))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return received, size

        received, size = asyncio.run(scenario())
        assert received == [JoinRequest(client="a", version=1), Bye(reason="done")]
        assert size == len(encode_message(Bye(reason="done")))
