"""Seeded fuzz tests for the binary wire codec (generation 2).

The binary codec carries two load-bearing promises beyond the JSON
wire's:

* **framing vs body separation** — damage to the 8-byte header is a
  :class:`~repro.errors.TransportError` (the stream is lost), while
  *any* bytes inside an intact frame decode to either a valid message
  or a quarantined ``message=None`` unit.  ``decode`` never raises
  and never hangs, whatever the body holds;
* **entry isolation** — a corrupt entry inside a batch frame costs
  exactly that entry, and a delta report whose base pose the decoder
  does not hold is quarantined without poisoning later frames.

Everything random is drawn from one seeded generator so a failure
prints a round index that replays exactly.
"""

import asyncio
import string
import struct

import numpy as np
import pytest

from repro.errors import TransportError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Redirect,
    Reject,
    SlotReport,
    TilePlan,
    Welcome,
)
from repro.serve.protocol2 import (
    CODEC_BINARY,
    HEADER,
    HEADER_MAGIC,
    TYPE_BYE,
    TYPE_PLAN,
    TYPE_REPORT,
    TYPE_REPORT_BATCH,
    BinaryChannelCodec,
    read_frame,
)

_CHARS = string.ascii_letters + string.digits + " -_./:"

#: Every single-message binary frame type (the two batch types are
#: exercised separately).
_ALL_TYPES = tuple(range(1, 12))


def _rand_text(rng, max_len=24):
    length = int(rng.integers(0, max_len))
    return "".join(_CHARS[int(i)] for i in rng.integers(0, len(_CHARS), length))


def _rand_float(rng, low=-1e6, high=1e6):
    return float(rng.uniform(low, high))


def _rand_pose(rng):
    return tuple(_rand_float(rng, -100.0, 100.0) for _ in range(6))


def _rand_ints(rng, max_len=16):
    length = int(rng.integers(0, max_len))
    return tuple(int(v) for v in rng.integers(0, 10_000, length))


def _rand_report(rng, slot=None):
    return SlotReport(
        slot=int(rng.integers(0, 100_000)) if slot is None else slot,
        delivered_ids=_rand_ints(rng),
        released_ids=_rand_ints(rng),
        indicator=int(rng.integers(0, 2)),
        delay_slots=_rand_float(rng, 0.0, 60.0),
        viewed_quality=_rand_float(rng, 0.0, 6.0),
        pose=_rand_pose(rng),
    )


def _rand_plan(rng):
    ids = _rand_ints(rng)
    return TilePlan(
        slot=int(rng.integers(0, 100_000)),
        level=int(rng.integers(0, 16)),
        predicted_pose=_rand_pose(rng) if rng.integers(0, 2) else None,
        video_ids=ids,
        tile_bits=tuple(_rand_float(rng, 0.0, 1e7) for _ in ids),
        lost_positions=tuple(
            int(i) for i in sorted(rng.integers(0, max(len(ids), 1), 2))
        ) if ids else (),
        duration_s=_rand_float(rng, 0.0, 1.0),
        startup_delay_s=_rand_float(rng, 0.0, 1.0),
        demand_mbps=_rand_float(rng, 0.0, 1e3),
        achieved_mbps=_rand_float(rng, 0.0, 1e3),
        degraded=bool(rng.integers(0, 2)),
    )


def _rand_message(rng):
    """One random valid message of a random kind (all nine)."""
    kind = int(rng.integers(0, 9))
    if kind == 0:
        return JoinRequest(
            client=_rand_text(rng), version=int(rng.integers(0, 100)),
            token=_rand_text(rng), codec=int(rng.integers(1, 4)),
        )
    if kind == 1:
        return Welcome(
            seat=int(rng.integers(0, 64)), version=int(rng.integers(0, 100)),
            slot_s=_rand_float(rng, 1e-4, 1.0),
            num_tx_slots=int(rng.integers(1, 100_000)),
            guideline_mbps=_rand_float(rng, 0.0, 1e3),
            level_count=int(rng.integers(1, 16)),
            world_size_m=_rand_float(rng, 1.0, 100.0),
            world_cell_m=_rand_float(rng, 0.01, 1.0),
            margin_deg=_rand_float(rng, 0.0, 90.0),
            cell_tolerance=int(rng.integers(0, 4)),
            client_cache_tiles=int(rng.integers(0, 10_000)),
            num_decoders=int(rng.integers(1, 16)),
            decode_rate_mbps=_rand_float(rng, 1.0, 1e4),
            lockstep=bool(rng.integers(0, 2)),
            resume_token=_rand_text(rng),
            resumed=bool(rng.integers(0, 2)),
            shard=int(rng.integers(-1, 8)),
            codec=int(rng.integers(1, 3)),
        )
    if kind == 2:
        return Reject(
            code=_rand_text(rng, 12), reason=_rand_text(rng),
            capacity=int(rng.integers(0, 64)),
        )
    if kind == 3:
        return Redirect(
            host=_rand_text(rng, 16) or "h", port=int(rng.integers(1, 65536)),
            shard=int(rng.integers(0, 8)), reason=_rand_text(rng, 12),
        )
    if kind == 4:
        return Ready(pose=_rand_pose(rng))
    if kind == 5:
        return _rand_plan(rng)
    if kind == 6:
        return _rand_report(rng)
    if kind == 7:
        return EndOfRun(
            slots=int(rng.integers(0, 100_000)),
            reason=_rand_text(rng, 12),
            summary={
                _rand_text(rng, 8) or "k": _rand_float(rng)
                for _ in range(int(rng.integers(0, 5)))
            },
        )
    return Bye(reason=_rand_text(rng))


def _split(frame):
    """(type, flags, body) of one encoded frame."""
    return frame[2], frame[3], frame[8:]


def _read_one_frame(data, timeout_s=2.0):
    """Feed raw bytes to the binary frame reader; fail on any hang."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await asyncio.wait_for(read_frame(reader), timeout_s)

    return asyncio.run(scenario())


def _varint_at(data, pos):
    """Decode one varint in a test-local parser; (value, next_pos)."""
    result, shift = 0, 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class TestRoundTripFuzz:
    def test_random_messages_round_trip_exactly(self):
        rng = np.random.default_rng(20260808)
        for round_index in range(300):
            message = _rand_message(rng)
            channel = int(rng.integers(-1, 40))
            encoder = BinaryChannelCodec()
            decoder = BinaryChannelCodec()
            units = decoder.decode(*_split(encoder.encode(message, channel)))
            assert len(units) == 1, f"round {round_index}"
            assert units[0].channel == channel, f"round {round_index}"
            assert units[0].message == message, f"round {round_index}: {message}"

    def test_random_messages_round_trip_through_reader(self):
        rng = np.random.default_rng(101)
        for round_index in range(50):
            message = _rand_message(rng)
            encoder = BinaryChannelCodec()
            decoder = BinaryChannelCodec()
            frame = _read_one_frame(encoder.encode(message))
            assert frame is not None
            units = decoder.decode(*frame)
            assert units[0].message == message, f"round {round_index}"

    def test_delta_reports_round_trip_bit_exactly(self):
        """Acked connected pair: every later report rides an XOR delta."""
        rng = np.random.default_rng(7)
        client = BinaryChannelCodec()
        server = BinaryChannelCodec()
        for slot in range(40):
            report = _rand_report(rng, slot=slot)
            units = server.decode(*_split(client.encode(report)))
            assert units[0].message == report, f"slot {slot}"
            # Plan back to the client carries the codec-level ack.
            plan = _rand_plan(rng)
            units = client.decode(*_split(server.encode(plan)))
            assert units[0].message == plan
            assert client.peer_acked_slot(-1) == slot
        # With an ack in hand the encoder really is producing deltas:
        # re-sending the acked pose XORs to six zero varints, far
        # below the 48-byte absolute form.
        pose = _rand_pose(rng)
        still = SlotReport(slot=100, delivered_ids=(), released_ids=(),
                           indicator=0, delay_slots=0.0, viewed_quality=0.0,
                           pose=pose)
        server.decode(*_split(client.encode(still)))
        client.decode(*_split(server.encode(_rand_plan(rng))))
        assert client.peer_acked_slot(-1) == 100
        repeat = client.encode(
            SlotReport(slot=101, delivered_ids=(), released_ids=(),
                       indicator=0, delay_slots=0.0, viewed_quality=0.0,
                       pose=pose)
        )
        absolute = BinaryChannelCodec().encode(
            SlotReport(slot=101, delivered_ids=(), released_ids=(),
                       indicator=0, delay_slots=0.0, viewed_quality=0.0,
                       pose=pose)
        )
        assert len(repeat) < len(absolute) - 30

    def test_report_batch_round_trips_per_channel(self):
        rng = np.random.default_rng(11)
        client = BinaryChannelCodec()
        server = BinaryChannelCodec()
        entries = [(seat, _rand_report(rng)) for seat in range(12)]
        frames = client.encode_report_batch(entries)
        units = [
            unit for frame in frames
            for unit in server.decode(*_split(frame))
        ]
        assert [(u.channel, u.message) for u in units] == entries

    def test_plan_batch_splits_below_frame_cap(self):
        codec = BinaryChannelCodec()
        plan = TilePlan(
            slot=1, level=1, predicted_pose=None,
            video_ids=tuple(range(4000)),
            tile_bits=tuple(float(i) for i in range(4000)),
            lost_positions=(), duration_s=0.0, startup_delay_s=0.0,
            demand_mbps=0.0, achieved_mbps=0.0, degraded=False,
        )
        frames = codec.encode_plan_batch([(seat, plan) for seat in range(40)])
        assert len(frames) > 1
        assert all(len(f) <= MAX_FRAME_BYTES for f in frames)
        decoder = BinaryChannelCodec()
        units = [u for f in frames for u in decoder.decode(*_split(f))]
        assert [u.channel for u in units] == list(range(40))
        assert all(u.message == plan for u in units)


class TestDamageFuzz:
    def test_truncation_at_every_cut_is_clean(self):
        rng = np.random.default_rng(13)
        frame = BinaryChannelCodec().encode(_rand_message(rng), channel=3)
        for cut in range(len(frame)):
            if cut == 0:
                assert _read_one_frame(b"") is None
                continue
            with pytest.raises(TransportError):
                _read_one_frame(frame[:cut])

    def test_decode_never_raises_on_any_body(self):
        """The quarantine contract: garbage bodies yield units, not
        exceptions — for every frame type including unknown ones."""
        rng = np.random.default_rng(17)
        for round_index in range(300):
            frame_type = int(rng.integers(0, 16))
            flags = int(rng.integers(0, 2))
            body = bytes(
                rng.integers(0, 256, int(rng.integers(0, 96)), dtype=np.uint8)
            )
            units = BinaryChannelCodec().decode(frame_type, flags, body)
            assert units, f"round {round_index}"

    def test_bit_flips_never_hang_or_leak_odd_errors(self):
        """Flips end in TransportError, quarantine, or a message."""
        rng = np.random.default_rng(19)
        quarantined = 0
        for round_index in range(300):
            frame = bytearray(
                BinaryChannelCodec().encode(_rand_message(rng), channel=2)
            )
            position = int(rng.integers(0, len(frame)))
            frame[position] ^= 1 << int(rng.integers(0, 8))
            try:
                read = _read_one_frame(bytes(frame))
            except TransportError:
                # Header or length damage: the stream is lost.
                continue
            if read is None:
                continue
            units = BinaryChannelCodec().decode(*read)
            quarantined += sum(1 for u in units if u.message is None)
        assert quarantined > 0

    def test_oversized_length_rejected_before_body(self):
        rng = np.random.default_rng(23)
        for _ in range(20):
            declared = int(rng.integers(MAX_FRAME_BYTES + 1, 2**32))
            header = HEADER.pack(
                HEADER_MAGIC, CODEC_BINARY, TYPE_BYE, 0, declared
            )
            # No body bytes follow: the cap must trip on the header
            # alone, or this read would hang waiting for a megabyte.
            with pytest.raises(TransportError):
                _read_one_frame(header)

    def test_bad_magic_and_codec_bytes_kill_the_stream(self):
        frame = bytearray(BinaryChannelCodec().encode(Bye(reason="x")))
        for byte_index, value in ((0, 0x00), (0, 0xB3), (1, 1), (1, 3)):
            damaged = bytearray(frame)
            damaged[byte_index] = value
            with pytest.raises(TransportError):
                _read_one_frame(bytes(damaged))

    def test_varint_overflow_is_quarantined(self):
        # 11 continuation bytes: overlong.  10 bytes encoding >= 2^64:
        # out of range.  Both are body damage, not framing damage.
        for evil in (b"\xff" * 10 + b"\x01", b"\xff" * 9 + b"\x7f"):
            units = BinaryChannelCodec().decode(TYPE_REPORT, 0, evil)
            assert units == [type(units[0])(channel=-1, message=None)]

    def test_encode_rejects_over_64_bit_ids(self):
        report = SlotReport(
            slot=1, delivered_ids=(1 << 64,), released_ids=(),
            indicator=0, delay_slots=0.0, viewed_quality=0.0,
            pose=(0.0,) * 6,
        )
        with pytest.raises(TransportError):
            BinaryChannelCodec().encode(report)

    def test_encode_rejects_non_finite_poses(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            report = SlotReport(
                slot=1, delivered_ids=(), released_ids=(),
                indicator=0, delay_slots=0.0, viewed_quality=0.0,
                pose=(bad,) + (0.0,) * 5,
            )
            with pytest.raises(TransportError):
                BinaryChannelCodec().encode(report)
            plan = TilePlan(
                slot=1, level=1, predicted_pose=(bad,) + (0.0,) * 5,
                video_ids=(), tile_bits=(), lost_positions=(),
                duration_s=0.0, startup_delay_s=0.0, demand_mbps=0.0,
                achieved_mbps=0.0, degraded=False,
            )
            with pytest.raises(TransportError):
                BinaryChannelCodec().encode(plan)

    def test_encode_rejects_oversized_frames(self):
        with pytest.raises(TransportError):
            BinaryChannelCodec().encode(Bye(reason="x" * (MAX_FRAME_BYTES + 1)))


class TestDeltaBaseDamage:
    def _acked_pair(self, rng):
        """A (client, server) pair whose next report is delta-coded."""
        client = BinaryChannelCodec()
        server = BinaryChannelCodec()
        server.decode(*_split(client.encode(_rand_report(rng, slot=0))))
        client.decode(*_split(server.encode(_rand_plan(rng))))
        assert client.peer_acked_slot(-1) == 0
        return client, server

    def test_delta_against_absent_base_is_quarantined(self):
        rng = np.random.default_rng(29)
        client, _ = self._acked_pair(rng)
        delta_frame = client.encode(_rand_report(rng, slot=1))
        fresh = BinaryChannelCodec()
        units = fresh.decode(*_split(delta_frame))
        assert units[0].message is None

    def test_delta_against_stale_base_is_quarantined(self):
        rng = np.random.default_rng(31)
        client, _ = self._acked_pair(rng)
        delta_frame = client.encode(_rand_report(rng, slot=1))
        stale = BinaryChannelCodec()
        # This decoder has pose memory, just not for base slot 0.
        stale.decode(*_split(BinaryChannelCodec().encode(
            _rand_report(rng, slot=99)
        )))
        units = stale.decode(*_split(delta_frame))
        assert units[0].message is None

    def test_quarantined_delta_does_not_poison_the_stream(self):
        """One lost report costs one report: the next absolute frame
        decodes, and the delta loop re-establishes itself."""
        rng = np.random.default_rng(37)
        client, server = self._acked_pair(rng)
        # Server loses its pose memory (models a resume on its side).
        replacement = BinaryChannelCodec()
        lost = replacement.decode(*_split(client.encode(_rand_report(rng, slot=1))))
        assert lost[0].message is None
        # The replacement acks nothing, so the client's next encode
        # against a *fresh* codec state is absolute and decodes.
        fresh_client = BinaryChannelCodec()
        report = _rand_report(rng, slot=2)
        units = replacement.decode(*_split(fresh_client.encode(report)))
        assert units[0].message == report

    def test_resume_reset_state_sends_absolute_first_report(self):
        rng = np.random.default_rng(41)
        client, _ = self._acked_pair(rng)
        assert client.peer_acked_slot(-1) == 0
        # A resume binds a fresh codec: its first report must carry
        # the full 48-byte pose, decodable with zero shared state.
        resumed = BinaryChannelCodec()
        report = _rand_report(rng, slot=50)
        units = BinaryChannelCodec().decode(*_split(resumed.encode(report)))
        assert units[0].message == report


class TestBatchIsolation:
    def _entry_spans(self, body):
        """[(start, end)] byte spans of each batch entry body."""
        count, pos = _varint_at(body, 0)
        spans = []
        for _ in range(count):
            length, pos = _varint_at(body, pos)
            spans.append((pos, pos + length))
            pos += length
        return spans

    def test_corrupt_entry_costs_exactly_that_entry(self):
        rng = np.random.default_rng(43)
        client = BinaryChannelCodec()
        entries = [(seat, _rand_report(rng)) for seat in range(5)]
        (frame,) = client.encode_report_batch(entries)
        frame_type, flags, body = _split(frame)
        spans = self._entry_spans(body)
        start, end = spans[2]
        damaged = body[:start] + b"\xff" * (end - start) + body[end:]
        units = BinaryChannelCodec().decode(frame_type, flags, damaged)
        assert len(units) == 5
        for index, unit in enumerate(units):
            if index == 2:
                assert unit.message is None
            else:
                assert unit.message == entries[index][1]
                assert unit.channel == entries[index][0]

    def test_broken_batch_framing_keeps_decoded_prefix(self):
        rng = np.random.default_rng(47)
        client = BinaryChannelCodec()
        entries = [(seat, _rand_report(rng)) for seat in range(4)]
        (frame,) = client.encode_report_batch(entries)
        frame_type, flags, body = _split(frame)
        # Truncate inside entry 3's length prefix region: entries 0-2
        # stand, the broken tail is one quarantined unit.
        start, _ = self._entry_spans(body)[3]
        truncated = body[:start - 1]
        units = BinaryChannelCodec().decode(frame_type, flags, truncated)
        assert [u.message for u in units[:3]] == [e[1] for e in entries[:3]]
        assert units[-1].message is None
