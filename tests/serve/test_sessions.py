"""Tests for the session registry and its lockstep barrier."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.serve.protocol import SlotReport
from repro.serve.sessions import NEVER_REPORTED, SessionRegistry

POSE = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class FakeTransport:
    def __init__(self, buffered_bytes=0, closing=False):
        self.buffered_bytes = buffered_bytes
        self.closing = closing

    def is_closing(self):
        return self.closing

    def get_write_buffer_size(self):
        return self.buffered_bytes


class FakeWriter:
    """Just enough of a StreamWriter for registry-level tests."""

    def __init__(self, buffered_bytes=0, closing=False):
        self.transport = FakeTransport(buffered_bytes, closing)


def report_for(slot):
    return SlotReport(
        slot=slot, delivered_ids=(), released_ids=(), indicator=1,
        delay_slots=0.0, viewed_quality=3.0, pose=POSE,
    )


class TestSeatAssignment:
    def test_lowest_seat_first(self):
        registry = SessionRegistry(capacity=3)
        seats = [
            registry.admit(f"c{i}", FakeWriter(), 40.0, joined_slot=0).seat
            for i in range(3)
        ]
        assert seats == [0, 1, 2]
        assert registry.occupancy() == 3

    def test_released_seat_is_reused_lowest_first(self):
        registry = SessionRegistry(capacity=3)
        for i in range(3):
            registry.admit(f"c{i}", FakeWriter(), 40.0, joined_slot=0)
        registry.release(1)
        registry.release(0)
        assert registry.admit("c3", FakeWriter(), 40.0, joined_slot=5).seat == 0
        assert registry.admit("c4", FakeWriter(), 40.0, joined_slot=5).seat == 1

    def test_admit_beyond_capacity_raises(self):
        registry = SessionRegistry(capacity=1)
        registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        with pytest.raises(ConfigurationError):
            registry.admit("c1", FakeWriter(), 40.0, joined_slot=0)

    def test_release_counts_timeouts(self):
        registry = SessionRegistry(capacity=2)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        registry.release(session.seat, timed_out=True)
        registry.release(session.seat)  # double release is a no-op
        assert registry.total_leaves == 1
        assert registry.total_timeouts == 1
        assert not session.alive

    def test_active_is_seat_ordered(self):
        registry = SessionRegistry(capacity=4)
        for i in range(4):
            registry.admit(f"c{i}", FakeWriter(), 40.0, joined_slot=0)
        registry.release(2)
        assert [s.seat for s in registry.active()] == [0, 1, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionRegistry(capacity=0)


class TestReports:
    def test_store_and_take(self):
        registry = SessionRegistry(capacity=1)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        assert session.last_report_slot == NEVER_REPORTED
        assert session.store_report(report_for(0), folded_slots=0)
        assert session.last_report_slot == 0
        assert session.take_report(0) == report_for(0)
        assert session.take_report(0) is None

    def test_duplicate_report_is_late(self):
        registry = SessionRegistry(capacity=1)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        assert session.store_report(report_for(2), folded_slots=0)
        assert not session.store_report(report_for(2), folded_slots=0)
        assert session.late_reports == 1

    def test_already_folded_report_is_late(self):
        registry = SessionRegistry(capacity=1)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        assert not session.store_report(report_for(3), folded_slots=4)
        assert session.late_reports == 1
        assert 3 not in session.reports

    def test_lag_slots(self):
        registry = SessionRegistry(capacity=1)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        # No report yet: one slot planned, nothing acked.
        assert session.lag_slots(current_slot=1) == 1
        session.store_report(report_for(0), folded_slots=0)
        assert session.lag_slots(current_slot=1) == 0
        assert session.lag_slots(current_slot=4) == 3

    def test_lag_ignores_slots_before_join(self):
        registry = SessionRegistry(capacity=2)
        session = registry.admit("late", FakeWriter(), 40.0, joined_slot=10)
        assert session.lag_slots(current_slot=10) == 0
        assert session.lag_slots(current_slot=12) == 2

    def test_write_buffer_bytes(self):
        registry = SessionRegistry(capacity=2)
        buffered = registry.admit("a", FakeWriter(buffered_bytes=512), 40.0, 0)
        closing = registry.admit("b", FakeWriter(buffered_bytes=512, closing=True), 40.0, 0)
        assert buffered.write_buffer_bytes() == 512
        assert closing.write_buffer_bytes() == 0


class TestBarrier:
    def _ready_registry(self, count):
        registry = SessionRegistry(capacity=count)
        sessions = []
        for i in range(count):
            session = registry.admit(f"c{i}", FakeWriter(), 40.0, joined_slot=0)
            session.ready = True
            sessions.append(session)
        return registry, sessions

    def test_reports_complete(self):
        registry, sessions = self._ready_registry(2)
        assert not registry.reports_complete(0)
        sessions[0].store_report(report_for(0), folded_slots=0)
        assert not registry.reports_complete(0)
        sessions[1].store_report(report_for(0), folded_slots=0)
        assert registry.reports_complete(0)

    def test_unready_and_late_joiners_do_not_block(self):
        registry = SessionRegistry(capacity=3)
        sessions = []
        for i in range(2):
            session = registry.admit(f"c{i}", FakeWriter(), 40.0, joined_slot=0)
            session.ready = True
            sessions.append(session)
        sessions[1].ready = False
        late = registry.admit("late", FakeWriter(), 40.0, joined_slot=7)
        late.ready = True
        sessions[0].store_report(report_for(0), folded_slots=0)
        assert registry.reports_complete(0)

    def test_wait_reports_completes_on_notify(self):
        async def scenario():
            registry, sessions = self._ready_registry(2)
            sessions[0].store_report(report_for(0), folded_slots=0)

            waiter = asyncio.ensure_future(
                registry.wait_reports(0, timeout_s=30.0)
            )
            # Yield until the waiter is parked on the report event —
            # pure scheduling, no wall-clock sleeps to race against.
            for _ in range(10):
                await asyncio.sleep(0)
            assert not waiter.done()
            sessions[1].store_report(report_for(0), folded_slots=0)
            registry.notify_report()
            return await waiter

        assert asyncio.run(scenario()) is True

    def test_wait_reports_times_out(self):
        async def scenario():
            registry, _ = self._ready_registry(1)
            return await registry.wait_reports(0, timeout_s=0.02)

        assert asyncio.run(scenario()) is False

    def test_departure_unblocks_barrier(self):
        async def scenario():
            registry, sessions = self._ready_registry(2)
            sessions[0].store_report(report_for(0), folded_slots=0)

            waiter = asyncio.ensure_future(
                registry.wait_reports(0, timeout_s=30.0)
            )
            for _ in range(10):
                await asyncio.sleep(0)
            assert not waiter.done()
            registry.release(sessions[1].seat)
            return await waiter

        assert asyncio.run(scenario()) is True

    def test_detached_or_unplanned_sessions_do_not_block(self):
        registry, sessions = self._ready_registry(3)
        sessions[0].store_report(report_for(0), folded_slots=0)
        assert not registry.reports_complete(0)
        registry.detach(sessions[1].seat, slot=0)
        sessions[2].needs_plan = True
        # The detached seat and the freshly-resumed one (no plan yet)
        # can never report this slot; only seat 0's report matters.
        assert registry.reports_complete(0)

    def test_seat_counters(self):
        registry, sessions = self._ready_registry(2)
        sessions[0].missed_reports = 2
        sessions[1].planned_slots = 9
        counters = registry.seat_counters()
        assert [seat for seat, _ in counters] == [0, 1]
        assert counters[0][1]["missed_reports"] == 2
        assert counters[1][1]["planned_slots"] == 9


class TestDetachResume:
    def test_detach_parks_seat_and_resume_rebinds(self):
        registry = SessionRegistry(capacity=2)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        session.token = "tok-0"
        assert registry.detach(session.seat, slot=4) is session
        assert session.detached
        assert session.detached_slot == 4
        assert registry.detached_sessions() == [session]
        assert registry.total_detaches == 1
        # Double detach is a no-op.
        assert registry.detach(session.seat, slot=5) is None

        new_writer = FakeWriter()
        resumed = registry.resume("tok-0", new_writer)
        assert resumed is session
        assert not session.detached
        assert session.detached_slot == NEVER_REPORTED
        assert session.writer is new_writer
        assert session.needs_plan
        assert session.resumes == 1
        assert registry.total_resumes == 1
        assert registry.detached_sessions() == []

    def test_resume_requires_matching_token(self):
        registry = SessionRegistry(capacity=2)
        session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
        session.token = "tok-0"
        registry.detach(session.seat, slot=1)
        assert registry.resume("", FakeWriter()) is None
        assert registry.resume("wrong", FakeWriter()) is None
        # A token only matches while its seat is detached.
        registry.resume("tok-0", FakeWriter())
        assert registry.resume("tok-0", FakeWriter()) is None

    def test_wait_attached_returns_on_resume(self):
        async def scenario():
            registry = SessionRegistry(capacity=1)
            session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
            session.token = "tok-0"
            registry.detach(session.seat, slot=0)

            waiter = asyncio.ensure_future(registry.wait_attached(30.0))
            for _ in range(10):
                await asyncio.sleep(0)
            assert not waiter.done()
            registry.resume("tok-0", FakeWriter())
            return await waiter

        assert asyncio.run(scenario()) is True

    def test_wait_attached_times_out_when_nobody_returns(self):
        async def scenario():
            registry = SessionRegistry(capacity=1)
            session = registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
            registry.detach(session.seat, slot=0)
            return await registry.wait_attached(0.02)

        assert asyncio.run(scenario()) is False

    def test_wait_attached_immediate_when_nothing_detached(self):
        async def scenario():
            registry = SessionRegistry(capacity=1)
            registry.admit("c0", FakeWriter(), 40.0, joined_slot=0)
            return await registry.wait_attached(0.0)

        assert asyncio.run(scenario()) is True
