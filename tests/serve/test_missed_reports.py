"""Regression tests for the BENCH_serve missed-reports anomaly.

A recorded ``repro bench --kind serve`` run on a 1-CPU box showed a
non-monotonic missed-report pattern (2 users → 2, 4 users → 32 with
20 degraded user-slots, 8 users → 16) despite a 1.0 deadline hit
rate.  Investigation: paced mode folds slot ``N``'s reports at the
top of slot ``N+1``, so the client's reply must round-trip within one
``slot_s`` of wall time.  When the shared event loop is starved —
external CPU contention on a single core — a burst of client report
coroutines runs late, several consecutive folds go empty, and the
resulting lag then trips degradation (hence the correlated
``degraded_user_slots``).  The server's own pipeline stays fast,
which is why the hit rate never moved.

That makes it a wall-clock artifact of the paced bench environment,
not a protocol or accounting bug.  These tests pin the two halves of
that conclusion: under lockstep (wall clock removed) the same fleets
miss nothing, and the missed-report accounting itself charges
exactly the scripted amount when a client really does go silent.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.faults import FAULT_CRASH_CLIENT, FaultEvent, FaultSchedule
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet


class TestLockstepFleetsMissNothing:
    @pytest.mark.parametrize("num_users", [2, 4, 8])
    def test_bench_fleet_sizes_have_zero_missed_reports(self, num_users):
        serve_config = replace(
            serve_setup1(
                max_users=num_users, duration_slots=41, seed=0,
                expect_clients=num_users, lockstep=True,
            ),
            exact_stage_latency=True,
        )
        result, fleet = asyncio.run(
            run_serve_and_fleet(
                serve_config, LoadGenConfig(num_clients=num_users, seed=0)
            )
        )
        metrics = result.metrics
        assert metrics.missed_reports == 0
        assert metrics.degraded_user_slots == 0
        assert metrics.deadline_hit_rate == 1.0
        assert {c.end_reason for c in fleet.clients} == {"complete"}


class TestMissedReportAccounting:
    def test_silent_client_charged_per_planned_slot(self):
        # A scripted client crash makes the seat genuinely silent;
        # every subsequent planned slot must be charged as missed
        # until the grace-less seat is reaped.  This is the real
        # accounting path the bench numbers flow through.
        schedule = FaultSchedule(events=(
            FaultEvent(slot=5, seat=1, kind=FAULT_CRASH_CLIENT),
        ))
        serve_config = serve_setup1(
            max_users=2, duration_slots=31, seed=0, expect_clients=2,
            lockstep=True,
        )
        fleet_config = LoadGenConfig(
            num_clients=2, seed=0, faults=schedule,
        )
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[1].end_reason == "disconnected"
        # The survivor's ledger is clean; any missed reports belong
        # to the crashed seat's final in-flight slot only (resume is
        # disabled, so the seat is released at the fold after the
        # transport drops — at most one planned slot goes silent).
        assert metrics.missed_reports <= 1
        assert by_seat[0].frames == 30
        assert result.slots == 30
