"""Coordinator acceptance: full cluster runs over loopback sockets.

Covers the shard subsystem's three headline contracts: a two-shard
cluster fills every seat through join-time rebalancing, a one-shard
cluster is inert (its shard produces exactly the artifacts a plain
single server would), and a live rebalance migration moves a session
between running shards without losing QoE state.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.serve.config import serve_setup1
from repro.serve.loadgen import (
    LoadGenConfig,
    ReconnectPolicy,
    run_serve_and_fleet,
)
from repro.shard.bench import bench_scale, run_cluster_and_fleet
from repro.shard.config import ShardClusterConfig
from repro.shard.coordinator import ShardCoordinator
from repro.shard.supervisor import RestartPolicy


def lockstep_base(max_users=2, slots=21, seed=0, **kwargs):
    return replace(
        serve_setup1(
            max_users=max_users, duration_slots=slots, seed=seed,
            lockstep=True,
        ),
        **kwargs,
    )


def run_cluster(cluster, fleet_config):
    return asyncio.run(run_cluster_and_fleet(cluster, fleet_config))


class TestTwoShardCluster:
    def test_full_house_fills_every_shard(self):
        cluster = ShardClusterConfig(
            base=lockstep_base(), num_shards=2, expect_clients=4
        )
        result, fleet = run_cluster(
            cluster, LoadGenConfig(num_clients=4, seed=0)
        )
        assert len(result.shards) == 2
        # Join-time rebalancing filled both shards to capacity.
        assert [r.metrics.joins for r in result.shards] == [2, 2]
        assert result.missed_reports == 0
        assert result.migrations == 0
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        # Every client went through exactly one coordinator redirect.
        assert [c.redirects for c in fleet.clients] == [1, 1, 1, 1]
        # Each shard ran its full slot budget.
        assert [r.metrics.slots for r in result.shards] == [20, 20]

    def test_summary_labels_shards(self):
        cluster = ShardClusterConfig(
            base=lockstep_base(slots=11), num_shards=2, expect_clients=4
        )
        result, _ = run_cluster(cluster, LoadGenConfig(num_clients=4, seed=0))
        summary = result.summary()
        shard_labels = [entry["shard"] for entry in summary["shards"]]
        assert shard_labels == [0, 1]
        assert summary["missed_reports"] == 0

    def test_deterministic_across_runs(self):
        cluster = ShardClusterConfig(
            base=lockstep_base(), num_shards=2, expect_clients=4
        )

        def artifacts():
            result, fleet = run_cluster(
                cluster, LoadGenConfig(num_clients=4, seed=0)
            )
            telemetry = [
                [r.as_dict() for r in shard.metrics.telemetry.records]
                for shard in result.shards
            ]
            clients = [
                (c.name, c.seat, c.frames, c.end_reason, c.redirects)
                for c in fleet.clients
            ]
            return telemetry, clients

        assert artifacts() == artifacts()


class TestOneShardInertness:
    def test_matches_plain_single_server(self):
        base = lockstep_base(seed=7, slots=31)

        plain_result, plain_fleet = asyncio.run(
            run_serve_and_fleet(base, LoadGenConfig(num_clients=2, seed=7))
        )
        cluster = ShardClusterConfig(base=base, num_shards=1,
                                     expect_clients=2)
        shard_result, shard_fleet = run_cluster(
            cluster, LoadGenConfig(num_clients=2, seed=7)
        )
        shard = shard_result.shards[0]

        # The shard's metrics match the plain server's exactly, wall
        # clock aside (stage latencies are real timing in both modes).
        plain_summary = plain_result.metrics.summary()
        shard_summary = shard.metrics.summary()
        plain_summary.pop("stage_latency_ms")
        shard_summary.pop("stage_latency_ms")
        assert plain_summary == shard_summary

        # Telemetry — the planner's full decision record — is
        # bit-identical.
        assert [r.as_dict() for r in shard.metrics.telemetry.records] == [
            r.as_dict() for r in plain_result.metrics.telemetry.records
        ]

        # Clients saw the same session: same seats, frames, levels.
        plain_clients = [
            (c.name, c.seat, c.frames, c.end_reason, c.resumes)
            for c in plain_fleet.clients
        ]
        shard_clients = [
            (c.name, c.seat, c.frames, c.end_reason, c.resumes)
            for c in shard_fleet.clients
        ]
        assert plain_clients == shard_clients
        # The only cluster artifact is the extra coordinator hop.
        assert all(c.redirects == 1 for c in shard_fleet.clients)
        assert all(c.redirects == 0 for c in plain_fleet.clients)


class TestLiveRebalance:
    def test_requested_migration_moves_session_mid_run(self):
        base = lockstep_base(max_users=4, slots=41, resume_grace_s=5.0)
        cluster = ShardClusterConfig(
            base=base, num_shards=2, expect_clients=2
        )

        async def scenario():
            coordinator = ShardCoordinator(cluster)
            await coordinator.start()
            run_task = asyncio.ensure_future(coordinator.run())

            async def move_later():
                # Queue the rebalance as soon as the fleet is seated;
                # the source shard picks it up at its next migration
                # point (lockstep runs finish in milliseconds, so
                # there is no "wait a while" here).
                await coordinator.wait_cluster_ready()
                source = coordinator.router.assignment("client-0")
                coordinator.request_migration("client-0", 1 - source)
                return source

            mover = asyncio.ensure_future(move_later())
            fleet = await asyncio.gather(
                asyncio.ensure_future(run_fleet_at(coordinator.port)),
                run_task,
            )
            return fleet[0], fleet[1], await mover

        async def run_fleet_at(port):
            from repro.serve.loadgen import run_fleet

            return await run_fleet(
                LoadGenConfig(
                    num_clients=2, seed=0, port=port,
                    reconnect=ReconnectPolicy(max_attempts=5),
                )
            )

        fleet, result, source = asyncio.run(scenario())
        target = 1 - source

        assert result.migrations == 1
        assert result.shards[source].metrics.migrations_out == 1
        assert result.shards[target].metrics.migrations_in == 1
        assert result.missed_reports == 0
        by_name = {c.name: c for c in fleet.clients}
        mover = by_name["client-0"]
        assert mover.end_reason == "complete"
        assert mover.resumes == 1
        assert mover.redirects == 2
        other = by_name["client-1"]
        assert other.end_reason == "complete"
        assert other.resumes == 0


class TestRestartPolicy:
    def test_backoff_schedule(self):
        policy = RestartPolicy(
            max_restarts=3, base_s=0.1, multiplier=2.0, max_s=0.3
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.3)

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            RestartPolicy(base_s=0.0)
        with pytest.raises(ConfigurationError):
            RestartPolicy(max_s=0.01, base_s=0.05)


class TestBenchScale:
    def test_rejects_bad_arguments(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            bench_scale(shard_counts=())
        with pytest.raises(ConfigurationError):
            bench_scale(slots=2)
        with pytest.raises(ConfigurationError):
            bench_scale(users_per_shard=0)
        with pytest.raises(ConfigurationError):
            bench_scale(deadline_target=0.0)

    def test_small_sweep_shape(self):
        payload = bench_scale(
            shard_counts=(1,), users_per_shard=1, slots=6, seed=0
        )
        assert payload["kind"] == "scale"
        assert payload["users_sustained"] in (0, 1)
        (entry,) = payload["clusters"]
        assert entry["shards"] == 1.0
        assert entry["users"] == 1.0
        assert entry["missed_reports"] == 0.0
