"""Routing determinism and the override table.

The router is the cluster's only piece of placement policy, so these
tests pin its contract exactly: seeded hashes are stable, overrides
are minimal (pinning a client back to its hash leaves no residue),
and rebalancing is deterministic — most free seats, lowest index on
ties.
"""

import pytest

from repro.errors import ConfigurationError
from repro.shard.router import SessionRouter


class TestHomeShard:
    def test_same_seed_same_homes(self):
        a = SessionRouter(seed=7, num_shards=4)
        b = SessionRouter(seed=7, num_shards=4)
        clients = [f"client-{i}" for i in range(32)]
        assert [a.home_shard(c) for c in clients] == [
            b.home_shard(c) for c in clients
        ]

    def test_different_seed_moves_some_clients(self):
        a = SessionRouter(seed=0, num_shards=4)
        b = SessionRouter(seed=1, num_shards=4)
        clients = [f"client-{i}" for i in range(64)]
        assert [a.home_shard(c) for c in clients] != [
            b.home_shard(c) for c in clients
        ]

    def test_homes_cover_every_shard(self):
        router = SessionRouter(seed=0, num_shards=3)
        homes = {router.home_shard(f"client-{i}") for i in range(64)}
        assert homes == {0, 1, 2}

    def test_single_shard_routes_everything_to_zero(self):
        router = SessionRouter(seed=0, num_shards=1)
        assert all(
            router.home_shard(f"client-{i}") == 0 for i in range(16)
        )

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            SessionRouter(seed=0, num_shards=0)


class TestOverrides:
    def test_pin_then_assignment(self):
        router = SessionRouter(seed=0, num_shards=3)
        home = router.home_shard("c")
        target = (home + 1) % 3
        router.pin("c", target)
        assert router.override("c") == target
        assert router.assignment("c") == target

    def test_pin_home_clears_override(self):
        router = SessionRouter(seed=0, num_shards=3)
        home = router.home_shard("c")
        router.pin("c", (home + 1) % 3)
        router.pin("c", home)
        assert router.override("c") is None
        assert router.assignment("c") == home

    def test_pin_out_of_range_rejected(self):
        router = SessionRouter(seed=0, num_shards=2)
        with pytest.raises(ConfigurationError):
            router.pin("c", 2)
        with pytest.raises(ConfigurationError):
            router.pin("c", -1)


class TestRoute:
    def test_assignment_wins_with_free_seat(self):
        router = SessionRouter(seed=0, num_shards=2)
        home = router.home_shard("c")
        free = [1, 1]
        assert router.route("c", free) == home
        assert router.override("c") is None

    def test_full_home_rebalances_to_most_free(self):
        router = SessionRouter(seed=0, num_shards=3)
        home = router.home_shard("c")
        free = [1, 1, 1]
        free[home] = 0
        most_free = (home + 1) % 3
        free[most_free] = 3
        assert router.route("c", free) == most_free
        # The rebalance is sticky: the client is pinned there.
        assert router.override("c") == most_free

    def test_tie_breaks_to_lowest_index(self):
        router = SessionRouter(seed=0, num_shards=3)
        home = router.home_shard("c")
        free = [1, 1, 1]
        free[home] = 0
        lowest = min(i for i in range(3) if free[i] > 0)
        assert router.route("c", free) == lowest

    def test_all_live_full_returns_assignment_for_reject(self):
        router = SessionRouter(seed=0, num_shards=2)
        home = router.home_shard("c")
        assert router.route("c", [0, 0]) == home

    def test_dead_assignment_falls_to_live_full_shard(self):
        router = SessionRouter(seed=0, num_shards=2)
        home = router.home_shard("c")
        free = [-1, -1]
        free[1 - home] = 0
        assert router.route("c", free) == 1 - home

    def test_no_live_shard_raises(self):
        router = SessionRouter(seed=0, num_shards=2)
        with pytest.raises(ConfigurationError):
            router.route("c", [-1, -1])

    def test_wrong_load_vector_length_rejected(self):
        router = SessionRouter(seed=0, num_shards=2)
        with pytest.raises(ConfigurationError):
            router.route("c", [1])
