"""Multiplexed fleets against a shard cluster.

The coordinator's front door speaks one JSON greeting and redirects;
a multiplexed fleet then re-dials each virtual client's shard and
multiplexes every client bound for the same shard onto one shared
socket.  That sharing is what these tests pin down:

* redirected virtual clients seat across every shard and complete;
* a mid-run migration redirect is **channel-tagged** and must not
  close the shared connection under its link-mates — only the moved
  client re-places, the others never notice.
"""

import asyncio
from dataclasses import replace

from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig
from repro.serve.mux import run_mux_fleet
from repro.shard.config import ShardClusterConfig
from repro.shard.coordinator import ShardCoordinator


def lockstep_base(max_users=2, slots=21, seed=0, **kwargs):
    return replace(
        serve_setup1(
            max_users=max_users, duration_slots=slots, seed=seed,
            lockstep=True,
        ),
        **kwargs,
    )


async def _run_cluster_mux(cluster, fleet_config, connections):
    coordinator = ShardCoordinator(cluster)
    await coordinator.start()
    run_task = asyncio.ensure_future(coordinator.run())
    try:
        fleet = await run_mux_fleet(
            replace(
                fleet_config,
                host=cluster.base.host,
                port=coordinator.port,
            ),
            connections,
        )
        result = await run_task
    finally:
        if not run_task.done():
            run_task.cancel()
            await asyncio.gather(run_task, return_exceptions=True)
    return result, fleet


class TestFrontDoor:
    def test_mux_fleet_seats_across_every_shard(self):
        cluster = ShardClusterConfig(
            base=lockstep_base(), num_shards=2, expect_clients=4
        )
        result, fleet = asyncio.run(
            _run_cluster_mux(
                cluster, LoadGenConfig(num_clients=4, seed=0), 2
            )
        )
        assert len(result.shards) == 2
        assert [r.metrics.joins for r in result.shards] == [2, 2]
        assert result.missed_reports == 0
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        # One coordinator hop per virtual client, exactly like the
        # real-socket fleet.
        assert [c.redirects for c in fleet.clients] == [1, 1, 1, 1]
        # Both shards spoke the binary generation for every session.
        for shard in result.shards:
            assert set(shard.metrics.protocol_sessions) == {"2"}

    def test_cluster_mux_run_is_deterministic(self):
        cluster = ShardClusterConfig(
            base=lockstep_base(slots=11), num_shards=2, expect_clients=4
        )

        def artifacts():
            result, fleet = asyncio.run(
                _run_cluster_mux(
                    cluster, LoadGenConfig(num_clients=4, seed=0), 2
                )
            )
            telemetry = [
                [r.as_dict() for r in shard.metrics.telemetry.records]
                for shard in result.shards
            ]
            clients = [
                (c.name, c.seat, c.frames, c.end_reason, c.redirects)
                for c in fleet.clients
            ]
            return telemetry, clients

        assert artifacts() == artifacts()


class TestLiveRebalanceUnderMux:
    def test_migration_redirect_spares_link_mates(self):
        """All virtual clients of a shard share ONE socket here
        (connections=1), so the migration redirect must leave the
        connection open for the mover's link-mate — closing it, as a
        per-client server would, costs the mate its session."""
        base = lockstep_base(max_users=4, slots=41, resume_grace_s=5.0)
        cluster = ShardClusterConfig(
            base=base, num_shards=2, expect_clients=4
        )

        async def scenario():
            coordinator = ShardCoordinator(cluster)
            await coordinator.start()
            run_task = asyncio.ensure_future(coordinator.run())

            async def move_later():
                await coordinator.wait_cluster_ready()
                source = coordinator.router.assignment("client-0")
                coordinator.request_migration("client-0", 1 - source)
                return source

            mover = asyncio.ensure_future(move_later())
            fleet_task = asyncio.ensure_future(
                run_mux_fleet(
                    LoadGenConfig(
                        num_clients=4, seed=0, port=coordinator.port
                    ),
                    1,
                )
            )
            fleet, result = await asyncio.gather(fleet_task, run_task)
            return fleet, result, await mover

        fleet, result, source = asyncio.run(scenario())
        target = 1 - source

        assert result.migrations == 1
        assert result.shards[source].metrics.migrations_out == 1
        assert result.shards[target].metrics.migrations_in == 1
        assert result.missed_reports == 0
        by_name = {c.name: c for c in fleet.clients}
        moved = by_name["client-0"]
        assert moved.end_reason == "complete"
        assert moved.resumes == 1
        assert moved.redirects == 2
        # Every other client — including the mover's link-mates on
        # the shared socket — ran undisturbed.
        for name, client in by_name.items():
            if name == "client-0":
                continue
            assert client.end_reason == "complete", name
            assert client.resumes == 0, name
            assert client.redirects == 1, name
