"""Handoff blob codec: capture/install round-trips and rejection.

The blob is the migration compatibility contract, so these tests pin
it at the unit level — two real servers, one parked session moved
between them — without running slot loops or sockets.
"""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.serve.config import serve_setup1
from repro.serve.server import VrServeServer
from repro.shard.handoff import (
    COUNTER_FIELDS,
    HANDOFF_SCHEMA_KIND,
    HANDOFF_SCHEMA_VERSION,
    HANDOFF_SUPPORTED_VERSIONS,
    capture_seat,
    install_seat,
)
from repro.system.telemetry import SlotUserRecord


def make_server(max_users=2, seed=0):
    config = replace(
        serve_setup1(
            max_users=max_users, duration_slots=11, seed=seed, lockstep=True,
        ),
        resume_grace_s=5.0,
    )
    return VrServeServer(config)


def park_session(server, client="mover", token="tok-" + "a" * 12):
    return server.registry.install_detached(
        client,
        guideline_mbps=18.5,
        joined_slot=0,
        token=token,
        slot=0,
    )


def seed_records(server, seat):
    records = [
        SlotUserRecord(
            slot=slot, user=seat, level=2, demand_mbps=12.0,
            achieved_mbps=11.5, believed_cap_mbps=20.0, displayed=True,
            covered=True, delay_slots=1.0,
        )
        for slot in range(3)
    ]
    server.metrics.telemetry.ingest(records)
    return records


class TestRoundTrip:
    def test_capture_then_install_preserves_identity_and_counters(self):
        source = make_server()
        target = make_server()
        session = park_session(source)
        session.planned_slots = 9
        session.missed_reports = 1
        session.late_reports = 2
        session.dropped_frames = 3
        session.resumes = 4
        session.corrupt_frames = 5
        seed_records(source, session.seat)

        blob = capture_seat(source, session, source_shard=0)
        assert blob["kind"] == HANDOFF_SCHEMA_KIND
        assert blob["version"] == HANDOFF_SCHEMA_VERSION
        assert blob["client"] == "mover"
        assert blob["source_shard"] == 0
        assert blob["counters"] == {
            "planned_slots": 9, "missed_reports": 1, "late_reports": 2,
            "dropped_frames": 3, "resumes": 4, "corrupt_frames": 5,
        }

        landed = install_seat(target, blob)
        assert landed.client == "mover"
        assert landed.token == session.token
        assert landed.guideline_mbps == session.guideline_mbps
        assert landed.detached
        assert landed.ready
        for field in COUNTER_FIELDS:
            assert getattr(landed, field) == getattr(session, field)
        assert target.metrics.migrations_in == 1

    def test_capture_moves_telemetry_and_install_rewrites_seat(self):
        source = make_server()
        target = make_server()
        # Occupy target seat 0 so the mover lands on seat 1.
        park_session(target, client="resident", token="tok-" + "b" * 12)
        session = park_session(source)
        seed_records(source, session.seat)

        blob = capture_seat(source, session, source_shard=0)
        # Telemetry capture is destructive on the source: the records
        # belong to the session, not the shard.
        assert not source.metrics.telemetry.records
        assert len(blob["telemetry"]) == 3

        landed = install_seat(target, blob)
        assert landed.seat == 1
        users = {record.user for record in target.metrics.telemetry.records}
        assert users == {1}
        # Source slot numbers survive: each shard has its own timeline.
        slots = sorted(
            record.slot for record in target.metrics.telemetry.records
        )
        assert slots == [0, 1, 2]

    def test_blob_is_json_round_trippable(self):
        import json

        source = make_server()
        target = make_server()
        session = park_session(source)
        seed_records(source, session.seat)
        blob = json.loads(json.dumps(capture_seat(source, session, 0)))
        landed = install_seat(target, blob)
        assert landed.client == "mover"


class TestRejection:
    def make_blob(self):
        source = make_server()
        session = park_session(source)
        return capture_seat(source, session, source_shard=0)

    def test_wrong_kind_rejected(self):
        target = make_server()
        blob = self.make_blob()
        blob["kind"] = "something-else"
        with pytest.raises(ConfigurationError, match="not a handoff blob"):
            install_seat(target, blob)

    def test_unknown_version_rejected(self):
        target = make_server()
        blob = self.make_blob()
        blob["version"] = HANDOFF_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="unsupported handoff"):
            install_seat(target, blob)

    def test_empty_token_rejected(self):
        target = make_server()
        blob = self.make_blob()
        blob["token"] = ""
        with pytest.raises(ConfigurationError, match="empty resume token"):
            install_seat(target, blob)

    def test_missing_counter_rejected(self):
        target = make_server()
        blob = self.make_blob()
        del blob["counters"]["resumes"]
        with pytest.raises(ConfigurationError, match="resumes"):
            install_seat(target, blob)

    def test_bad_seat_state_rolls_back_admission(self):
        target = make_server()
        blob = self.make_blob()
        blob["seat"] = {"not": "a seat export"}
        occupancy = target.registry.occupancy()
        with pytest.raises(Exception):
            install_seat(target, blob)
        # The provisional admission was undone: no stranded parked
        # seat, and the seat is reusable.
        assert target.registry.occupancy() == occupancy
        assert target.metrics.migrations_in == 0
        replacement = park_session(target, client="retry")
        assert replacement.seat == 0

    def test_bad_telemetry_rolls_back_admission(self):
        target = make_server()
        blob = self.make_blob()
        blob["telemetry"] = [{"slot": 1}]
        with pytest.raises(Exception):
            install_seat(target, blob)
        assert target.registry.occupancy() == 0
        assert target.metrics.migrations_in == 0

    def test_full_shard_rejected_before_state_touched(self):
        target = make_server(max_users=1)
        park_session(target, client="resident", token="tok-" + "c" * 12)
        blob = self.make_blob()
        with pytest.raises(ConfigurationError):
            install_seat(target, blob)
        assert target.metrics.migrations_in == 0


class TestTraceIdentity:
    def test_trace_identity_round_trips(self):
        source = make_server()
        target = make_server()
        session = park_session(source)
        session.trace_id = "aaaa1111bbbb2222"
        blob = capture_seat(source, session, source_shard=0)
        assert blob["version"] == HANDOFF_SCHEMA_VERSION
        assert blob["trace_id"] == "aaaa1111bbbb2222"
        # The identity is carried, never re-minted: the landed session
        # keeps the trace minted at original admission.
        landed = install_seat(target, blob)
        assert landed.trace_id == "aaaa1111bbbb2222"

    def test_v1_blob_without_trace_still_installs(self):
        assert 1 in HANDOFF_SUPPORTED_VERSIONS
        source = make_server()
        target = make_server()
        session = park_session(source)
        session.trace_id = "aaaa1111bbbb2222"
        blob = capture_seat(source, session, source_shard=0)
        # A pre-v2 shard's blob: no trace field at all.
        del blob["trace_id"]
        blob["version"] = 1
        landed = install_seat(target, blob)
        assert landed.client == "mover"
        assert landed.trace_id == ""
