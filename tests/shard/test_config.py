"""ShardClusterConfig validation and the per-shard config derivation."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_DISCONNECT,
    FAULT_MIGRATION_STALL,
    FAULT_SHARD_KILL,
    FaultEvent,
    FaultSchedule,
)
from repro.serve.config import serve_setup1
from repro.shard.config import ShardClusterConfig


def base_config(**kwargs):
    defaults = dict(max_users=2, duration_slots=11, seed=3, lockstep=True)
    defaults.update(kwargs)
    return serve_setup1(**defaults)


def resumable_base():
    return replace(base_config(), resume_grace_s=5.0)


class TestValidation:
    def test_defaults_are_a_one_shard_cluster(self):
        cluster = ShardClusterConfig(base=base_config())
        assert cluster.num_shards == 1
        assert cluster.seats_per_shard == 2
        assert cluster.total_seats == 2

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            ShardClusterConfig(base=base_config(), num_shards=0)

    def test_rejects_fleet_beyond_capacity(self):
        with pytest.raises(ConfigurationError):
            ShardClusterConfig(
                base=base_config(), num_shards=2, expect_clients=5
            )

    def test_rejects_seat_level_kind_in_cluster_schedule(self):
        faults = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
        ))
        with pytest.raises(ConfigurationError, match="shard kinds only"):
            ShardClusterConfig(
                base=resumable_base(), num_shards=2, faults=faults
            )

    def test_rejects_fault_on_missing_shard(self):
        faults = FaultSchedule(events=(
            FaultEvent(slot=1, seat=2, kind=FAULT_SHARD_KILL),
        ))
        with pytest.raises(ConfigurationError, match="shard 2"):
            ShardClusterConfig(
                base=resumable_base(), num_shards=2, faults=faults
            )

    def test_shard_faults_require_resume(self):
        faults = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_SHARD_KILL),
        ))
        with pytest.raises(ConfigurationError, match="resume"):
            ShardClusterConfig(
                base=base_config(), num_shards=2, faults=faults
            )

    def test_accepts_shard_schedule_with_resume(self):
        faults = FaultSchedule(events=(
            FaultEvent(slot=1, seat=1, kind=FAULT_SHARD_KILL),
            FaultEvent(
                slot=2, seat=0, kind=FAULT_MIGRATION_STALL, duration_s=0.05
            ),
        ))
        cluster = ShardClusterConfig(
            base=resumable_base(), num_shards=2, faults=faults
        )
        assert cluster.faults is faults


class TestShardConfig:
    def test_shard_zero_keeps_base_seed(self):
        cluster = ShardClusterConfig(base=base_config(seed=3), num_shards=3)
        assert cluster.shard_config(0).experiment.seed == 3
        assert cluster.shard_config(1).experiment.seed == 4
        assert cluster.shard_config(2).experiment.seed == 5

    def test_shards_bind_ephemeral_ports(self):
        cluster = ShardClusterConfig(base=base_config(), num_shards=2)
        assert cluster.shard_config(0).port == 0
        assert cluster.shard_config(1).port == 0

    def test_shard_index_is_stamped(self):
        cluster = ShardClusterConfig(base=base_config(), num_shards=2)
        assert cluster.shard_config(0).shard_index == 0
        assert cluster.shard_config(1).shard_index == 1

    def test_seat_faults_stay_on_shard_zero(self):
        seat_faults = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
        ))
        base = replace(resumable_base(), faults=seat_faults)
        cluster = ShardClusterConfig(base=base, num_shards=2)
        assert cluster.shard_config(0).faults is seat_faults
        assert cluster.shard_config(1).faults is None

    def test_out_of_range_index_rejected(self):
        cluster = ShardClusterConfig(base=base_config(), num_shards=2)
        with pytest.raises(ConfigurationError):
            cluster.shard_config(2)
        with pytest.raises(ConfigurationError):
            cluster.shard_config(-1)
