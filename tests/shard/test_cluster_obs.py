"""Cluster-wide observability acceptance: the ISSUE 9 tentpole.

One scenario carries the headline contract: a two-shard lockstep
cluster with tracing, SLO engine, and the federated endpoint enabled
runs one scripted migration; mid-run the cluster ``/metrics`` page
passes ``validate_exposition`` and ``/healthz`` rolls up per-shard
health, and afterwards the per-shard trace files stitch into one
timeline per session with an explicit ``migration`` bridge between
the two shard segments.
"""

import asyncio
import json
import urllib.request
from dataclasses import replace

import pytest

from repro.errors import TransportError
from repro.obs.buildinfo import BUILD_INFO_METRIC
from repro.obs.config import ObsConfig
from repro.obs.promtext import validate_exposition
from repro.obs.slo import default_slo_config
from repro.obs.spans import read_span_stream_tolerant
from repro.obs.stitch import stitch_spans
from repro.serve.loadgen import LoadGenConfig, ReconnectPolicy, run_fleet
from repro.shard.config import ShardClusterConfig, derive_trace_path
from repro.shard.coordinator import ShardCoordinator
from tests.shard.test_cluster import lockstep_base, run_cluster


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


def _obs(tmp_path, **overrides):
    return ObsConfig(
        enabled=True,
        trace_path=str(tmp_path / "run.jsonl"),
        sample_every=1,
        slo=default_slo_config(),
        **overrides,
    )


def _load_spans(path):
    with open(path, "r", encoding="utf-8") as handle:
        _, spans, skipped = read_span_stream_tolerant(handle)
    assert skipped == 0
    return spans


class TestClusterObsAcceptance:
    @pytest.fixture(scope="class")
    def scenario(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("cluster-obs")
        base = lockstep_base(
            max_users=4, slots=41, resume_grace_s=5.0, obs=_obs(tmp_path)
        )
        cluster = ShardClusterConfig(
            base=base, num_shards=2, expect_clients=2, metrics_port=0
        )

        async def run():
            coordinator = ShardCoordinator(cluster)
            await coordinator.start()
            run_task = asyncio.ensure_future(coordinator.run())

            async def probe():
                # Scrape the federated endpoint mid-run, right after
                # queueing the rebalance (lockstep slots are still
                # draining while the HTTP round trips happen).
                await coordinator.wait_cluster_ready()
                source = coordinator.router.assignment("client-0")
                # Let the source shard serve a few slots first so the
                # session leaves user-slot samples on *both* sides of
                # the handoff (a slot-0 migration would stitch into a
                # single segment).
                while coordinator.servers[source].metrics.slots < 5:
                    await asyncio.sleep(0)
                coordinator.request_migration("client-0", 1 - source)
                port = coordinator.metrics_port
                metrics = await asyncio.to_thread(
                    _get, f"http://127.0.0.1:{port}/metrics"
                )
                health = await asyncio.to_thread(
                    _get, f"http://127.0.0.1:{port}/healthz"
                )
                return source, metrics, health

            prober = asyncio.ensure_future(probe())
            fleet, result = await asyncio.gather(
                run_fleet(
                    LoadGenConfig(
                        num_clients=2, seed=0, port=coordinator.port,
                        reconnect=ReconnectPolicy(max_attempts=5),
                    )
                ),
                run_task,
            )
            source, metrics, health = await prober
            return {
                "tmp_path": tmp_path,
                "result": result,
                "fleet": fleet,
                "source": source,
                "metrics": metrics,
                "health": json.loads(health),
            }

        return asyncio.run(run())

    def test_migration_happened_without_misses(self, scenario):
        result = scenario["result"]
        assert result.migrations == 1
        assert result.missed_reports == 0
        mover = {c.name: c for c in scenario["fleet"].clients}["client-0"]
        assert mover.end_reason == "complete"
        assert mover.resumes == 1

    def test_federated_metrics_pass_validation(self, scenario):
        text = scenario["metrics"]
        summary = validate_exposition(text)
        assert summary.samples > 0
        # Every member contributes under its shard label; the
        # coordinator's own registry merges in alongside.
        assert 'shard="coordinator"' in text
        assert 'shard="0"' in text
        assert 'shard="1"' in text
        assert BUILD_INFO_METRIC in text
        assert "repro_slo_burn_rate" in text

    def test_healthz_rolls_up_cluster_state(self, scenario):
        health = scenario["health"]
        assert health["num_shards"] == 2
        assert health["alive_shards"] == 2
        assert health["supervisor_restarts"] == 0
        assert health["respawned_shards"] == []
        shards = health["shards"]
        assert [entry["shard"] for entry in shards] == [0, 1]
        for entry in shards:
            assert entry["alive"] is True
            assert entry["slo"]["breaching"] == []

    def test_every_member_wrote_a_trace_stream(self, scenario):
        tmp_path = scenario["tmp_path"]
        base_path = str(tmp_path / "run.jsonl")
        for member in ("coordinator", "shard0", "shard1"):
            path = derive_trace_path(base_path, member)
            assert path is not None
            assert (tmp_path / path.rsplit("/", 1)[-1]).exists()

    def test_stitched_timeline_bridges_both_shards(self, scenario):
        tmp_path = scenario["tmp_path"]
        base_path = str(tmp_path / "run.jsonl")
        streams = [
            _load_spans(derive_trace_path(base_path, member))
            for member in ("coordinator", "shard0", "shard1")
        ]
        timelines = stitch_spans(streams)
        by_client = {t.client: t for t in timelines}
        mover = by_client["client-0"]

        source = scenario["source"]
        target = 1 - source
        # The moved session lived on both shards, in handoff order,
        # with the coordinator's bridge span in between.
        assert mover.shards == (source, target)
        assert len(mover.migrations) == 1
        bridge = mover.migrations[0]
        assert (bridge.source_shard, bridge.target_shard) == (source, target)
        assert bridge.reason == "rebalance"
        kinds = [event["kind"] for event in mover.events()]
        assert kinds == ["segment", "migration", "segment"]
        # The bridge sits between the two residence windows.
        assert mover.segments[0].last_slot < bridge.slot
        assert bridge.slot <= mover.segments[1].first_slot
        # Of the 40 slots, exactly the handoff slot has no user
        # sample (the session is detached while it moves).
        assert sum(s.user_slots for s in mover.segments) == 39

        # The session that stayed put has one segment and no bridge.
        stayers = [t for t in timelines if t is not mover and t.segments]
        assert len(stayers) == 1
        assert len(stayers[0].shards) == 1
        assert stayers[0].migrations == ()


class TestClusterObsConfig:
    def test_metrics_port_requires_endpoint(self):
        cluster = ShardClusterConfig(
            base=lockstep_base(), num_shards=2, expect_clients=4
        )
        coordinator = ShardCoordinator(cluster)
        with pytest.raises(TransportError):
            coordinator.metrics_port


class TestClusterObsInertness:
    def test_tracing_and_slo_do_not_change_the_run(self, tmp_path):
        """Full observability on vs off: identical planning artifacts."""

        def artifacts(base):
            cluster = ShardClusterConfig(
                base=base, num_shards=2, expect_clients=4
            )
            result, fleet = run_cluster(
                cluster, LoadGenConfig(num_clients=4, seed=3)
            )
            telemetry = [
                [r.as_dict() for r in shard.metrics.telemetry.records]
                for shard in result.shards
            ]
            clients = sorted(
                (c.name, c.seat, c.frames, c.end_reason, c.redirects)
                for c in fleet.clients
            )
            return telemetry, clients

        plain = artifacts(lockstep_base(seed=3))
        observed = artifacts(
            replace(lockstep_base(seed=3), obs=_obs(tmp_path))
        )
        assert observed == plain
