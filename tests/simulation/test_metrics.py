"""Tests for episode metric collection."""

import pytest

from repro.core.qoe import QoEWeights, UserQoELedger
from repro.errors import ConfigurationError
from repro.simulation.metrics import (
    EpisodeResult,
    MultiEpisodeResults,
    UserEpisodeSummary,
    summarize_ledger,
)


def summary(qoe=1.0, quality=3.0, delay=0.5, variance=0.2, fps=None):
    return UserEpisodeSummary(qoe, quality, delay, variance, mean_level=3.0, fps=fps)


class TestUserEpisodeSummary:
    def test_metric_lookup(self):
        s = summary()
        assert s.metric("qoe") == 1.0
        assert s.metric("variance") == 0.2

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            summary().metric("nope")


class TestSummarizeLedger:
    def test_from_ledger(self):
        ledger = UserQoELedger()
        ledger.record(4, 1, 0.5)
        ledger.record(2, 1, 1.5)
        weights = QoEWeights(0.1, 0.5)
        s = summarize_ledger(ledger, weights, fps=58.0)
        assert s.quality == pytest.approx(3.0)
        assert s.delay == pytest.approx(1.0)
        assert s.variance == pytest.approx(1.0)
        assert s.qoe == pytest.approx(ledger.qoe_per_slot(weights))
        assert s.fps == 58.0


class TestEpisodeResult:
    def test_means(self):
        result = EpisodeResult([summary(qoe=1.0), summary(qoe=3.0)])
        assert result.mean("qoe") == pytest.approx(2.0)
        assert result.num_users == 2

    def test_system_qoe(self):
        result = EpisodeResult([summary(qoe=1.0), summary(qoe=3.0)])
        assert result.system_qoe_per_slot() == pytest.approx(4.0)

    def test_mean_fps(self):
        result = EpisodeResult([summary(fps=60.0), summary(fps=50.0)])
        assert result.mean_fps() == pytest.approx(55.0)
        assert EpisodeResult([summary()]).mean_fps() is None

    def test_requires_users(self):
        with pytest.raises(ConfigurationError):
            EpisodeResult([])


class TestMultiEpisodeResults:
    def test_pooling(self):
        results = MultiEpisodeResults("test")
        results.add(EpisodeResult([summary(qoe=1.0), summary(qoe=2.0)], episode=0))
        results.add(EpisodeResult([summary(qoe=3.0), summary(qoe=4.0)], episode=1))
        assert results.num_episodes == 2
        assert sorted(results.samples("qoe")) == [1.0, 2.0, 3.0, 4.0]
        assert results.mean("qoe") == pytest.approx(2.5)

    def test_cdf(self):
        results = MultiEpisodeResults("test")
        results.add(EpisodeResult([summary(qoe=1.0), summary(qoe=3.0)]))
        cdf = results.cdf("qoe")
        assert cdf.evaluate(2.0) == pytest.approx(0.5)

    def test_means_dict(self):
        results = MultiEpisodeResults("test")
        results.add(EpisodeResult([summary()]))
        means = results.means()
        assert set(means) == {"qoe", "quality", "delay", "variance"}

    def test_mean_requires_data(self):
        with pytest.raises(ConfigurationError):
            MultiEpisodeResults("x").mean("qoe")

    def test_mean_fps_none_when_absent(self):
        results = MultiEpisodeResults("x")
        results.add(EpisodeResult([summary()]))
        assert results.mean_fps() is None
