"""Tests for the M/M/1 delay model (eq. 13) and the Fig. 1b sampler."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.delaymodel import MM1DelayModel, mean_rtt_curve, sample_rtts


class TestMM1DelayModel:
    def test_eq13_value(self):
        model = MM1DelayModel()
        # d = f / (B - f): 30 / (60 - 30) = 1.
        assert model.delay(30.0, 60.0) == pytest.approx(1.0)
        assert model.delay(20.0, 60.0) == pytest.approx(0.5)

    def test_zero_rate_zero_delay(self):
        assert MM1DelayModel().delay(0.0, 60.0) == 0.0

    def test_saturation_clamped(self):
        model = MM1DelayModel(max_delay=50.0)
        assert model.delay(60.0, 60.0) == 50.0
        assert model.delay(100.0, 60.0) == 50.0
        assert model.delay(59.999, 60.0) == 50.0  # blown past the clamp

    def test_zero_bandwidth(self):
        model = MM1DelayModel(max_delay=10.0)
        assert model.delay(1.0, 0.0) == 10.0
        assert model.delay(0.0, 0.0) == 0.0

    def test_convex_increasing_in_rate(self):
        """The Section II structural assumption, numerically."""
        model = MM1DelayModel()
        rates = np.linspace(1.0, 50.0, 25)
        delays = [model.delay(r, 60.0) for r in rates]
        increments = np.diff(delays)
        assert (increments > 0).all()
        assert (np.diff(increments) > -1e-12).all()

    def test_delay_fn_freezes_bandwidth(self):
        model = MM1DelayModel()
        fn = model.delay_fn(60.0)
        assert fn(30.0) == model.delay(30.0, 60.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MM1DelayModel(max_delay=0.0)
        with pytest.raises(ConfigurationError):
            MM1DelayModel().delay(-1.0, 60.0)


class TestRttSampling:
    def test_returns_requested_samples(self, rng):
        rtts = sample_rtts(5.0, capacity_mbps=15.0, num_samples=500, rng=rng)
        assert len(rtts) == 500
        assert (rtts >= 2.0).all()  # base RTT floor

    def test_mean_rtt_grows_with_rate(self):
        """Higher sending rate -> longer queue -> larger RTT."""
        low = np.mean(sample_rtts(3.0, 15.0, 20_000, rng=np.random.default_rng(0)))
        high = np.mean(sample_rtts(12.0, 15.0, 20_000, rng=np.random.default_rng(0)))
        assert high > low

    def test_fig1b_curve_convex(self):
        """The Fig. 1b shape: mean RTT convex in the sending rate."""
        rates = [2.0, 5.0, 8.0, 11.0, 13.5]
        curve = mean_rtt_curve(rates, capacity_mbps=15.0, num_samples=30_000)
        increments = np.diff(curve)
        assert (increments > 0).all()
        assert (np.diff(increments) > 0).all()

    def test_matches_mm1_theory_at_moderate_load(self):
        """Mean sojourn ~ 1/(mu - lambda) for M/M/1."""
        capacity, rate, packet_bits = 15.0, 9.0, 12_000.0
        mu = capacity * 1e6 / packet_bits
        lam = rate * 1e6 / packet_bits
        expected_ms = 2.0 + 1e3 / (mu - lam)
        measured = np.mean(
            sample_rtts(rate, capacity, 200_000, rng=np.random.default_rng(1))
        )
        assert measured == pytest.approx(expected_ms, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sample_rtts(-1.0, 15.0, rng=rng)
        with pytest.raises(ConfigurationError):
            sample_rtts(15.0, 15.0, rng=rng)  # unstable queue
        with pytest.raises(ConfigurationError):
            sample_rtts(1.0, 0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            sample_rtts(1.0, 15.0, num_samples=0, rng=rng)
