"""Tests for the parameter sweep utilities."""

import pytest

from repro.core import DensityValueGreedyAllocator
from repro.errors import ConfigurationError
from repro.simulation import SimulationConfig
from repro.simulation.sweep import best_point, run_sweep, sweep_table


@pytest.fixture(scope="module")
def base_config():
    return SimulationConfig(num_users=2, duration_slots=120, seed=5)


class TestRunSweep:
    def test_grid_cartesian_product(self, base_config):
        points = run_sweep(
            base_config,
            DensityValueGreedyAllocator,
            {"alpha": [0.02, 0.5], "beta": [0.1, 0.5]},
        )
        assert len(points) == 4
        combos = {tuple(v for _, v in p.overrides) for p in points}
        assert (0.02, 0.1) in combos
        assert (0.5, 0.5) in combos

    def test_alpha_changes_delay_posture(self, base_config):
        points = run_sweep(
            base_config,
            DensityValueGreedyAllocator,
            {"alpha": [0.02, 1.0]},
        )
        low, high = points
        assert low.override("alpha") == 0.02
        assert high.results.mean("delay") <= low.results.mean("delay") + 1e-9

    def test_config_field_override(self, base_config):
        points = run_sweep(
            base_config,
            DensityValueGreedyAllocator,
            {"margin_deg": [5.0, 25.0]},
        )
        assert len(points) == 2
        assert points[0].override("margin_deg") == 5.0

    def test_validation(self, base_config):
        with pytest.raises(ConfigurationError):
            run_sweep(base_config, DensityValueGreedyAllocator, {})
        with pytest.raises(ConfigurationError):
            run_sweep(base_config, DensityValueGreedyAllocator, {"alpha": []})

    def test_override_lookup_unknown_field(self, base_config):
        points = run_sweep(
            base_config, DensityValueGreedyAllocator, {"alpha": [0.02]}
        )
        with pytest.raises(ConfigurationError):
            points[0].override("beta")


class TestSweepReporting:
    @pytest.fixture(scope="class")
    def points(self, base_config):
        return run_sweep(
            base_config,
            DensityValueGreedyAllocator,
            {"beta": [0.0, 2.0]},
        )

    def test_table_shape(self, points):
        rows = sweep_table(points, metrics=("qoe", "variance"))
        assert len(rows) == 2
        assert len(rows[0]) == 3  # 1 override + 2 metrics

    def test_beta_controls_variance(self, points):
        rows = sweep_table(points, metrics=("variance",))
        no_penalty, heavy_penalty = rows[0][1], rows[1][1]
        assert heavy_penalty <= no_penalty + 1e-9

    def test_best_point(self, points):
        best = best_point(points, metric="qoe")
        assert best in points

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_table([])
        with pytest.raises(ConfigurationError):
            best_point([])
