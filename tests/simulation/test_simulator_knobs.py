"""Tests for the simulator's predictor and knowledge knobs."""

import pytest

from repro.core import DensityValueGreedyAllocator
from repro.errors import ConfigurationError
from repro.simulation import SimulationConfig, TraceSimulator
from repro.simulation.metrics import EpisodeResult, UserEpisodeSummary


class TestPredictorSelection:
    @pytest.mark.parametrize(
        "predictor",
        ["linear-regression", "last-pose", "constant-velocity",
         "exponential-smoothing"],
    )
    def test_all_predictors_run(self, predictor):
        config = SimulationConfig(
            num_users=2, duration_slots=60, seed=1, predictor=predictor
        )
        result = TraceSimulator(config).run_episode(DensityValueGreedyAllocator())
        assert result.num_users == 2

    def test_unknown_predictor_raises(self):
        config = SimulationConfig(
            num_users=2, duration_slots=60, seed=1, predictor="oracle"
        )
        with pytest.raises(ConfigurationError):
            TraceSimulator(config).run_episode(DensityValueGreedyAllocator())

    def test_tight_margin_separates_predictors(self):
        """With a 2-degree margin, no-prediction loses coverage vs LR."""
        def quality(predictor):
            config = SimulationConfig(
                num_users=2, duration_slots=400, seed=3,
                predictor=predictor, margin_deg=2.0, cell_tolerance=0,
            )
            sim = TraceSimulator(config)
            return sim.run_episode(DensityValueGreedyAllocator()).mean("quality")

        assert quality("linear-regression") >= quality("last-pose") - 0.05


class TestImperfectKnowledge:
    def test_runs_and_degrades_gracefully(self):
        perfect = SimulationConfig(num_users=3, duration_slots=300, seed=2)
        imperfect = SimulationConfig(
            num_users=3, duration_slots=300, seed=2,
            perfect_network_knowledge=False,
        )
        q_perfect = TraceSimulator(perfect).run_episode(
            DensityValueGreedyAllocator()
        ).mean("qoe")
        q_imperfect = TraceSimulator(imperfect).run_episode(
            DensityValueGreedyAllocator()
        ).mean("qoe")
        # Estimation error cannot help; it should cost at most a
        # modest fraction of the QoE in the benign trace regime.
        assert q_imperfect <= q_perfect + 0.05
        assert q_imperfect > 0.5 * q_perfect

    def test_estimates_differ_from_truth_in_decisions(self):
        """A badly lagging estimator must actually change outcomes.

        With a near-frozen EMA (alpha 0.01) the believed caps barely
        track the bandwidth trace, so some slots pick different levels
        than the perfect-knowledge run.
        """
        base = dict(num_users=2, duration_slots=400, seed=7)
        a = TraceSimulator(SimulationConfig(**base)).run_episode(
            DensityValueGreedyAllocator()
        )
        b = TraceSimulator(
            SimulationConfig(
                perfect_network_knowledge=False, ema_alpha=0.01, **base
            )
        ).run_episode(DensityValueGreedyAllocator())
        assert any(
            ua.qoe != pytest.approx(ub.qoe)
            for ua, ub in zip(a.users, b.users)
        )


class TestFairnessMetrics:
    def summary(self, qoe):
        return UserEpisodeSummary(qoe, 3.0, 0.5, 0.2, mean_level=3.0)

    def test_equal_users_fully_fair(self):
        result = EpisodeResult([self.summary(2.0), self.summary(2.0)])
        assert result.fairness() == pytest.approx(1.0)

    def test_skewed_users_less_fair(self):
        result = EpisodeResult([self.summary(4.0), self.summary(0.0)])
        assert result.fairness() < 0.6

    def test_multi_episode_mean_fairness(self):
        from repro.simulation.metrics import MultiEpisodeResults

        results = MultiEpisodeResults("x")
        results.add(EpisodeResult([self.summary(2.0), self.summary(2.0)]))
        results.add(EpisodeResult([self.summary(4.0), self.summary(0.0)]))
        assert 0.5 < results.mean_fairness() < 1.0

    def test_mean_fairness_requires_episodes(self):
        from repro.simulation.metrics import MultiEpisodeResults

        with pytest.raises(ConfigurationError):
            MultiEpisodeResults("x").mean_fairness()


class TestSimulatorTelemetry:
    def test_records_per_slot_and_user(self):
        from repro.system.telemetry import Telemetry

        config = SimulationConfig(num_users=2, duration_slots=50, seed=1)
        telemetry = Telemetry()
        TraceSimulator(config).run_episode(
            DensityValueGreedyAllocator(), telemetry=telemetry
        )
        assert len(telemetry) == 100
        summary = telemetry.summary()
        assert summary["transmit_fraction"] == 1.0  # no skips in the sim
        assert summary["mean_demand_mbps"] > 0

    def test_believed_equals_true_under_perfect_knowledge(self):
        from repro.system.telemetry import Telemetry

        config = SimulationConfig(num_users=2, duration_slots=40, seed=1)
        telemetry = Telemetry()
        TraceSimulator(config).run_episode(
            DensityValueGreedyAllocator(), telemetry=telemetry
        )
        for record in telemetry.records:
            assert record.believed_cap_mbps == record.achieved_mbps
