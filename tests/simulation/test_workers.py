"""The persistent worker pool and its go/no-go decision logic."""

import numpy as np
import pytest

from repro.simulation import workers
from repro.simulation.workers import ParallelDecision, parallel_decision


class TestParallelDecision:
    @pytest.mark.parametrize("max_workers", [None, 0, 1])
    def test_serial_when_not_requested(self, max_workers):
        decision = parallel_decision(10, max_workers)
        assert decision == ParallelDecision(
            False, "serial replay requested (max_workers <= 1)"
        )

    def test_serial_for_a_single_episode(self):
        decision = parallel_decision(1, 4)
        assert not decision.use_parallel
        assert "single episode" in decision.reason

    def test_serial_on_a_single_core_box(self, monkeypatch):
        monkeypatch.setattr(workers.os, "cpu_count", lambda: 1)
        decision = parallel_decision(10, 4)
        assert not decision.use_parallel
        assert "1 CPU core" in decision.reason

    def test_parallel_on_a_multi_core_box(self, monkeypatch):
        monkeypatch.setattr(workers.os, "cpu_count", lambda: 8)
        decision = parallel_decision(10, 4)
        assert decision.use_parallel
        assert "4 workers over 10 episodes on 8 cores" == decision.reason

    def test_workers_capped_by_episodes(self, monkeypatch):
        monkeypatch.setattr(workers.os, "cpu_count", lambda: 8)
        decision = parallel_decision(2, 16)
        assert decision.use_parallel
        assert decision.reason.startswith("2 workers")


class TestChunks:
    def test_even_split(self):
        assert workers._chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_spread_over_leading_chunks(self):
        assert workers._chunks([1, 2, 3, 4, 5], 3) == [[1, 2], [3, 4], [5]]

    def test_more_chunks_than_episodes(self):
        assert workers._chunks([1, 2], 4) == [[1], [2]]

    def test_order_preserved_when_flattened(self):
        episodes = list(range(17))
        chunks = workers._chunks(episodes, 5)
        assert [e for chunk in chunks for e in chunk] == episodes


class TestPoolLifecycle:
    def test_pool_reused_until_size_changes(self):
        workers.shutdown_pool()
        try:
            first = workers.get_pool(2)
            assert workers.get_pool(2) is first
            resized = workers.get_pool(3)
            assert resized is not first
            assert workers.get_pool(3) is resized
        finally:
            workers.shutdown_pool()
        assert workers._POOL is None

    def test_run_episodes_refuses_unpicklable_payloads(self):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        result = workers.run_episodes(Unpicklable(), object(), [0, 1], 2)
        assert result is None
        assert workers._POOL is None  # pre-flight failed before pool spawn


def test_run_episodes_matches_serial_results():
    # End-to-end through real worker processes: the parallel path must
    # return the serial path's results in episode order.  (On a
    # single-core box TraceSimulator.run never takes this route, but
    # the pool itself still works — exercise it directly.)
    import dataclasses

    from repro.core.allocation import DensityValueGreedyAllocator
    from repro.simulation.simulator import SimulationConfig, TraceSimulator

    config = SimulationConfig(num_users=2, duration_slots=20)
    simulator = TraceSimulator(config)
    allocator = DensityValueGreedyAllocator()
    episodes = [0, 1, 2]
    serial = [simulator.run_episode(allocator, e) for e in episodes]
    try:
        parallel = workers.run_episodes(config, allocator, episodes, 2)
    finally:
        workers.shutdown_pool()
    assert parallel is not None
    assert [r.episode for r in parallel] == episodes
    for got, want in zip(parallel, serial):
        assert [dataclasses.asdict(u) for u in got.users] == [
            dataclasses.asdict(u) for u in want.users
        ]


def test_curve_cache_is_bounded(monkeypatch):
    from repro.simulation import simulator as simulator_module
    from repro.simulation.simulator import SimulationConfig, TraceSimulator

    sim = TraceSimulator(SimulationConfig(num_users=1, duration_slots=2))
    monkeypatch.setattr(simulator_module, "_CURVE_CACHE_LIMIT", 8)
    for cell in range(32):
        sim._curve(cell)
    assert len(sim._curve_cache) <= 8


def test_tile_cache_is_bounded(monkeypatch):
    from repro.content.projection import FieldOfView
    from repro.content.tiles import GridWorld, TileGrid
    from repro.prediction import fov as fov_module
    from repro.prediction.fov import CoverageEvaluator

    evaluator = CoverageEvaluator(
        world=GridWorld(),
        grid=TileGrid(rows=2, cols=2),
        fov=FieldOfView(horizontal_deg=90.0, vertical_deg=90.0),
        cache=True,
    )
    from repro.prediction.pose import Pose

    monkeypatch.setattr(fov_module, "_TILE_CACHE_LIMIT", 4)
    rng = np.random.default_rng(0)
    for _ in range(64):
        pose = Pose(
            0, 0, 0, float(rng.uniform(-180, 180)), float(rng.uniform(-90, 90)), 0
        )
        evaluator.tiles_needed(pose)
    assert len(evaluator._needed_cache) <= 4
