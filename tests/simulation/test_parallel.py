"""Parallel episode replay must be invisible in the results."""

import dataclasses

import pytest

from repro.core.allocation import DensityValueGreedyAllocator
from repro.errors import ConfigurationError
from repro.simulation.simulator import SimulationConfig, TraceSimulator


def _flatten(results):
    return [
        (episode.episode, [dataclasses.asdict(u) for u in episode.users])
        for episode in results.episodes
    ]


class TestParallelEpisodes:
    def test_matches_serial(self):
        config = SimulationConfig(num_users=3, duration_slots=120, seed=5)
        allocator = DensityValueGreedyAllocator()
        serial = TraceSimulator(config).run(allocator, num_episodes=4)
        parallel = TraceSimulator(config).run(
            allocator, num_episodes=4, max_workers=4
        )
        assert parallel.algorithm == serial.algorithm
        assert _flatten(parallel) == _flatten(serial)

    def test_compare_passthrough(self):
        config = SimulationConfig(num_users=2, duration_slots=80, seed=9)
        allocators = {"ours": DensityValueGreedyAllocator()}
        serial = TraceSimulator(config).compare(allocators, num_episodes=2)
        parallel = TraceSimulator(config).compare(
            allocators, num_episodes=2, max_workers=2
        )
        assert _flatten(parallel["ours"]) == _flatten(serial["ours"])

    def test_worker_counts_that_mean_serial(self):
        config = SimulationConfig(num_users=2, duration_slots=60, seed=1)
        allocator = DensityValueGreedyAllocator()
        baseline = _flatten(TraceSimulator(config).run(allocator, num_episodes=2))
        for workers in (None, 0, 1):
            run = TraceSimulator(config).run(
                allocator, num_episodes=2, max_workers=workers
            )
            assert _flatten(run) == baseline

    def test_unpicklable_allocator_falls_back(self):
        config = SimulationConfig(num_users=2, duration_slots=60, seed=2)
        allocator = DensityValueGreedyAllocator()
        reference = _flatten(TraceSimulator(config).run(allocator, num_episodes=2))
        unpicklable = DensityValueGreedyAllocator()
        # A closure attribute cannot cross the process boundary; the
        # run must silently take the serial path instead of crashing.
        unpicklable.hook = lambda: None
        run = TraceSimulator(config).run(
            unpicklable, num_episodes=2, max_workers=4
        )
        assert _flatten(run) == reference

    def test_negative_workers_rejected(self):
        config = SimulationConfig(num_users=2, duration_slots=60, seed=2)
        with pytest.raises(ConfigurationError):
            TraceSimulator(config).run(
                DensityValueGreedyAllocator(), num_episodes=2, max_workers=-1
            )
