"""Integration tests for the Section IV trace-driven simulator."""

import pytest

from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    OfflineOptimalAllocator,
    PavqAllocator,
)
from repro.errors import ConfigurationError
from repro.simulation import SimulationConfig, TraceSimulator


@pytest.fixture(scope="module")
def simulator():
    return TraceSimulator(SimulationConfig(num_users=3, duration_slots=150, seed=2))


class TestTraceSimulator:
    def test_episode_produces_full_metrics(self, simulator):
        result = simulator.run_episode(DensityValueGreedyAllocator())
        assert result.num_users == 3
        for user in result.users:
            assert 0.0 <= user.quality <= 6.0
            assert user.delay >= 0.0
            assert user.variance >= 0.0
            assert user.fps is None

    def test_deterministic_given_seed(self):
        a = TraceSimulator(SimulationConfig(num_users=2, duration_slots=100, seed=5))
        b = TraceSimulator(SimulationConfig(num_users=2, duration_slots=100, seed=5))
        ra = a.run_episode(DensityValueGreedyAllocator())
        rb = b.run_episode(DensityValueGreedyAllocator())
        assert ra.users[0].qoe == pytest.approx(rb.users[0].qoe)
        assert ra.users[1].variance == pytest.approx(rb.users[1].variance)

    def test_different_seeds_differ(self):
        a = TraceSimulator(SimulationConfig(num_users=2, duration_slots=100, seed=5))
        b = TraceSimulator(SimulationConfig(num_users=2, duration_slots=100, seed=6))
        ra = a.run_episode(DensityValueGreedyAllocator())
        rb = b.run_episode(DensityValueGreedyAllocator())
        assert ra.users[0].qoe != pytest.approx(rb.users[0].qoe)

    def test_run_pools_episodes(self, simulator):
        results = simulator.run(DensityValueGreedyAllocator(), num_episodes=2)
        assert results.num_episodes == 2
        assert len(results.samples("qoe")) == 6

    def test_compare_runs_all(self, simulator):
        comparison = simulator.compare(
            {"ours": DensityValueGreedyAllocator(), "pavq": PavqAllocator()},
            num_episodes=1,
        )
        assert set(comparison) == {"ours", "pavq"}

    def test_server_budget_rule(self):
        config = SimulationConfig(num_users=7)
        assert config.server_budget_mbps == pytest.approx(7 * 36.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_users=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(duration_slots=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(server_mbps_per_user=0.0)
        with pytest.raises(ConfigurationError):
            TraceSimulator().run(DensityValueGreedyAllocator(), num_episodes=0)
        with pytest.raises(ConfigurationError):
            TraceSimulator().compare({})


class TestSimulatorShape:
    """The Fig. 2 orderings on a short but meaningful run."""

    @pytest.fixture(scope="class")
    def comparison(self):
        simulator = TraceSimulator(
            SimulationConfig(num_users=4, duration_slots=400, seed=1)
        )
        return simulator.compare(
            {
                "ours": DensityValueGreedyAllocator(),
                "optimal": OfflineOptimalAllocator(),
                "pavq": PavqAllocator(),
                "firefly": FireflyAllocator(),
            },
            num_episodes=2,
        )

    def test_ours_close_to_offline_optimal(self, comparison):
        ours = comparison["ours"].mean("qoe")
        optimal = comparison["optimal"].mean("qoe")
        assert ours >= 0.97 * optimal

    def test_ours_beats_firefly(self, comparison):
        assert comparison["ours"].mean("qoe") > comparison["firefly"].mean("qoe")

    def test_ours_at_least_pavq(self, comparison):
        assert comparison["ours"].mean("qoe") >= comparison["pavq"].mean("qoe") - 0.05

    def test_firefly_worst_variance(self, comparison):
        firefly_var = comparison["firefly"].mean("variance")
        assert firefly_var >= comparison["ours"].mean("variance")
        assert firefly_var >= comparison["pavq"].mean("variance")
