"""Shard-kill chaos acceptance: migrate everything, lose nothing.

The headline scenario from the issue: a lockstep cluster with a
scripted ``shard_kill`` must migrate the dying shard's sessions to the
survivors with **zero lost reports** — every migrated client finishes
the run, its QoE ledger intact — and the whole timeline must be
deterministic for a given seed, because migrations happen at the
shards' slot-hook points, not at arbitrary wall-clock moments.

Seed 0 hash placement (pinned by ``TestPlacement``): clients 0, 2, 3
live on shard 1, client 1 on shard 0.  Killing shard 1 therefore
forces three simultaneous migrations into shard 0's spare seats.
"""

import asyncio
from dataclasses import replace

from repro.faults import (
    FAULT_MIGRATION_STALL,
    FAULT_SHARD_KILL,
    FaultEvent,
    FaultSchedule,
)
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, ReconnectPolicy
from repro.shard.bench import run_cluster_and_fleet
from repro.shard.config import ShardClusterConfig
from repro.shard.coordinator import ShardCoordinator
from repro.shard.router import SessionRouter
from repro.shard.supervisor import ShardSupervisor

KILL_SHARD_1 = FaultSchedule(events=(
    FaultEvent(slot=10, seat=1, kind=FAULT_SHARD_KILL),
))


def cluster_config(faults, max_users=4, slots=40, seed=0):
    base = replace(
        serve_setup1(
            max_users=max_users, duration_slots=slots, seed=seed,
            lockstep=True,
        ),
        resume_grace_s=5.0,
    )
    return ShardClusterConfig(
        base=base, num_shards=2, expect_clients=4, faults=faults
    )


def fleet_config(seed=0):
    return LoadGenConfig(
        num_clients=4, seed=seed,
        reconnect=ReconnectPolicy(max_attempts=5),
    )


def run_kill_scenario(faults=KILL_SHARD_1):
    return asyncio.run(
        run_cluster_and_fleet(cluster_config(faults), fleet_config())
    )


class TestPlacement:
    def test_seed_zero_puts_three_clients_on_shard_one(self):
        router = SessionRouter(seed=0, num_shards=2)
        homes = {f"client-{i}": router.home_shard(f"client-{i}")
                 for i in range(4)}
        assert homes == {
            "client-0": 1, "client-1": 0, "client-2": 1, "client-3": 1,
        }


class TestShardKill:
    def test_zero_lost_reports_on_mid_run_kill(self):
        result, fleet = run_kill_scenario()

        # The dying shard evacuated all three of its sessions.
        assert result.migrations == 3
        shard0, shard1 = result.shards
        assert shard1.metrics.migrations_out == 3
        assert shard0.metrics.migrations_in == 3

        # Zero lost reports anywhere: migrated seats leave with a
        # complete ledger and rejoin excluded from the barrier until
        # their first plan on the new shard.
        assert result.missed_reports == 0
        assert shard0.metrics.timeouts == 0

        # Shard 1 died at its scripted slot; shard 0 ran the full run.
        assert shard1.metrics.slots == 10
        assert shard0.metrics.slots == 39

        # Every client — migrated or not — finished the run.
        by_name = {c.name: c for c in fleet.clients}
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        for name in ("client-0", "client-2", "client-3"):
            mover = by_name[name]
            assert mover.resumes == 1
            assert mover.redirects == 2
        survivor = by_name["client-1"]
        assert survivor.resumes == 0
        assert survivor.redirects == 1

    def test_kill_timeline_is_deterministic(self):
        def artifacts():
            result, fleet = run_kill_scenario()
            telemetry = [
                [r.as_dict() for r in shard.metrics.telemetry.records]
                for shard in result.shards
            ]
            clients = [
                (c.name, c.seat, c.frames, c.end_reason, c.redirects,
                 c.resumes)
                for c in fleet.clients
            ]
            counters = [
                (shard.metrics.migrations_in, shard.metrics.migrations_out,
                 shard.metrics.slots, shard.metrics.missed_reports)
                for shard in result.shards
            ]
            return telemetry, clients, counters

        assert artifacts() == artifacts()

    def test_full_cluster_kill_degrades_gracefully(self):
        # No spare capacity anywhere: the dying shard cannot evacuate,
        # so it ends its sessions cleanly instead of stranding them.
        cluster = cluster_config(KILL_SHARD_1, max_users=2)
        result, fleet = asyncio.run(
            run_cluster_and_fleet(cluster, fleet_config())
        )
        assert result.migrations == 0
        assert result.missed_reports == 0
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        # The killed shard's clients simply got a shorter session.
        by_name = {c.name: c for c in fleet.clients}
        assert by_name["client-1"].frames > by_name["client-0"].frames


class TestMigrationStall:
    def test_stalled_redirect_is_absorbed_by_resume_barrier(self):
        faults = FaultSchedule(events=(
            FaultEvent(slot=10, seat=1, kind=FAULT_SHARD_KILL),
            FaultEvent(
                slot=0, seat=1, kind=FAULT_MIGRATION_STALL, duration_s=0.1,
            ),
        ))
        result, fleet = run_kill_scenario(faults)
        # The stall delays one client's redirect delivery, but the
        # target's resume barrier holds the slot loop until the
        # wanderer arrives: still zero lost reports.
        assert result.migrations == 3
        assert result.missed_reports == 0
        assert {c.end_reason for c in fleet.clients} == {"complete"}


class TestSupervisorRestart:
    def test_killed_shard_respawns_and_serves_latecomer(self):
        base = replace(
            serve_setup1(
                max_users=4, duration_slots=40, seed=0, lockstep=True,
            ),
            resume_grace_s=5.0,
        )
        cluster = ShardClusterConfig(
            base=base, num_shards=2, expect_clients=4, faults=KILL_SHARD_1,
        )

        async def scenario():
            coordinator = ShardCoordinator(cluster)
            supervisor = ShardSupervisor(coordinator)
            run_task = asyncio.ensure_future(supervisor.run())

            async def fleet_task():
                from repro.errors import TransportError
                from repro.serve.loadgen import run_fleet

                while True:
                    try:
                        port = coordinator.port
                        break
                    except TransportError:
                        await asyncio.sleep(0.01)
                return await run_fleet(replace(fleet_config(), port=port))

            fleet = await fleet_task()
            result = await run_task
            return supervisor, result, fleet

        supervisor, result, fleet = asyncio.run(scenario())
        # The kill was followed by one respawn; nobody joined the
        # standby (the fleet was already migrated), so it closed
        # cleanly without producing a run.
        assert supervisor.restarts == 1
        assert result.restarted == ()
        assert result.migrations == 3
        assert result.missed_reports == 0
        assert {c.end_reason for c in fleet.clients} == {"complete"}
