"""Tests for fault scripts: events, schedules, JSON round-trip, CLI.

The schedule layer is the contract the whole chaos tier rests on:
schedules are canonical (sorted, duplicate-free), serialisable, and
seed-deterministic, so a failing chaos run can always be replayed
from its script alone.
"""

import argparse
import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CLIENT_KINDS,
    FAULT_CORRUPT_REPORT,
    FAULT_CRASH_CLIENT,
    FAULT_DISCONNECT,
    FAULT_KINDS,
    FAULT_MIGRATION_STALL,
    FAULT_SHARD_KILL,
    FAULT_STALL_READ,
    FAULT_TRUNCATE_FRAME,
    SERVER_KINDS,
    SHARD_KINDS,
    TIMED_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.cli import (
    EXIT_INVALID,
    EXIT_OK,
    EXIT_USAGE,
    add_faults_arguments,
    run_faults_command,
)


class TestFaultEvent:
    def test_valid_event(self):
        event = FaultEvent(slot=3, seat=1, kind=FAULT_DISCONNECT)
        assert event.key == (3, 1, FAULT_DISCONNECT)
        assert event.duration_s == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(slot=0, seat=0, kind="meteor_strike")

    def test_negative_slot_and_seat_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(slot=-1, seat=0, kind=FAULT_DISCONNECT)
        with pytest.raises(ConfigurationError):
            FaultEvent(slot=0, seat=-1, kind=FAULT_DISCONNECT)

    def test_timed_kinds_need_duration(self):
        for kind in TIMED_KINDS:
            with pytest.raises(ConfigurationError):
                FaultEvent(slot=0, seat=0, kind=kind)
            assert FaultEvent(slot=0, seat=0, kind=kind, duration_s=0.01)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(slot=0, seat=0, kind=FAULT_DISCONNECT, duration_s=-0.5)

    def test_dict_round_trip(self):
        event = FaultEvent(slot=7, seat=2, kind=FAULT_STALL_READ, duration_s=0.05)
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_events_canonically_sorted(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=9, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=2, seat=3, kind=FAULT_CRASH_CLIENT),
            FaultEvent(slot=2, seat=1, kind=FAULT_DISCONNECT),
        ))
        assert [e.slot for e in schedule.events] == [2, 2, 9]
        assert [e.seat for e in schedule.events] == [1, 3, 0]

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(events=(
                FaultEvent(slot=2, seat=1, kind=FAULT_DISCONNECT),
                FaultEvent(slot=2, seat=1, kind=FAULT_DISCONNECT),
            ))

    def test_restriction_splits_sides(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=2, seat=0, kind=FAULT_CRASH_CLIENT),
            FaultEvent(slot=3, seat=0, kind=FAULT_CORRUPT_REPORT),
        ))
        assert len(schedule.server_events) == 1
        assert len(schedule.client_events) == 2
        both = schedule.restricted_to(SERVER_KINDS + CLIENT_KINDS)
        assert both.events == schedule.events

    def test_counts_and_max_slot(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=4, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=11, seat=1, kind=FAULT_DISCONNECT),
        ))
        assert schedule.counts_by_kind() == {FAULT_DISCONNECT: 2}
        assert schedule.max_slot() == 11
        assert bool(schedule)
        assert not FaultSchedule()

    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_TRUNCATE_FRAME),
            FaultEvent(slot=5, seat=2, kind=FAULT_STALL_READ, duration_s=0.02),
        ))
        path = schedule.save(tmp_path / "faults.json")
        assert FaultSchedule.load(path) == schedule
        # The file is plain JSON a human can author directly.
        body = json.loads(path.read_text())
        assert isinstance(body["events"], list)

    def test_load_rejects_malformed_script(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"events": [{"slot": 0}]}')
        with pytest.raises(ConfigurationError):
            FaultSchedule.load(path)
        path.write_text("not json at all")
        with pytest.raises(ConfigurationError):
            FaultSchedule.load(path)


class TestRandomSchedules:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            seed=42, num_slots=200, num_seats=8,
            rates={kind: 0.01 for kind in FAULT_KINDS}, duration_s=0.05,
            num_shards=2,
        )
        assert FaultSchedule.random(**kwargs) == FaultSchedule.random(**kwargs)

    def test_different_seed_different_schedule(self):
        rates = {FAULT_DISCONNECT: 0.05}
        first = FaultSchedule.random(seed=1, num_slots=300, num_seats=8, rates=rates)
        second = FaultSchedule.random(seed=2, num_slots=300, num_seats=8, rates=rates)
        assert first != second

    def test_min_slot_respected(self):
        schedule = FaultSchedule.random(
            seed=3, num_slots=100, num_seats=4,
            rates={FAULT_DISCONNECT: 0.2}, min_slot=10,
        )
        assert schedule
        assert all(e.slot >= 10 for e in schedule.events)

    def test_rates_restrict_kinds(self):
        schedule = FaultSchedule.random(
            seed=4, num_slots=200, num_seats=4,
            rates={FAULT_CRASH_CLIENT: 0.1},
        )
        assert schedule
        assert set(schedule.counts_by_kind()) == {FAULT_CRASH_CLIENT}


class TestSchemaVersioning:
    def test_seat_only_schedule_stays_version_one(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
        ))
        body = schedule.to_dict()
        # Byte-stability for pre-shard scripts: no shard kinds, no
        # version bump, nothing for old readers to choke on.
        assert body["version"] == 1
        assert FaultSchedule.from_dict(body) == schedule

    def test_shard_schedule_bumps_to_version_two(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=5, seat=1, kind=FAULT_SHARD_KILL),
            FaultEvent(
                slot=7, seat=0, kind=FAULT_MIGRATION_STALL, duration_s=0.02,
            ),
        ))
        body = schedule.to_dict()
        assert body["version"] == 2
        assert FaultSchedule.from_dict(body) == schedule

    def test_mixed_schedule_round_trips_through_json(self, tmp_path):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=5, seat=1, kind=FAULT_SHARD_KILL),
        ))
        path = schedule.save(tmp_path / "mixed.json")
        assert FaultSchedule.load(path) == schedule
        assert json.loads(path.read_text())["version"] == 2

    def test_shard_kind_under_version_one_rejected(self):
        body = {
            "kind": FaultSchedule().to_dict()["kind"],
            "version": 1,
            "events": [{"slot": 5, "seat": 1, "kind": FAULT_SHARD_KILL}],
        }
        with pytest.raises(ConfigurationError, match="schema version 2"):
            FaultSchedule.from_dict(body)

    def test_shard_events_accessor(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=5, seat=1, kind=FAULT_SHARD_KILL),
        ))
        shard_only = schedule.shard_events
        assert len(shard_only) == 1
        assert [e.kind for e in shard_only.events] == [FAULT_SHARD_KILL]
        assert schedule.restricted_to(SHARD_KINDS) == shard_only

    def test_migration_stall_is_timed(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(slot=0, seat=0, kind=FAULT_MIGRATION_STALL)


class TestRandomShardSchedules:
    def test_shard_rates_need_num_shards(self):
        with pytest.raises(ConfigurationError, match="num_shards"):
            FaultSchedule.random(
                seed=0, num_slots=50, num_seats=4,
                rates={FAULT_SHARD_KILL: 0.1},
            )

    def test_seat_draws_unchanged_by_shard_rates(self):
        # Adding shard kinds to the rate table must not perturb the
        # seat-level draw sequence: old seeds keep their schedules.
        seat_rates = {FAULT_DISCONNECT: 0.05, FAULT_STALL_READ: 0.02}
        before = FaultSchedule.random(
            seed=11, num_slots=120, num_seats=6, rates=seat_rates,
            duration_s=0.05,
        )
        combined = FaultSchedule.random(
            seed=11, num_slots=120, num_seats=6,
            rates={**seat_rates, FAULT_SHARD_KILL: 0.02},
            duration_s=0.05, num_shards=3,
        )
        seat_only = combined.restricted_to(SERVER_KINDS + CLIENT_KINDS)
        assert seat_only.events == before.events

    def test_shard_events_target_shards(self):
        schedule = FaultSchedule.random(
            seed=5, num_slots=300, num_seats=8,
            rates={FAULT_SHARD_KILL: 0.05, FAULT_MIGRATION_STALL: 0.05},
            duration_s=0.05, num_shards=2,
        )
        assert schedule
        assert all(e.kind in SHARD_KINDS for e in schedule.events)
        assert all(e.seat < 2 for e in schedule.events)


def _parse(argv):
    # Mirrors the real wiring: --seed is a global repro flag, the
    # faults subcommands attach beneath it.
    parser = argparse.ArgumentParser(prog="repro faults")
    parser.add_argument("--seed", type=int, default=0)
    add_faults_arguments(parser)
    return parser.parse_args(argv)


class TestCli:
    def test_generate_then_show(self, tmp_path):
        script = tmp_path / "chaos.json"
        out = io.StringIO()
        code = run_faults_command(
            _parse(["generate", "--out", str(script), "--slots", "50",
                    "--seats", "4", "--rate", "0.05"]),
            stdout=out, stderr=io.StringIO(),
        )
        assert code == EXIT_OK
        assert "wrote" in out.getvalue()

        shown = io.StringIO()
        code = run_faults_command(
            _parse(["show", str(script)]), stdout=shown, stderr=io.StringIO()
        )
        assert code == EXIT_OK
        assert "event(s)" in shown.getvalue()

    def test_generate_is_seed_deterministic(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        for path in (first, second):
            run_faults_command(
                _parse(["--seed", "9", "generate", "--out", str(path)]),
                stdout=io.StringIO(), stderr=io.StringIO(),
            )
        assert first.read_text() == second.read_text()

    def test_show_missing_file_is_usage_error(self, tmp_path):
        err = io.StringIO()
        code = run_faults_command(
            _parse(["show", str(tmp_path / "nope.json")]),
            stdout=io.StringIO(), stderr=err,
        )
        assert code == EXIT_USAGE
        assert "no such fault script" in err.getvalue()

    def test_show_invalid_script_is_invalid_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"events": "nope"}')
        err = io.StringIO()
        code = run_faults_command(
            _parse(["show", str(path)]), stdout=io.StringIO(), stderr=err
        )
        assert code == EXIT_INVALID
        assert "invalid fault script" in err.getvalue()

    def test_generate_rejects_bad_kind(self, tmp_path):
        err = io.StringIO()
        code = run_faults_command(
            _parse(["generate", "--out", str(tmp_path / "x.json"),
                    "--kinds", "gremlins"]),
            stdout=io.StringIO(), stderr=err,
        )
        assert code == EXIT_USAGE

    def test_generate_shard_kinds_with_shards_flag(self, tmp_path):
        script = tmp_path / "shard-chaos.json"
        code = run_faults_command(
            _parse(["generate", "--out", str(script), "--slots", "200",
                    "--seats", "4", "--rate", "0.05",
                    "--kinds", ",".join(SHARD_KINDS), "--shards", "2"]),
            stdout=io.StringIO(), stderr=io.StringIO(),
        )
        assert code == EXIT_OK
        schedule = FaultSchedule.load(script)
        assert schedule
        assert all(e.kind in SHARD_KINDS for e in schedule.events)
        assert json.loads(script.read_text())["version"] == 2

    def test_generate_shard_kinds_without_shards_flag_fails(self, tmp_path):
        err = io.StringIO()
        code = run_faults_command(
            _parse(["generate", "--out", str(tmp_path / "x.json"),
                    "--kinds", FAULT_SHARD_KILL]),
            stdout=io.StringIO(), stderr=err,
        )
        assert code == EXIT_USAGE

    def test_show_labels_shard_events(self, tmp_path):
        script = tmp_path / "mixed.json"
        FaultSchedule(events=(
            FaultEvent(slot=1, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=5, seat=1, kind=FAULT_SHARD_KILL),
        )).save(script)
        shown = io.StringIO()
        code = run_faults_command(
            _parse(["show", str(script)]), stdout=shown, stderr=io.StringIO()
        )
        assert code == EXIT_OK
        body = shown.getvalue()
        assert "shard" in body
        assert "shard_kill" in body
