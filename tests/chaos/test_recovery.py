"""Session-resume acceptance: scripted outages, self-healing clients.

The headline scenario from the issue: an 8-client lockstep loopback
run with scripted mid-run disconnects and reconnect enabled must end
with every seat regained inside the grace window and zero permanently
lost sessions.  The grace-expiry and resume-rejection paths are
exercised alongside.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.faults import FAULT_DISCONNECT, FaultEvent, FaultSchedule
from repro.serve.admission import REJECT_DRAINING, REJECT_RESUME
from repro.serve.config import PROTOCOL_VERSION, serve_setup1
from repro.serve.loadgen import (
    LoadGenConfig,
    ReconnectPolicy,
    run_serve_and_fleet,
)
from repro.serve.protocol import JoinRequest, Reject, read_message, send_message
from repro.serve.server import VrServeServer

DISCONNECTS = FaultSchedule(events=(
    FaultEvent(slot=5, seat=1, kind=FAULT_DISCONNECT),
    FaultEvent(slot=9, seat=4, kind=FAULT_DISCONNECT),
    FaultEvent(slot=13, seat=6, kind=FAULT_DISCONNECT),
    FaultEvent(slot=17, seat=1, kind=FAULT_DISCONNECT),
))


class TestLockstepRecovery:
    def test_all_seats_regained_zero_lost(self):
        serve_config = replace(
            serve_setup1(
                max_users=8, duration_slots=31, seed=0, expect_clients=8,
                lockstep=True,
            ),
            faults=DISCONNECTS,
            resume_grace_s=5.0,
        )
        fleet_config = LoadGenConfig(
            num_clients=8, seed=0, faults=DISCONNECTS,
            reconnect=ReconnectPolicy(max_attempts=8),
        )
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics

        # Every scripted outage was followed by a resume in grace.
        assert metrics.disconnects == 4
        assert metrics.session_resumes == 4
        assert metrics.resume_failures == 0
        assert metrics.timeouts == 0

        # Zero permanently lost sessions: all eight clients completed
        # and left cleanly at end of run.
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        assert metrics.joins == 8
        assert metrics.leaves == 8

        # Seats were regained, not reassigned: the fleet still covers
        # seats 0..7 exactly, and seat state survived the outage.
        assert sorted(c.seat for c in fleet.clients) == list(range(8))
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[1].resumes == 2
        assert by_seat[4].resumes == 1
        assert by_seat[6].resumes == 1

        # Lockstep pauses planning during an outage, so a slot-top
        # disconnect costs no missed reports at all.
        assert metrics.missed_reports == 0
        assert set(metrics.per_user_quality()) == set(range(8))

    def test_grace_expiry_releases_seat(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=5, seat=1, kind=FAULT_DISCONNECT),
        ))
        serve_config = replace(
            serve_setup1(
                max_users=2, duration_slots=21, seed=0, expect_clients=2,
                lockstep=True,
            ),
            faults=schedule,
            resume_grace_s=0.2,
        )
        # Reconnect disabled: the dropped client never comes back.
        fleet_config = LoadGenConfig(num_clients=2, seed=0, faults=schedule)
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        assert metrics.disconnects == 1
        assert metrics.session_resumes == 0
        assert metrics.resume_failures == 1
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[1].end_reason == "disconnected"
        # The survivor finishes the whole run.
        assert by_seat[0].end_reason == "complete"
        assert result.slots == 20


class TestPacedRecovery:
    def test_reconnect_within_slot_grace(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=8, seat=0, kind=FAULT_DISCONNECT),
        ))
        serve_config = replace(
            serve_setup1(
                max_users=2, duration_slots=81, seed=0, expect_clients=2,
                slot_s=0.02,
            ),
            faults=schedule,
            resume_grace_slots=60,
        )
        fleet_config = LoadGenConfig(
            num_clients=2, seed=0, faults=schedule,
            reconnect=ReconnectPolicy(max_attempts=8, base_s=0.02, max_s=0.1),
        )
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        assert metrics.disconnects == 1
        assert metrics.session_resumes == 1
        assert metrics.resume_failures == 0
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[0].end_reason == "complete"
        assert by_seat[0].resumes == 1


class TestResumeRejection:
    def test_unknown_token_is_rejected_with_resume_code(self):
        async def scenario():
            serve_config = serve_setup1(
                max_users=2, duration_slots=11, seed=0, expect_clients=1,
                lockstep=True,
            )
            server = VrServeServer(serve_config)
            await server.start()
            server_task = asyncio.ensure_future(server.run())
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await send_message(
                    writer,
                    JoinRequest(
                        client="ghost", version=PROTOCOL_VERSION,
                        token="not-a-real-token",
                    ),
                )
                answer = await read_message(reader)
                writer.close()
                await writer.wait_closed()
                return answer
            finally:
                server_task.cancel()
                await asyncio.gather(server_task, return_exceptions=True)

        answer = asyncio.run(scenario())
        assert isinstance(answer, Reject)
        assert answer.code == REJECT_RESUME

    def test_resume_disabled_by_default(self):
        config = serve_setup1(max_users=2, duration_slots=11, seed=0)
        from repro.serve.config import resume_enabled

        assert config.resume_grace_s == 0.0
        assert config.resume_grace_slots == 0
        assert not resume_enabled(config)
        with pytest.raises(Exception):
            replace(config, resume_grace_s=-1.0)


class TestResumeTokenEdgeCases:
    """The three races the issue calls out: token reuse, grace expiry,
    and resume against a draining server."""

    def test_token_single_use_while_attached(self):
        # A token re-attaches a *detached* seat exactly once; while
        # the session is attached the same token matches nothing, so
        # a replayed (or stolen) token cannot hijack a live seat.
        import io

        from repro.serve.sessions import SessionRegistry

        registry = SessionRegistry(capacity=2)
        session = registry.admit(
            "mover", None, guideline_mbps=10.0, joined_slot=0
        )
        session.token = "tok-" + "a" * 12
        registry.detach(session.seat, slot=3)

        writer_b = io.BytesIO()  # stand-in transport identity
        resumed = registry.resume(session.token, writer_b)
        assert resumed is session
        assert not session.detached
        assert session.resumes == 1

        # Second presentation of the same token: no detached seat
        # matches, the resume is refused, and the live binding is
        # untouched.
        assert registry.resume(session.token, io.BytesIO()) is None
        assert session.writer is writer_b
        assert session.resumes == 1
        assert registry.total_resumes == 1

    def test_resume_after_grace_expiry_is_rejected(self):
        # The client's reconnect loses the race against the grace
        # window: the seat is released at expiry, and the late resume
        # gets a resume reject instead of a seat.  Paced mode keeps
        # the server alive long enough for the late attempt to land
        # (a lockstep run would finish before the backoff elapses).
        schedule = FaultSchedule(events=(
            FaultEvent(slot=8, seat=1, kind=FAULT_DISCONNECT),
        ))
        serve_config = replace(
            serve_setup1(
                max_users=2, duration_slots=81, seed=0, expect_clients=2,
                slot_s=0.05,
            ),
            faults=schedule,
            resume_grace_slots=4,
        )
        # Grace expires ~0.2s after the slot-8 disconnect; the first
        # reconnect attempt lands around 1s, deep into the remaining
        # ~3.6s of the run.
        fleet_config = LoadGenConfig(
            num_clients=2, seed=0, faults=schedule,
            reconnect=ReconnectPolicy(
                max_attempts=1, base_s=1.0, max_s=1.0, jitter_s=0.0,
            ),
        )
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        assert metrics.disconnects == 1
        assert metrics.resume_failures == 1
        assert metrics.session_resumes == 0
        assert metrics.rejects.get(REJECT_RESUME, 0) >= 1
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[1].resumes == 0
        assert by_seat[1].end_reason == "resume_failed"
        assert by_seat[0].end_reason == "complete"

    def test_resume_against_draining_server_is_rejected(self):
        # A seat parks, the server starts draining, then the client's
        # resume arrives: it must be refused with the draining code —
        # granting it would park the client waiting for plans that
        # will never be sent.
        async def scenario():
            serve_config = replace(
                serve_setup1(
                    max_users=2, duration_slots=11, seed=0,
                    expect_clients=1, lockstep=True,
                ),
                resume_grace_s=5.0,
            )
            server = VrServeServer(serve_config)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await send_message(
                    writer,
                    JoinRequest(client="drained", version=PROTOCOL_VERSION),
                )
                welcome = await read_message(reader)
                # Abrupt close parks the seat (resume is enabled).
                writer.transport.abort()
                for _ in range(100):
                    if server.registry.detached_sessions():
                        break
                    await asyncio.sleep(0.01)
                assert server.registry.detached_sessions()

                server.admission.start_draining()
                reader2, writer2 = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await send_message(
                    writer2,
                    JoinRequest(
                        client="drained", version=PROTOCOL_VERSION,
                        token=welcome.resume_token,
                    ),
                )
                answer = await read_message(reader2)
                writer2.close()
                await writer2.wait_closed()
                return answer
            finally:
                await server.aclose()

        answer = asyncio.run(scenario())
        assert isinstance(answer, Reject)
        assert answer.code == REJECT_DRAINING
