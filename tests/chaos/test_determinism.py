"""Chaos determinism: same seed + same script => same run, bit for bit.

The acceptance bar for the fault layer: two lockstep loopback runs
under the same seed and fault script must produce identical injector
timelines, identical recovery outcomes, and bit-identical QoE and
telemetry.  Without this property a failing chaos run cannot be
replayed, which would defeat the point of scripted faults.
"""

import asyncio
from dataclasses import replace

from repro.faults import (
    FAULT_CORRUPT_REPORT,
    FAULT_CRASH_CLIENT,
    FAULT_DISCONNECT,
    FAULT_STALL_READ,
    FAULT_STALL_WRITE,
    FAULT_TRUNCATE_FRAME,
    FaultEvent,
    FaultSchedule,
)
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, ReconnectPolicy, run_fleet
from repro.serve.server import VrServeServer

#: Exercises every fault kind at least once against distinct seats.
ALL_KINDS_SCHEDULE = FaultSchedule(events=(
    FaultEvent(slot=4, seat=2, kind=FAULT_DISCONNECT),
    FaultEvent(slot=7, seat=5, kind=FAULT_STALL_READ, duration_s=0.02),
    FaultEvent(slot=9, seat=0, kind=FAULT_TRUNCATE_FRAME),
    FaultEvent(slot=11, seat=3, kind=FAULT_STALL_WRITE, duration_s=0.02),
    FaultEvent(slot=13, seat=4, kind=FAULT_CRASH_CLIENT),
    FaultEvent(slot=17, seat=6, kind=FAULT_CORRUPT_REPORT),
    FaultEvent(slot=21, seat=2, kind=FAULT_DISCONNECT),
))


async def _run_once():
    serve_config = replace(
        serve_setup1(
            max_users=8, duration_slots=31, seed=0, expect_clients=8,
            lockstep=True,
        ),
        faults=ALL_KINDS_SCHEDULE,
        resume_grace_s=5.0,
        report_timeout_s=1.0,
    )
    fleet_config = LoadGenConfig(
        num_clients=8, seed=0, faults=ALL_KINDS_SCHEDULE,
        reconnect=ReconnectPolicy(max_attempts=8),
    )
    server = VrServeServer(serve_config)
    await server.start()
    server_task = asyncio.ensure_future(server.run())
    try:
        fleet = await run_fleet(replace(fleet_config, port=server.port))
        result = await server_task
    finally:
        if not server_task.done():
            server_task.cancel()
            await asyncio.gather(server_task, return_exceptions=True)
    return server, result, fleet


def _fingerprint(server, result, fleet):
    """Everything deterministic about a chaos run, wall-clock excluded."""
    metrics = result.metrics
    return {
        "slots": result.slots,
        "server_timeline": server.injector.timeline(),
        "server_counts": server.injector.counts,
        "quality": metrics.per_user_quality(),
        "missed_reports": metrics.missed_reports,
        "disconnects": metrics.disconnects,
        "session_resumes": metrics.session_resumes,
        "resume_failures": metrics.resume_failures,
        "corrupt_frames": metrics.corrupt_frames,
        "joins": metrics.joins,
        "leaves": metrics.leaves,
        "clients": tuple(
            (c.seat, c.end_reason, c.resumes, c.frames)
            for c in sorted(fleet.clients, key=lambda c: c.seat)
        ),
    }


class TestChaosDeterminism:
    def test_same_seed_same_script_same_run(self):
        first = _fingerprint(*asyncio.run(_run_once()))
        second = _fingerprint(*asyncio.run(_run_once()))
        assert first == second

    def test_every_server_fault_fires(self):
        server, result, fleet = asyncio.run(_run_once())
        fired = server.injector.counts
        assert fired == {
            FAULT_DISCONNECT: 2,
            FAULT_STALL_READ: 1,
            FAULT_TRUNCATE_FRAME: 1,
            FAULT_STALL_WRITE: 1,
        }
        # The timeline is exactly the server-side script in slot order.
        expected = tuple(
            e.key for e in ALL_KINDS_SCHEDULE.server_events.events
        )
        assert server.injector.timeline() == expected

    def test_recovery_outcome_is_scripted(self):
        server, result, fleet = asyncio.run(_run_once())
        metrics = result.metrics
        # disconnect x2 + truncate + crash -> four outages; every one
        # resumed inside the grace window, none expired.
        assert metrics.disconnects == 4
        assert metrics.session_resumes == 4
        assert metrics.resume_failures == 0
        assert metrics.corrupt_frames == 1
        assert result.slots == 30
        # All eight clients finish the run despite the faults.
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        by_seat = {c.seat: c for c in fleet.clients}
        assert by_seat[2].resumes == 2
        assert by_seat[0].resumes == 1
        assert by_seat[4].resumes == 1
