"""Fault hooks on the emulated testbed: inert by default, seeded faults.

``SystemExperiment.run_repeat`` maps the serving layer's fault kinds
onto the emulated network — outages starve a user's downlink and lose
its uplink for the slot.  The contract tested here: ``faults=None``
(and an empty schedule) is bit-identical to not having the hook at
all, and any scripted schedule yields the same episode bit for bit
under the same seed.
"""

from repro.core.allocation import DensityValueGreedyAllocator
from repro.faults import (
    FAULT_CORRUPT_REPORT,
    FAULT_DELAY_REPORT,
    FAULT_DISCONNECT,
    FaultEvent,
    FaultSchedule,
)
from repro.system.experiment import ExperimentConfig, SystemExperiment

CONFIG = ExperimentConfig(num_users=4, duration_slots=40, seed=3)

OUTAGES = FaultSchedule(events=(
    FaultEvent(slot=10, seat=0, kind=FAULT_DISCONNECT),
    FaultEvent(slot=11, seat=0, kind=FAULT_DISCONNECT),
    FaultEvent(slot=20, seat=2, kind=FAULT_DISCONNECT),
    FaultEvent(slot=25, seat=1, kind=FAULT_CORRUPT_REPORT),
    FaultEvent(slot=30, seat=3, kind=FAULT_DELAY_REPORT, duration_s=0.05),
))


def _summaries(result):
    return tuple(
        (u.qoe, u.quality, u.delay, u.variance, u.mean_level, u.fps)
        for u in result.users
    )


class TestInertness:
    def test_none_and_empty_schedule_are_identical(self):
        experiment = SystemExperiment(CONFIG)
        plain = experiment.run_repeat(DensityValueGreedyAllocator(), 0)
        with_none = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=None
        )
        with_empty = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=FaultSchedule()
        )
        assert _summaries(plain) == _summaries(with_none)
        assert _summaries(plain) == _summaries(with_empty)

    def test_out_of_range_events_are_inert(self):
        # Faults aimed past the horizon or at non-existent seats must
        # not disturb the run (the serving layer owns seat validity).
        experiment = SystemExperiment(CONFIG)
        plain = experiment.run_repeat(DensityValueGreedyAllocator(), 0)
        harmless = FaultSchedule(events=(
            FaultEvent(slot=10_000, seat=0, kind=FAULT_DISCONNECT),
            FaultEvent(slot=10, seat=99, kind=FAULT_DISCONNECT),
        ))
        faulted = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=harmless
        )
        assert _summaries(plain) == _summaries(faulted)


class TestSeededFaults:
    def test_same_schedule_same_episode(self):
        experiment = SystemExperiment(CONFIG)
        first = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=OUTAGES
        )
        second = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=OUTAGES
        )
        assert _summaries(first) == _summaries(second)

    def test_outages_hurt_only_the_faulted_run(self):
        experiment = SystemExperiment(CONFIG)
        plain = experiment.run_repeat(DensityValueGreedyAllocator(), 0)
        faulted = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=OUTAGES
        )
        assert _summaries(plain) != _summaries(faulted)
        # An outage can only remove delivered tiles, never add them:
        # the faulted run's viewed quality must not beat the clean one
        # for the seat that lost two consecutive slots.
        assert faulted.users[0].quality <= plain.users[0].quality

    def test_random_schedule_reproducible_end_to_end(self):
        rates = {FAULT_DISCONNECT: 0.01, FAULT_CORRUPT_REPORT: 0.01}
        schedule = FaultSchedule.random(
            seed=7, num_slots=CONFIG.duration_slots, num_seats=4, rates=rates
        )
        experiment = SystemExperiment(CONFIG)
        first = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, faults=schedule
        )
        second = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0,
            faults=FaultSchedule.random(
                seed=7, num_slots=CONFIG.duration_slots, num_seats=4,
                rates=rates,
            ),
        )
        assert _summaries(first) == _summaries(second)
