"""Corrupt-frame quarantine: bad bytes are counted, never fatal.

A corrupted report must cost at most that one report — the server
quarantines the frame (drop + count) and the session, the slot loop,
and every other seat keep going.  The byte-level helpers are pinned
down here too, since the whole tier depends on corruption preserving
framing and truncation breaking it.
"""

import asyncio
import struct
from dataclasses import replace

import pytest

from repro.errors import FrameCorruptError, TransportError
from repro.faults import (
    FAULT_CORRUPT_REPORT,
    FaultEvent,
    FaultSchedule,
    corrupt_frame_bytes,
    truncate_frame_bytes,
)
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet
from repro.serve.protocol import (
    Bye,
    SlotReport,
    decode_payload,
    encode_message,
    read_message,
)
from repro.serve.protocol2 import BinaryChannelCodec


class TestFrameHelpers:
    def test_corruption_preserves_framing(self):
        frame = encode_message(Bye(reason="fine"))
        bad = corrupt_frame_bytes(frame)
        assert len(bad) == len(frame)
        assert bad[:4] == frame[:4]
        assert bad != frame

    def test_corrupt_body_raises_frame_corrupt(self):
        frame = encode_message(Bye(reason="fine"))
        bad = corrupt_frame_bytes(frame)
        with pytest.raises(FrameCorruptError):
            decode_payload(bad[4:])

    def test_corrupt_frame_is_recoverable_on_stream(self):
        """Framing survives corruption: the next frame still parses."""

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(corrupt_frame_bytes(encode_message(Bye(reason="a"))))
            reader.feed_data(encode_message(Bye(reason="b")))
            reader.feed_eof()
            with pytest.raises(FrameCorruptError):
                await read_message(reader)
            return await read_message(reader)

        assert asyncio.run(scenario()) == Bye(reason="b")

    def test_binary_corruption_is_quarantined_not_misread(self):
        """Codec-2 frames carry no checksum, so the injector must
        produce damage the decoder detects by construction — a single
        flipped bit could decode as a valid, merely wrong, value."""
        sender = BinaryChannelCodec()
        receiver = BinaryChannelCodec()
        report = SlotReport(
            slot=3,
            delivered_ids=(101, 102),
            released_ids=(90,),
            indicator=1,
            delay_slots=0.5,
            viewed_quality=4.0,
            pose=(1.0, 2.0, 3.0, 0.1, 0.2, 0.3),
        )
        frame = sender.encode(report)
        bad = corrupt_frame_bytes(frame)
        assert len(bad) == len(frame)
        assert bad[:8] == frame[:8]
        units = receiver.decode(bad[2], bad[3], bad[8:])
        assert [unit.message for unit in units] == [None]

    def test_truncation_breaks_framing(self):
        frame = encode_message(Bye(reason="fine"))
        short = truncate_frame_bytes(frame)
        assert len(short) < len(frame)
        (declared,) = struct.Struct("!I").unpack(short[:4])
        assert declared > len(short) - 4

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(short)
            reader.feed_eof()
            await read_message(reader)

        with pytest.raises(TransportError):
            asyncio.run(scenario())


class TestQuarantineEndToEnd:
    def _run(self):
        schedule = FaultSchedule(events=(
            FaultEvent(slot=7, seat=1, kind=FAULT_CORRUPT_REPORT),
        ))
        serve_config = replace(
            serve_setup1(
                max_users=4, duration_slots=21, seed=0, expect_clients=4,
                lockstep=True,
            ),
            faults=schedule,
            report_timeout_s=0.3,
        )
        fleet_config = LoadGenConfig(num_clients=4, seed=0, faults=schedule)
        return asyncio.run(run_serve_and_fleet(serve_config, fleet_config))

    def test_corrupt_report_is_quarantined_not_fatal(self):
        result, fleet = self._run()
        metrics = result.metrics

        # The bad frame was counted and dropped, nothing else.
        assert metrics.corrupt_frames == 1
        assert metrics.disconnects == 0
        assert metrics.session_resumes == 0
        assert metrics.resume_failures == 0

        # The session survived to the end of the run.
        assert {c.end_reason for c in fleet.clients} == {"complete"}
        assert metrics.joins == 4
        assert metrics.leaves == 4
        assert result.slots == 20

    def test_quarantine_costs_exactly_one_report(self):
        result, _ = self._run()
        metrics = result.metrics
        # The lost report surfaces as exactly one missed report (the
        # barrier timed out waiting for it) — the slot loop kept going.
        assert metrics.missed_reports == 1
        assert metrics.slots == 20
        summary = metrics.summary()
        assert summary["corrupt_frames"] == 1
        assert summary["missed_reports"] == 1
