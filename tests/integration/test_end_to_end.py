"""Cross-module integration tests.

These tie the layers together: the simulator's ledgers must agree with
the analytic QoE formula, the per-slot decisions must respect the
theorem guarantee inside a live simulation, and the public API surface
must stay importable.
"""

import numpy as np
import pytest

import repro
from repro.core import (
    DensityValueGreedyAllocator,
    OfflineOptimalAllocator,
    QoEWeights,
)
from repro.core.qoe import UserQoELedger
from repro.simulation import SimulationConfig, TraceSimulator


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestLedgerConsistency:
    def test_simulator_qoe_matches_manual_recomputation(self):
        """Replay the ledger by hand and re-derive QoE_n(T)."""
        config = SimulationConfig(num_users=2, duration_slots=120, seed=4)
        simulator = TraceSimulator(config)

        # Run once, capturing the scheduler's ledgers via the episode
        # result; then rebuild the QoE from the raw ledger series.
        allocator = DensityValueGreedyAllocator()
        schedule_result = simulator.run_episode(allocator)
        weights = config.weights

        for user in schedule_result.users:
            # qoe_per_slot = quality - alpha*delay - beta*variance
            reconstructed = (
                user.quality
                - weights.alpha * user.delay
                - weights.beta * user.variance
            )
            assert user.qoe == pytest.approx(reconstructed, rel=1e-9, abs=1e-9)

    def test_ledger_identity_on_synthetic_series(self):
        weights = QoEWeights(0.07, 0.3)
        ledger = UserQoELedger()
        rng = np.random.default_rng(2)
        viewed = []
        delays = []
        for _ in range(500):
            level = int(rng.integers(0, 7))
            indicator = int(rng.uniform() < 0.9) if level > 0 else 0
            delay = float(rng.uniform(0.0, 2.0)) if level > 0 else 0.0
            ledger.record(level, indicator, delay)
            viewed.append(level * indicator)
            delays.append(delay)
        expected = (
            sum(viewed)
            - weights.alpha * sum(delays)
            - weights.beta * len(viewed) * float(np.var(viewed))
        )
        assert ledger.qoe(weights) == pytest.approx(expected)


class TestTheoremInsideSimulation:
    def test_per_slot_guarantee_holds_in_live_run(self):
        """Sample live slot problems; greedy >= 1/2 optimal on each."""
        config = SimulationConfig(num_users=4, duration_slots=60, seed=9)
        simulator = TraceSimulator(config)

        captured = []

        class CapturingAllocator(DensityValueGreedyAllocator):
            def allocate(self, problem):
                levels = super().allocate(problem)
                captured.append((problem, list(levels)))
                return levels

        simulator.run_episode(CapturingAllocator())
        oracle = OfflineOptimalAllocator()
        assert captured
        for problem, levels in captured[::7]:
            optimal_levels = oracle.allocate(problem)
            v_greedy = problem.objective_value(levels)
            v_opt = problem.objective_value(optimal_levels)
            base = problem.objective_value([1] * problem.num_users)
            assert v_greedy - base >= 0.5 * (v_opt - base) - 1e-7


class TestCrossAllocatorFairness:
    def test_all_allocators_see_identical_world(self):
        """Same seed => same traces => paired comparisons are fair."""
        config = SimulationConfig(num_users=2, duration_slots=80, seed=3)
        sim_a = TraceSimulator(config)
        sim_b = TraceSimulator(config)
        schedule_a = sim_a.dataset.episode(2, 80, 0)
        schedule_b = sim_b.dataset.episode(2, 80, 0)
        assert np.allclose(schedule_a.bandwidth_mbps, schedule_b.bandwidth_mbps)
        assert schedule_a.poses[0][40] == schedule_b.poses[0][40]
