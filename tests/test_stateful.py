"""Stateful property tests (hypothesis rule-based state machines).

These hammer the long-lived mutable components — the client tile
cache and the online scheduler — with arbitrary operation sequences
and check their invariants after every step.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.content.database import ClientTileCache
from repro.core.allocation import DensityValueGreedyAllocator
from repro.core.qoe import QoEWeights
from repro.core.scheduler import CollaborativeVrScheduler


class TileCacheMachine(RuleBasedStateMachine):
    """LRU cache invariants under arbitrary insert/release sequences."""

    def __init__(self):
        super().__init__()
        self.capacity = 8
        self.cache = ClientTileCache(self.capacity)
        self.model = []  # insertion-recency order, oldest first

    @rule(video_id=st.integers(0, 30))
    def insert(self, video_id):
        released = self.cache.insert(video_id)
        if video_id in self.model:
            self.model.remove(video_id)
            assert released == []
        self.model.append(video_id)
        expected_released = []
        while len(self.model) > self.capacity:
            expected_released.append(self.model.pop(0))
        assert released == expected_released

    @rule()
    def release_all(self):
        released = self.cache.release_all()
        assert sorted(released) == sorted(self.model)
        self.model = []

    @invariant()
    def size_bounded(self):
        assert len(self.cache) <= self.capacity

    @invariant()
    def contents_match_model(self):
        assert len(self.cache) == len(self.model)
        for vid in self.model:
            assert vid in self.cache


TestTileCacheMachine = TileCacheMachine.TestCase
TestTileCacheMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)


class SchedulerMachine(RuleBasedStateMachine):
    """Scheduler/ledger consistency under arbitrary slot outcomes."""

    NUM_USERS = 3
    SIZES = (8.0, 14.0, 24.0, 40.0)

    def __init__(self):
        super().__init__()
        self.scheduler = CollaborativeVrScheduler(
            self.NUM_USERS,
            DensityValueGreedyAllocator(),
            QoEWeights(0.05, 0.5),
            allow_skip=True,
        )
        self.viewed = [[] for _ in range(self.NUM_USERS)]
        self.rng = np.random.default_rng(0)

    @rule(
        levels=st.lists(
            st.integers(0, 4), min_size=NUM_USERS, max_size=NUM_USERS
        ),
        indicator_bits=st.lists(
            st.booleans(), min_size=NUM_USERS, max_size=NUM_USERS
        ),
    )
    def record_slot(self, levels, indicator_bits):
        indicators = [
            int(bit) if level > 0 else 0
            for bit, level in zip(indicator_bits, levels)
        ]
        delays = [0.3 if level > 0 else 0.0 for level in levels]
        self.scheduler.record_outcomes(levels, indicators, delays)
        for n in range(self.NUM_USERS):
            self.viewed[n].append(levels[n] * indicators[n])

    @rule()
    def allocate_a_slot(self):
        """Allocation must always be feasible for the current state."""
        from repro.simulation.delaymodel import MM1DelayModel

        model = MM1DelayModel()
        problem = self.scheduler.build_slot_problem(
            [self.SIZES] * self.NUM_USERS,
            [model.delay_fn(60.0)] * self.NUM_USERS,
            [60.0] * self.NUM_USERS,
            120.0,
        )
        levels = self.scheduler.allocate(problem)
        assert problem.is_feasible(levels)

    @invariant()
    def qbar_matches_viewed_mean(self):
        for n in range(self.NUM_USERS):
            if self.viewed[n]:
                expected = float(np.mean(self.viewed[n]))
                assert abs(self.scheduler.qbar(n) - expected) < 1e-9
            else:
                assert self.scheduler.qbar(n) == 0.0

    @invariant()
    def delta_in_unit_interval(self):
        for n in range(self.NUM_USERS):
            assert 0.0 <= self.scheduler.delta(n) <= 1.0

    @invariant()
    def ledger_horizon_consistent(self):
        for n in range(self.NUM_USERS):
            assert self.scheduler.ledgers[n].horizon == len(self.viewed[n])

    @invariant()
    def qoe_matches_manual_formula(self):
        weights = self.scheduler.weights
        for n in range(self.NUM_USERS):
            if not self.viewed[n]:
                continue
            series = np.array(self.viewed[n], dtype=float)
            delays = self.scheduler.ledgers[n].delays
            expected = (
                series.sum()
                - weights.alpha * sum(delays)
                - weights.beta * len(series) * series.var()
            )
            assert abs(self.scheduler.ledgers[n].qoe(weights) - expected) < 1e-7


TestSchedulerMachine = SchedulerMachine.TestCase
TestSchedulerMachine.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
