"""Deferred observability I/O: no file writes on a live event loop.

The slot loop runs tracer emits and flight triggers inline at 60 Hz,
so their file I/O must queue while a loop is running and land on disk
only via ``aflush``/``aclose`` (which push the writes onto a worker
thread).  Sync contexts — the simulator, offline analysis, the rest of
this test directory — keep the old write-through behavior.
"""

import asyncio
import json

from repro.obs.config import Obs, ObsConfig
from repro.obs.flight import TRIGGER_DEADLINE_MISS, FlightRecorder
from repro.obs.spans import Span
from repro.obs.tracer import Tracer


def _span(slot: int) -> Span:
    return Span(name="slot", start_s=0.0, duration_s=0.01, attrs={"slot": slot})


class TestTracerDeferred:
    def test_emit_in_loop_defers_until_aflush(self, tmp_path):
        path = tmp_path / "trace.jsonl"

        async def scenario() -> None:
            tracer = Tracer(path=path, sample_every=1)
            assert tracer.emit(_span(0)) is True
            # Queued, not written: the loop thread never touched disk.
            assert not path.exists()
            await tracer.aflush()
            assert path.exists()
            tracer.close()

        asyncio.run(scenario())
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2  # header + one span

    def test_close_flushes_queued_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"

        async def scenario() -> Tracer:
            tracer = Tracer(path=path, sample_every=1)
            tracer.emit(_span(0))
            return tracer

        tracer = asyncio.run(scenario())
        # Loop is gone; close() drains the queue synchronously.
        tracer.close()
        assert path.exists()

    def test_sync_emit_still_writes_through(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path, sample_every=1)
        tracer.emit(_span(0))
        assert path.exists()
        tracer.close()


class TestFlightDeferred:
    def test_trigger_in_loop_defers_dump_file(self, tmp_path):
        out_dir = tmp_path / "dumps"

        async def scenario() -> None:
            flight = FlightRecorder(capacity=4, out_dir=out_dir)
            flight.record(_span(1))
            dump = flight.trigger(TRIGGER_DEADLINE_MISS, detail="t", slot=1)
            assert dump is not None
            # The path is reserved immediately but written later.
            assert dump.path is not None
            assert not dump.path.exists()
            await flight.aflush()
            assert dump.path.exists()

        asyncio.run(scenario())

    def test_deferred_dump_content_matches_sync_dump(self, tmp_path):
        async def async_arm() -> str:
            flight = FlightRecorder(capacity=4, out_dir=tmp_path / "a")
            flight.record(_span(7))
            dump = flight.trigger(TRIGGER_DEADLINE_MISS, detail="x", slot=7)
            await flight.aflush()
            assert dump is not None and dump.path is not None
            return dump.path.read_text(encoding="utf-8")

        deferred = asyncio.run(async_arm())
        flight = FlightRecorder(capacity=4, out_dir=tmp_path / "b")
        flight.record(_span(7))
        sync_dump = flight.trigger(TRIGGER_DEADLINE_MISS, detail="x", slot=7)
        assert sync_dump is not None and sync_dump.path is not None
        inline = sync_dump.path.read_text(encoding="utf-8")
        assert deferred == inline
        header = json.loads(inline.splitlines()[0])
        assert header["trigger"] == TRIGGER_DEADLINE_MISS

    def test_sync_trigger_still_writes_through(self, tmp_path):
        flight = FlightRecorder(capacity=4, out_dir=tmp_path)
        flight.record(_span(3))
        dump = flight.trigger(TRIGGER_DEADLINE_MISS, detail="t", slot=3)
        assert dump is not None and dump.path is not None
        assert dump.path.exists()


class TestObsBundle:
    def test_aclose_flushes_everything(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        dumps = tmp_path / "dumps"
        config = ObsConfig(
            enabled=True,
            trace_path=str(trace),
            sample_every=1,
            flight_dir=str(dumps),
        )

        async def scenario() -> None:
            obs = Obs.from_config(config)
            span = _span(0)
            obs.flight.record(span)
            obs.tracer.emit(span)
            obs.flight.trigger(TRIGGER_DEADLINE_MISS, detail="d", slot=0)
            assert not trace.exists()
            await obs.aclose()
            assert trace.exists()
            assert list(dumps.glob("flight_*.jsonl"))

        asyncio.run(scenario())

    def test_disabled_bundle_aflush_is_inert(self):
        async def scenario() -> None:
            obs = Obs.disabled()
            await obs.aflush()
            await obs.aclose()

        asyncio.run(scenario())
