"""The asyncio observability endpoint: routes, content, lifecycle."""

import asyncio
import json

import pytest

from repro.errors import TransportError
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, ObsHttpServer
from repro.obs.promtext import validate_exposition
from repro.obs.registry import MetricsRegistry


async def _get(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return status, headers, body.decode("utf-8")


def _registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "A demo counter").inc(2)
    registry.histogram("demo_seconds", "Latency").observe(0.003)
    return registry


async def _with_server(registry, fn, health_fn=None):
    server = ObsHttpServer(registry, health_fn=health_fn)
    await server.start()
    try:
        return await fn(server.port)
    finally:
        await server.stop()


class TestRoutes:
    def test_metrics_serves_valid_exposition(self):
        async def scenario(port):
            return await _get(port, "/metrics")

        status, headers, body = asyncio.run(
            _with_server(_registry(), scenario)
        )
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        summary = validate_exposition(body)
        assert "demo_total" in summary.families
        assert "demo_seconds" in summary.families

    def test_healthz_merges_caller_payload(self):
        async def scenario(port):
            return await _get(port, "/healthz")

        status, _, body = asyncio.run(
            _with_server(
                _registry(), scenario, health_fn=lambda: {"slots_run": 12}
            )
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["slots_run"] == 12

    def test_snapshot_serves_registry_json(self):
        async def scenario(port):
            return await _get(port, "/snapshot")

        status, _, body = asyncio.run(_with_server(_registry(), scenario))
        assert status == 200
        snapshot = json.loads(body)
        assert {f["name"] for f in snapshot["families"]} >= {
            "demo_total", "demo_seconds",
        }

    def test_unknown_path_is_404(self):
        async def scenario(port):
            return await _get(port, "/nope")

        status, _, _ = asyncio.run(_with_server(_registry(), scenario))
        assert status == 404

    def test_non_get_is_405(self):
        async def scenario(port):
            return await _get(port, "/metrics", method="POST")

        status, _, _ = asyncio.run(_with_server(_registry(), scenario))
        assert status == 405


class TestLifecycle:
    def test_port_raises_before_start(self):
        server = ObsHttpServer(MetricsRegistry())
        with pytest.raises(TransportError):
            server.port

    def test_requests_are_counted_per_path_and_status(self):
        registry = _registry()

        async def scenario(port):
            await _get(port, "/metrics")
            await _get(port, "/nope")

        asyncio.run(_with_server(registry, scenario))
        family = registry.counter_family(
            "repro_obs_http_requests_total", "", ("path", "status")
        )
        assert family.counter_child(path="/metrics", status="200").count == 1
        assert family.counter_child(path="/nope", status="404").count == 1

    def test_start_and_stop_are_idempotent(self):
        async def scenario():
            server = ObsHttpServer(MetricsRegistry())
            await server.start()
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(scenario())
