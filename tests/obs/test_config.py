"""ObsConfig validation and the Obs runtime bundle."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Obs, ObsConfig
from repro.obs.flight import FlightRecorder, NullFlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NullTracer, Tracer


class TestObsConfig:
    def test_defaults_are_valid(self):
        config = ObsConfig()
        assert config.enabled is True
        assert config.http_port is None
        assert config.trace_path is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_every": 0},
            {"flight_capacity": 0},
            {"flight_max_dumps": 0},
            {"http_port": -1},
            {"http_port": 70_000},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ObsConfig(**kwargs)


class TestObsBundle:
    def test_from_config_enabled_builds_real_pieces(self, tmp_path):
        obs = Obs.from_config(
            ObsConfig(
                enabled=True,
                trace_path=str(tmp_path / "t.jsonl"),
                sample_every=2,
                flight_capacity=10,
                flight_max_dumps=3,
            )
        )
        assert obs.active is True
        assert isinstance(obs.tracer, Tracer)
        assert obs.tracer.sample_every == 2
        assert isinstance(obs.flight, FlightRecorder)
        assert obs.flight.capacity == 10
        assert obs.flight.max_dumps == 3
        obs.close()

    def test_from_config_disabled_uses_null_pieces(self):
        obs = Obs.from_config(ObsConfig(enabled=False))
        assert obs.active is False
        assert isinstance(obs.tracer, NullTracer)
        assert isinstance(obs.flight, NullFlightRecorder)
        # The registry still works — metrics are never gated.
        obs.registry.counter("still_works_total", "h").inc()
        obs.close()

    def test_shared_registry_is_reused(self):
        registry = MetricsRegistry()
        obs = Obs.from_config(ObsConfig(), registry=registry)
        assert obs.registry is registry
        assert Obs.disabled(registry).registry is registry

    def test_disabled_classmethod(self):
        obs = Obs.disabled()
        assert obs.active is False
        obs.close()
