"""Metrics registry: instruments, rendering, and exposition validity."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.promtext import validate_exposition
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    BucketHistogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c_total", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(ObservabilityError):
            counter.inc(-1.0)

    def test_count_is_the_integer_view(self):
        counter = MetricsRegistry().counter("c_total", "help")
        for _ in range(5):
            counter.inc()
        assert counter.count == 5


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0


class TestBucketHistogram:
    def test_memory_is_bounded_by_buckets_not_samples(self):
        hist = BucketHistogram((0.001, 0.01, 0.1))
        for i in range(10_000):
            hist.observe((i % 100) / 1000.0)
        # Internal storage is the fixed bucket vector, never samples.
        assert len(hist._counts) == 4
        assert hist.count == 10_000
        assert len(hist) == 10_000

    def test_exact_count_sum_min_max_mean(self):
        hist = BucketHistogram((0.5, 1.0, 2.0))
        for value in (0.1, 0.6, 1.5, 1.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(3.7)
        assert hist.min() == pytest.approx(0.1)
        assert hist.max() == pytest.approx(1.5)
        assert hist.mean() == pytest.approx(3.7 / 4)

    def test_le_semantics_boundary_value_lands_in_its_bucket(self):
        hist = BucketHistogram((1.0, 2.0))
        hist.observe(1.0)
        # Cumulative count at le=1.0 must include the boundary sample.
        assert hist.cumulative_counts()[0] == 1

    def test_quantiles_clamped_to_observed_range(self):
        hist = BucketHistogram(DEFAULT_LATENCY_BUCKETS_S)
        for _ in range(100):
            hist.observe(0.004)
        assert hist.quantile(0.0) >= 0.004 - 1e-12
        assert hist.quantile(1.0) <= 0.004 + 1e-12
        assert hist.quantile(0.5) == pytest.approx(0.004, abs=1e-9)

    def test_quantile_interpolates_within_bucket(self):
        hist = BucketHistogram((1.0, 2.0, 4.0))
        for value in (1.1, 1.5, 1.9, 3.0):
            hist.observe(value)
        p50 = hist.quantile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_empty_histogram_answers_zero(self):
        hist = BucketHistogram((1.0,))
        assert hist.quantile(0.99) == 0.0
        assert hist.mean() == 0.0
        assert hist.min() == 0.0
        assert hist.max() == 0.0
        assert hist.fraction_below(0.5) == 1.0

    def test_fraction_below(self):
        hist = BucketHistogram((1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            hist.observe(value)
        assert hist.fraction_below(0.4) == 0.0
        assert hist.fraction_below(10.0) == 1.0
        mid = hist.fraction_below(1.0)
        assert 0.0 < mid <= 1.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            BucketHistogram(())
        with pytest.raises(ObservabilityError):
            BucketHistogram((2.0, 1.0))
        with pytest.raises(ObservabilityError):
            BucketHistogram((1.0, 1.0))
        with pytest.raises(ObservabilityError):
            BucketHistogram((0.0, 1.0))
        with pytest.raises(ObservabilityError):
            BucketHistogram((1.0, math.inf))

    def test_negative_observation_rejected(self):
        hist = BucketHistogram((1.0,))
        with pytest.raises(ObservabilityError):
            hist.observe(-0.1)


class TestFamilies:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "help")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ObservabilityError):
            registry.gauge("x_total", "help")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter_family("y_total", "help", ("code",))
        with pytest.raises(ObservabilityError):
            registry.counter_family("y_total", "help", ("other",))

    def test_labelled_children_are_distinct_and_cached(self):
        family = MetricsRegistry().counter_family("r_total", "h", ("code",))
        a = family.counter_child(code="a")
        b = family.counter_child(code="b")
        assert a is not b
        assert family.counter_child(code="a") is a

    def test_wrong_label_names_rejected(self):
        family = MetricsRegistry().counter_family("r_total", "h", ("code",))
        with pytest.raises(ObservabilityError):
            family.labels(other="x")

    def test_typed_child_accessors_enforce_kind(self):
        registry = MetricsRegistry()
        counters = registry.counter_family("c_total", "h", ("k",))
        with pytest.raises(ObservabilityError):
            counters.gauge_child(k="x")
        with pytest.raises(ObservabilityError):
            counters.histogram_child(k="x")

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name", "h")
        with pytest.raises(ObservabilityError):
            registry.counter_family("ok_total", "h", ("__reserved",))
        with pytest.raises(ObservabilityError):
            registry.counter_family("ok_total", "h", ("a", "a"))


class TestRendering:
    def _populated_registry(self):
        registry = MetricsRegistry()
        registry.counter("demo_slots_total", "Slots run").inc(3)
        registry.gauge("demo_sessions", "Active sessions").set(2)
        family = registry.counter_family(
            "demo_rejects_total", "Rejections", ("code",)
        )
        family.counter_child(code="capacity").inc()
        hist = registry.histogram(
            "demo_latency_seconds", "Latency", buckets_s=(0.001, 0.01)
        )
        hist.observe(0.0005)
        hist.observe(0.005)
        hist.observe(0.5)
        return registry

    def test_prometheus_exposition_validates(self):
        text = self._populated_registry().render_prometheus()
        summary = validate_exposition(text)
        assert {f for f in summary.families} >= {
            "demo_slots_total",
            "demo_sessions",
            "demo_rejects_total",
            "demo_latency_seconds",
        }
        assert summary.samples > 0

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = self._populated_registry().render_prometheus()
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("demo_latency_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in bucket_lines[-1]
        assert counts[-1] == 3
        assert "demo_latency_seconds_sum" in text
        assert "demo_latency_seconds_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter_family("esc_total", "h", ("detail",))
        family.counter_child(detail='say "hi"\nback\\slash').inc()
        text = registry.render_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text
        validate_exposition(text)

    def test_empty_registry_renders_empty_page(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_json_snapshot_is_strict_json(self):
        registry = self._populated_registry()
        snapshot = json.loads(registry.render_json())
        names = {f["name"] for f in snapshot["families"]}
        assert "demo_latency_seconds" in names
        hist = next(
            f for f in snapshot["families"]
            if f["name"] == "demo_latency_seconds"
        )
        buckets = hist["metrics"][0]["buckets"]
        # The +Inf edge is serialized as a string, keeping strict JSON.
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 3
