"""Tracer sampling, span builders, and the flight recorder."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.flight import (
    TRIGGER_ADMISSION_REJECT,
    TRIGGER_DEADLINE_MISS,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import read_span_stream
from repro.obs.tracer import NullTracer, Tracer, stage_latency_table


def _finished_span(tracer, slot):
    builder = tracer.slot(slot, slot * 0.016)
    builder.stage("allocate", slot * 0.016, slot * 0.016 + 0.004)
    builder.user(0, level=3)
    return builder.finish(slot * 0.016 + 0.015, deadline_hit=True)


class TestSlotSpanBuilder:
    def test_builds_slot_stage_user_tree(self):
        tracer = NullTracer()
        span = _finished_span(tracer, 5)
        assert span.name == "slot"
        assert span.attrs["slot"] == 5
        assert span.attrs["deadline_hit"] is True
        allocate = span.find("allocate")[0]
        users = allocate.find("user")
        assert [u.attrs["seat"] for u in users] == [0]
        assert span.duration_s == pytest.approx(0.015)

    def test_negative_durations_clamped(self):
        builder = NullTracer().slot(0, 10.0)
        stage = builder.stage("predict", 10.0, 9.0)
        assert stage.duration_s == 0.0
        span = builder.finish(9.0)
        assert span.duration_s == 0.0

    def test_user_without_allocate_stage_attaches_to_root(self):
        builder = NullTracer().slot(0, 0.0)
        builder.user(2, level=1)
        span = builder.finish(0.016)
        assert span.find("user")[0].attrs["seat"] == 2


class TestTracerSampling:
    def test_sample_every_writes_one_in_n(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path, sample_every=4, registry=registry)
        written = sum(
            tracer.emit(_finished_span(tracer, slot)) for slot in range(10)
        )
        tracer.close()
        assert written == 3  # slots 0, 4, 8
        with open(path, "r", encoding="utf-8") as handle:
            _, spans = read_span_stream(handle)
        assert [s.attrs["slot"] for s in spans] == [0, 4, 8]
        assert registry.counter(
            "repro_obs_spans_written_total", ""
        ).count == 3
        assert registry.counter(
            "repro_obs_spans_sampled_out_total", ""
        ).count == 7

    def test_no_path_means_no_file_and_no_writes(self, tmp_path):
        tracer = Tracer(path=None, sample_every=1)
        assert tracer.emit(_finished_span(tracer, 0)) is False
        tracer.close()
        assert list(tmp_path.iterdir()) == []

    def test_file_only_created_on_first_write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path, sample_every=1)
        assert not path.exists()
        tracer.emit(_finished_span(tracer, 0))
        tracer.close()
        assert path.exists()

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer(sample_every=0)

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(path=tmp_path / "t.jsonl", sample_every=1)
        tracer.emit(_finished_span(tracer, 0))
        tracer.close()
        tracer.close()

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.emit(_finished_span(tracer, 0)) is False
        tracer.close()


class TestFlightRecorder:
    def test_ring_keeps_only_the_last_capacity_spans(self):
        recorder = FlightRecorder(capacity=3)
        tracer = NullTracer()
        for slot in range(10):
            recorder.record(_finished_span(tracer, slot))
        assert len(recorder) == 3
        dump = recorder.trigger(TRIGGER_DEADLINE_MISS, slot=9)
        assert dump is not None
        assert dump.slot_numbers() == [7, 8, 9]

    def test_trigger_snapshots_ring_and_counts(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=8, registry=registry)
        recorder.record(_finished_span(NullTracer(), 0))
        dump = recorder.trigger(
            TRIGGER_ADMISSION_REJECT, detail="capacity: full", slot=4
        )
        assert dump.trigger == TRIGGER_ADMISSION_REJECT
        assert dump.detail == "capacity: full"
        assert dump.slot == 4
        assert len(dump.spans) == 1
        family = registry.counter_family(
            "repro_obs_flight_triggers_total", "", ("trigger",)
        )
        child = family.counter_child(trigger=TRIGGER_ADMISSION_REJECT)
        assert child.count == 1

    def test_dump_cap_suppresses_but_keeps_counting(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=2, max_dumps=2, registry=registry)
        recorder.record(_finished_span(NullTracer(), 0))
        assert recorder.trigger(TRIGGER_DEADLINE_MISS) is not None
        assert recorder.trigger(TRIGGER_DEADLINE_MISS) is not None
        assert recorder.trigger(TRIGGER_DEADLINE_MISS) is None
        assert recorder.suppressed == 1
        assert len(recorder.dumps) == 2
        family = registry.counter_family(
            "repro_obs_flight_triggers_total", "", ("trigger",)
        )
        assert family.counter_child(
            trigger=TRIGGER_DEADLINE_MISS
        ).count == 3

    def test_dump_written_to_disk_and_readable(self, tmp_path):
        recorder = FlightRecorder(capacity=4, out_dir=tmp_path)
        tracer = NullTracer()
        for slot in range(4):
            recorder.record(_finished_span(tracer, slot))
        dump = recorder.trigger(TRIGGER_DEADLINE_MISS, detail="late", slot=3)
        assert dump.path is not None and dump.path.exists()
        with open(dump.path, "r", encoding="utf-8") as handle:
            header, spans = read_span_stream(handle)
        assert header["kind"] == "repro.obs.flight"
        assert header["trigger"] == TRIGGER_DEADLINE_MISS
        assert header["detail"] == "late"
        assert header["slot"] == 3
        assert [s.attrs["slot"] for s in spans] == [0, 1, 2, 3]

    def test_last_dump_for_filters_by_trigger(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(_finished_span(NullTracer(), 0))
        recorder.trigger(TRIGGER_DEADLINE_MISS, slot=1)
        recorder.trigger(TRIGGER_ADMISSION_REJECT, slot=2)
        assert recorder.last_dump_for(TRIGGER_DEADLINE_MISS).slot == 1
        assert recorder.last_dump_for(TRIGGER_ADMISSION_REJECT).slot == 2
        assert recorder.last_dump_for("nonexistent") is None

    def test_summary_shape(self, tmp_path):
        recorder = FlightRecorder(capacity=2, out_dir=tmp_path)
        recorder.record(_finished_span(NullTracer(), 0))
        recorder.trigger(TRIGGER_DEADLINE_MISS, slot=0)
        summary = recorder.summary()
        assert summary["ring_slots"] == 1
        assert summary["capacity"] == 2
        assert summary["suppressed"] == 0
        assert len(summary["dumps"]) == 1
        assert summary["dumps"][0]["trigger"] == TRIGGER_DEADLINE_MISS

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ObservabilityError):
            FlightRecorder(capacity=0)
        with pytest.raises(ObservabilityError):
            FlightRecorder(max_dumps=0)

    def test_null_recorder_is_inert(self):
        recorder = NullFlightRecorder()
        recorder.record(_finished_span(NullTracer(), 0))
        assert len(recorder) == 0
        assert recorder.trigger(TRIGGER_DEADLINE_MISS) is None
        assert recorder.last_dump_for(TRIGGER_DEADLINE_MISS) is None
        assert recorder.summary()["dumps"] == []


class TestStageLatencyTable:
    def test_collects_per_stage_samples_excluding_users(self):
        tracer = NullTracer()
        spans = [_finished_span(tracer, slot) for slot in range(3)]
        table = stage_latency_table(spans)
        assert len(table["slot"]) == 3
        assert len(table["allocate"]) == 3
        assert "user" not in table
