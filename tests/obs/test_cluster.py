"""Federated registry merging: the cluster-level ``/metrics`` view.

Satellite coverage for :func:`repro.obs.cluster.merge_registries`:
every merged exposition must pass
:func:`repro.obs.promtext.validate_exposition` — duplicate families
across shards, label collisions with a pre-existing ``shard`` label,
and per-shard histograms with *different* bucket bounds included.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs.buildinfo import (
    BUILD_INFO_METRIC,
    config_fingerprint,
    register_build_info,
)
from repro.obs.cluster import (
    COORDINATOR_SHARD,
    MERGE_CONFLICTS_METRIC,
    SHARD_LABEL,
    merge_conflicts,
    merge_registries,
)
from repro.obs.promtext import validate_exposition
from repro.obs.registry import MetricsRegistry


def _shard_registry(slots: float, hits: float) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_serve_slots_total", "Slots executed").inc(slots)
    registry.counter("repro_serve_deadline_hits_total", "Hits").inc(hits)
    registry.gauge("repro_serve_sessions", "Live sessions").set(2.0)
    return registry


class TestMergeRegistries:
    def test_duplicate_families_fan_out_by_shard(self):
        merged = merge_registries(
            [("0", _shard_registry(10, 9)), ("1", _shard_registry(20, 20))]
        )
        text = merged.render_prometheus()
        summary = validate_exposition(text)
        assert 'repro_serve_slots_total{shard="0"} 10' in text
        assert 'repro_serve_slots_total{shard="1"} 20' in text
        # One TYPE line per family even though two shards carry it.
        assert text.count("# TYPE repro_serve_slots_total") == 1
        assert summary.samples > 0

    def test_merge_is_read_only_adoption(self):
        shard = _shard_registry(5, 5)
        merged = merge_registries([("0", shard)])
        # The merged child *is* the shard's instrument: a later inc on
        # the shard shows up in a fresh render of the merged view.
        shard.counter("repro_serve_slots_total", "Slots executed").inc(3)
        assert 'repro_serve_slots_total{shard="0"} 8' in (
            merged.render_prometheus()
        )

    def test_existing_shard_label_is_not_doubled(self):
        registry = MetricsRegistry()
        family = registry.counter_family(
            "repro_cluster_migrations_total", "Moves", (SHARD_LABEL,)
        )
        family.counter_child(shard="3").inc(2)
        merged = merge_registries([(COORDINATOR_SHARD, registry)])
        text = merged.render_prometheus()
        validate_exposition(text)
        # The family already had a shard label: merged as-is, no
        # second shard label appended.
        assert 'repro_cluster_migrations_total{shard="3"} 2' in text

    def test_kind_conflict_counts_not_raises(self):
        a = MetricsRegistry()
        a.counter("repro_widget_total", "As a counter").inc()
        b = MetricsRegistry()
        b.gauge("repro_widget_total", "As a gauge").set(1.0)
        merged = merge_registries([("0", a), ("1", b)])
        text = merged.render_prometheus()
        validate_exposition(text)
        conflicts = dict(merge_conflicts(merged))
        assert conflicts.get("repro_widget_total", 0) >= 1
        # The first shard's version survives.
        assert 'repro_widget_total{shard="0"} 1' in text

    def test_histograms_with_different_buckets_stay_valid(self):
        a = MetricsRegistry()
        a.histogram(
            "repro_stage_seconds", "Stage latency", buckets_s=(0.001, 0.01)
        ).observe(0.002)
        b = MetricsRegistry()
        b.histogram(
            "repro_stage_seconds", "Stage latency", buckets_s=(0.005,)
        ).observe(0.002)
        merged = merge_registries([("0", a), ("1", b)])
        text = merged.render_prometheus()
        summary = validate_exposition(text)
        # Each shard's series keeps its own bounds; both close at +Inf.
        assert 'le="0.001",shard="0"' in text or 'shard="0",le="0.001"' in text
        assert text.count('le="+Inf"') == 2
        assert "repro_stage_seconds" in summary.families

    def test_empty_sources_render_empty_but_valid(self):
        merged = merge_registries([])
        summary = validate_exposition(merged.render_prometheus())
        # Only the conflicts family (no children) is registered.
        assert summary.samples == 0

    def test_conflict_counter_name_reserved(self):
        registry = MetricsRegistry()
        registry.counter(MERGE_CONFLICTS_METRIC, "Impostor").inc()
        merged = merge_registries([("0", registry)])
        text = merged.render_prometheus()
        validate_exposition(text)
        # The shard's impostor conflicts with the merger's own family
        # (label mismatch) and is counted as a conflict itself.
        assert dict(merge_conflicts(merged)).get(MERGE_CONFLICTS_METRIC, 0) >= 1


class TestBuildInfo:
    def test_registered_in_every_shard_and_merged(self):
        shards = []
        for index in range(2):
            registry = MetricsRegistry()
            register_build_info(registry, shard=index, config_hash="abc")
            shards.append((str(index), registry))
        merged = merge_registries(shards)
        text = merged.render_prometheus()
        validate_exposition(text)
        assert text.count(BUILD_INFO_METRIC + "{") == 2
        assert 'config_hash="abc"' in text

    def test_gauge_is_constant_one_with_identity_labels(self):
        registry = MetricsRegistry()
        gauge = register_build_info(registry, shard=4, config_hash="ffff")
        assert gauge.value == 1.0
        text = registry.render_prometheus()
        assert 'shard="4"' in text
        assert "python=" in text
        assert "version=" in text

    def test_idempotent_re_registration(self):
        registry = MetricsRegistry()
        register_build_info(registry, shard=0, config_hash="x")
        register_build_info(registry, shard=0, config_hash="x")
        validate_exposition(registry.render_prometheus())

    def test_config_fingerprint_stable_and_short(self):
        a = config_fingerprint(("a", 1))
        assert a == config_fingerprint(("a", 1))
        assert a != config_fingerprint(("a", 2))
        assert len(a) == 12


class TestAdopt:
    def test_rejects_mismatched_instrument_kind(self):
        a = MetricsRegistry()
        counter = a.counter("repro_x_total", "X")
        b = MetricsRegistry()
        family = b.gauge_family("repro_y", "Y", ("shard",))
        assert family.adopt(("0",), counter) is False

    def test_rejects_label_arity_mismatch(self):
        a = MetricsRegistry()
        counter = a.counter("repro_x_total", "X")
        b = MetricsRegistry()
        family = b.counter_family("repro_x_total", "X", ("shard",))
        assert family.adopt((), counter) is False

    def test_rejects_taken_key(self):
        a = MetricsRegistry()
        counter = a.counter("repro_x_total", "X")
        b = MetricsRegistry()
        family = b.counter_family("repro_x_total", "X", ("shard",))
        assert family.adopt(("0",), counter) is True
        assert family.adopt(("0",), counter) is False
