"""Observability must not change what it observes.

Three guarantees from the ISSUE: (1) a seeded in-process experiment
produces bit-identical results with observability on and off; (2) a
seeded lockstep loopback run produces identical planner outcomes with
observability on and off; (3) the slot-pipeline overhead of full
observability stays within the benchmark budget (with an absolute
floor so timer noise on sub-millisecond slots cannot flake the suite).
"""

import asyncio
from dataclasses import replace

import pytest

from repro.core import DensityValueGreedyAllocator
from repro.obs import Obs, ObsConfig
from repro.obs.spans import read_span_stream
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet
from repro.system import SystemExperiment, setup1_config
from repro.system.experiment import scaled_config


def _experiment_config(slots=80, seed=3):
    return scaled_config(setup1_config(seed=seed), duration_slots=slots)


class TestExperimentInertness:
    def test_seeded_run_identical_with_obs_on_and_off(self, tmp_path):
        config = _experiment_config()
        baseline = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        obs = Obs.from_config(
            ObsConfig(
                enabled=True,
                trace_path=str(tmp_path / "trace.jsonl"),
                sample_every=1,
            )
        )
        observed = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0, obs=obs
        )
        obs.close()
        # Bit-identical, not approximately equal.
        assert observed.users == baseline.users

    def test_experiment_emits_virtual_clock_spans(self, tmp_path):
        config = _experiment_config(slots=40)
        obs = Obs.from_config(
            ObsConfig(
                enabled=True,
                trace_path=str(tmp_path / "trace.jsonl"),
                sample_every=1,
            )
        )
        SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0, obs=obs
        )
        obs.close()
        with open(tmp_path / "trace.jsonl", "r", encoding="utf-8") as handle:
            _, spans = read_span_stream(handle)
        assert len(spans) == config.duration_slots - 1
        # Timestamps are the run's virtual slot clock, not wall clock.
        for t, span in enumerate(spans):
            assert span.start_s == t * config.slot_s
            assert span.duration_s == pytest.approx(config.slot_s)
        page = obs.registry.render_prometheus()
        assert (
            f"repro_experiment_slots_total {config.duration_slots - 1}"
            in page
        )
        assert "repro_sched_slots_total" in page

    def test_scheduler_registry_attachment_changes_no_decision(self):
        config = _experiment_config(slots=60, seed=5)
        baseline = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        obs = Obs.disabled()
        experiment = SystemExperiment(config)
        mirrored = experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, obs=obs
        )
        assert mirrored.users == baseline.users


class TestLoopbackInertness:
    def _run(self, obs_config, slots=16, users=4, seed=11):
        serve_config = replace(
            serve_setup1(
                max_users=users,
                duration_slots=slots,
                seed=seed,
                expect_clients=users,
                lockstep=True,
            ),
            obs=obs_config,
        )
        result, _ = asyncio.run(
            run_serve_and_fleet(
                serve_config, LoadGenConfig(num_clients=users, seed=seed)
            )
        )
        return result

    def test_lockstep_run_identical_with_obs_on_and_off(self, tmp_path):
        off = self._run(ObsConfig(enabled=False))
        on = self._run(
            ObsConfig(
                enabled=True,
                trace_path=str(tmp_path / "trace.jsonl"),
                sample_every=1,
                flight_dir=str(tmp_path / "flight"),
            )
        )
        assert on.slots == off.slots
        assert on.metrics.per_user_quality() == off.metrics.per_user_quality()
        assert on.metrics.telemetry.records == off.metrics.telemetry.records
        assert on.metrics.deadline_hits == off.metrics.deadline_hits

    def test_lockstep_run_identical_with_slo_engine_enabled(self, tmp_path):
        from repro.obs.slo import SLO_BURN_METRIC, default_slo_config

        off = self._run(ObsConfig(enabled=False))
        on = self._run(
            ObsConfig(
                enabled=True,
                trace_path=str(tmp_path / "trace.jsonl"),
                sample_every=1,
                slo=default_slo_config(),
            )
        )
        # The burn-rate engine ran every slot...
        assert SLO_BURN_METRIC in on.metrics.registry.render_prometheus()
        # ...and changed nothing it observed.
        assert on.slots == off.slots
        assert on.metrics.per_user_quality() == off.metrics.per_user_quality()
        assert on.metrics.telemetry.records == off.metrics.telemetry.records
        assert on.metrics.deadline_hits == off.metrics.deadline_hits


class TestOverheadBudget:
    def test_slot_pipeline_overhead_within_budget(self):
        from repro.obs.bench import MAX_OVERHEAD_PCT, bench_obs

        # The budget with an absolute floor: on millisecond-scale slot
        # pipelines 5% is below scheduler/timer noise, so accept
        # anything within a quarter millisecond as within budget too.
        # One re-measure before failing: a genuine overhead regression
        # exceeds the budget on every run, transient machine load on
        # at most one.
        for attempt in range(2):
            run = bench_obs(users=2, slots=30, seed=0, repeats=2)
            off_ms = run["off_mean_slot_ms"]
            on_ms = run["on_mean_slot_ms"]
            budget_ms = max(
                off_ms * (1.0 + MAX_OVERHEAD_PCT / 100.0), off_ms + 0.25
            )
            if on_ms <= budget_ms:
                break
        assert on_ms <= budget_ms, (
            f"obs overhead {on_ms - off_ms:.4f} ms over a {off_ms:.4f} ms "
            f"baseline exceeds the {MAX_OVERHEAD_PCT}% budget twice"
        )
        assert run["slots"] == 30
