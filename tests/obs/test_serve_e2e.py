"""End-to-end observability on the live serving path.

The ISSUE's acceptance scenarios: a provoked deadline miss produces a
flight dump containing the offending slot's full span tree, and a live
loopback run serves a valid Prometheus ``/metrics`` page plus
``/healthz`` while slots are executing.
"""

import asyncio
import json
from dataclasses import replace

from repro.obs import ObsConfig
from repro.obs.flight import TRIGGER_DEADLINE_MISS
from repro.obs.promtext import validate_exposition
from repro.obs.spans import read_span_stream
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_fleet, run_serve_and_fleet
from repro.serve.server import VrServeServer


class TestDeadlineMissFlightDump:
    def test_missed_deadline_dumps_the_offending_slot_span_tree(
        self, tmp_path
    ):
        flight_dir = tmp_path / "flight"
        # A 1 microsecond deadline: every slot's pipeline misses it.
        serve_config = replace(
            serve_setup1(
                max_users=2,
                duration_slots=6,
                seed=0,
                expect_clients=2,
                lockstep=True,
                slot_s=1e-6,
            ),
            obs=ObsConfig(enabled=True, flight_dir=str(flight_dir)),
        )
        result, _ = asyncio.run(
            run_serve_and_fleet(
                serve_config, LoadGenConfig(num_clients=2, seed=0)
            )
        )
        assert result.metrics.deadline_hit_rate == 0.0
        dumps = sorted(flight_dir.glob("flight_*_deadline_miss.jsonl"))
        assert dumps, "deadline misses produced no flight dump"
        with open(dumps[0], "r", encoding="utf-8") as handle:
            header, spans = read_span_stream(handle)
        assert header["kind"] == "repro.obs.flight"
        assert header["trigger"] == TRIGGER_DEADLINE_MISS
        offending_slot = header["slot"]
        offenders = [
            s for s in spans if s.attrs.get("slot") == offending_slot
        ]
        assert offenders, "dump does not contain the offending slot"
        span = offenders[0]
        # The full span tree: the slot root, its pipeline stages, and
        # the per-user allocation grandchildren under allocate.
        assert span.attrs["deadline_hit"] is False
        stage_names = [c.name for c in span.children]
        assert stage_names == ["predict", "allocate", "encode", "send"]
        allocate = span.find("allocate")[0]
        seats = [u.attrs["seat"] for u in allocate.find("user")]
        assert seats, "allocate stage has no per-user spans"
        assert set(seats) <= {0, 1}


class TestLiveMetricsEndpoint:
    def test_metrics_and_healthz_valid_mid_run(self):
        async def scenario():
            serve_config = replace(
                serve_setup1(
                    max_users=2,
                    duration_slots=41,
                    seed=0,
                    expect_clients=2,
                    lockstep=True,
                ),
                obs=ObsConfig(enabled=True, http_port=0),
            )
            server = VrServeServer(serve_config)
            await server.start()
            metrics_port = server.metrics_port
            server_task = asyncio.ensure_future(server.run())
            fleet_task = asyncio.ensure_future(
                run_fleet(
                    LoadGenConfig(num_clients=2, seed=0, port=server.port)
                )
            )
            # Scrape while the slot loop is live (event-driven, no
            # sleep polling: the loop signals each completed slot).
            await server.slot_loop.wait_slots(5)
            metrics_body = await _http_get(metrics_port, "/metrics")
            health_body = await _http_get(metrics_port, "/healthz")
            await fleet_task
            result = await server_task
            return result, metrics_body, health_body

        result, metrics_body, health_body = asyncio.run(scenario())
        summary = validate_exposition(metrics_body)
        assert "repro_serve_slots_total" in summary.families
        assert "repro_serve_stage_latency_seconds" in summary.families
        assert "repro_serve_active_sessions" in summary.families
        health = json.loads(health_body)
        assert health["status"] == "ok"
        assert health["sessions"] == 2
        assert health["slots_run"] >= 5
        assert result.slots == 40


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw.partition(b"\r\n\r\n")[2].decode("utf-8")
