"""Span trees and the JSONL stream round-trip."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import (
    SPAN_SCHEMA_VERSION,
    SPAN_STREAM_KIND,
    Span,
    read_span_stream,
    stream_header,
    write_span_stream,
)


def _sample_span(slot: int = 7) -> Span:
    root = Span(name="slot", start_s=1.0, duration_s=0.016,
                attrs={"slot": slot, "deadline_hit": True})
    allocate = root.child("allocate", 1.001, 0.004, level_count=6)
    allocate.child("user", 1.001, 0.0, seat=0, level=3)
    allocate.child("user", 1.001, 0.0, seat=1, level=2)
    root.child("send", 1.005, 0.002, dropped=0)
    return root


class TestSpanTree:
    def test_child_and_find_and_walk(self):
        span = _sample_span()
        assert [c.name for c in span.children] == ["allocate", "send"]
        assert len(span.find("allocate")) == 1
        assert len(span.find("user")) == 0
        names = [s.name for s in span.walk()]
        assert names == ["slot", "allocate", "user", "user", "send"]

    def test_dict_round_trip_preserves_everything(self):
        span = _sample_span()
        restored = Span.from_dict(span.to_dict())
        assert restored == span

    def test_from_dict_rejects_malformed_input(self):
        with pytest.raises(ObservabilityError):
            Span.from_dict([])
        with pytest.raises(ObservabilityError):
            Span.from_dict({"name": "x", "start_s": 0.0})
        with pytest.raises(ObservabilityError):
            Span.from_dict({"name": 3, "start_s": 0.0, "duration_s": 0.0})
        with pytest.raises(ObservabilityError):
            Span.from_dict(
                {"name": "x", "start_s": "soon", "duration_s": 0.0}
            )
        with pytest.raises(ObservabilityError):
            Span.from_dict(
                {"name": "x", "start_s": 0.0, "duration_s": 0.0,
                 "children": {}}
            )


class TestStream:
    def test_write_read_round_trip(self):
        spans = [_sample_span(slot) for slot in range(3)]
        buffer = io.StringIO()
        write_span_stream(buffer, spans)
        buffer.seek(0)
        header, restored = read_span_stream(buffer)
        assert header["kind"] == SPAN_STREAM_KIND
        assert header["schema_version"] == SPAN_SCHEMA_VERSION
        assert restored == spans

    def test_header_carries_custom_kind(self):
        buffer = io.StringIO()
        write_span_stream(buffer, [], kind="repro.obs.flight")
        buffer.seek(0)
        header, spans = read_span_stream(buffer)
        assert header["kind"] == "repro.obs.flight"
        assert spans == []

    def test_empty_stream_rejected(self):
        with pytest.raises(ObservabilityError):
            read_span_stream(io.StringIO(""))

    def test_foreign_kind_rejected(self):
        buffer = io.StringIO(json.dumps({"kind": "nope", "schema_version": 1}))
        with pytest.raises(ObservabilityError):
            read_span_stream(buffer)

    def test_wrong_schema_version_rejected(self):
        header = stream_header()
        header["schema_version"] = SPAN_SCHEMA_VERSION + 1
        buffer = io.StringIO(json.dumps(header) + "\n")
        with pytest.raises(ObservabilityError):
            read_span_stream(buffer)

    def test_malformed_line_rejected_with_line_number(self):
        buffer = io.StringIO(
            json.dumps(stream_header()) + "\nnot json\n"
        )
        with pytest.raises(ObservabilityError, match="line 2"):
            read_span_stream(buffer)
