"""The SLO engine: config schema, burn-rate math, window behaviour."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    SLO_BREACHES_METRIC,
    SLO_BURN_METRIC,
    SloConfig,
    SloEngine,
    SloObjective,
    SloSample,
    default_slo_config,
    evaluate_sample,
    load_slo_config,
    sample_registry,
    sample_snapshot,
)


def _counters(registry, slots=0, hits=0, degraded=0, detached=0):
    registry.counter("repro_serve_slots_total", "s").inc(slots)
    registry.counter("repro_serve_deadline_hits_total", "h").inc(hits)
    registry.counter("repro_serve_degraded_user_slots_total", "d").inc(degraded)
    registry.counter("repro_serve_detached_user_slots_total", "p").inc(detached)
    return registry


class TestConfigSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            SloObjective("x", "availability", target=0.9)

    def test_target_range_enforced(self):
        with pytest.raises(ObservabilityError):
            SloObjective("x", "deadline_hit_rate", target=1.0)
        with pytest.raises(ObservabilityError):
            SloObjective("x", "deadline_hit_rate", target=-0.1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ObservabilityError):
            SloConfig(objectives=(
                SloObjective("x", "deadline_hit_rate", target=0.9),
                SloObjective("x", "quality_floor", target=0.9),
            ))

    def test_round_trips_through_json(self, tmp_path):
        config = default_slo_config()
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(config.to_dict()))
        assert load_slo_config(path) == config

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"objectives": []}')
        with pytest.raises(ObservabilityError):
            load_slo_config(path)

    def test_budget_is_one_minus_target(self):
        assert SloObjective(
            "x", "deadline_hit_rate", target=0.99
        ).budget == pytest.approx(0.01)


class TestSampling:
    def test_registry_sampler_sums_sharded_children(self):
        registry = MetricsRegistry()
        family = registry.counter_family(
            "repro_serve_slots_total", "s", ("shard",)
        )
        family.counter_child(shard="0").inc(10)
        family.counter_child(shard="1").inc(15)
        sample = sample_registry(registry)
        assert sample.slots == 25.0

    def test_missing_families_read_as_zero(self):
        assert sample_registry(MetricsRegistry()) == SloSample()

    def test_snapshot_sampler_matches_registry(self):
        registry = _counters(
            MetricsRegistry(), slots=40, hits=39, degraded=3, detached=1
        )
        from_registry = sample_registry(registry)
        from_snapshot = sample_snapshot(registry.snapshot())
        assert from_snapshot == from_registry

    def test_snapshot_without_families_rejected(self):
        with pytest.raises(ObservabilityError):
            sample_snapshot({})


class TestEvaluateSample:
    def test_error_fractions_per_kind(self):
        config = default_slo_config()
        sample = SloSample(
            slots=100, deadline_hits=98,
            degraded_user_slots=8, detached_user_slots=4,
        )
        by_name = {
            s.name: s for s in evaluate_sample(config, sample, seats=4)
        }
        assert by_name["slot_deadline"].error_ratio == pytest.approx(0.02)
        assert by_name["quality_floor"].error_ratio == pytest.approx(
            8 / 400
        )
        assert by_name["migration_downtime"].error_ratio == pytest.approx(
            4 / 400
        )
        # deadline: 2% errors vs 1% budget -> burn 2x -> breach.
        assert by_name["slot_deadline"].burn == pytest.approx(2.0)
        assert by_name["slot_deadline"].breached
        assert not by_name["quality_floor"].breached

    def test_no_data_is_no_breach(self):
        statuses = evaluate_sample(default_slo_config(), SloSample(), seats=2)
        assert all(s.burn == 0.0 for s in statuses)
        assert not any(s.breached for s in statuses)


class TestEngine:
    def _engine(self, registry, window=4, target=0.5):
        config = SloConfig(objectives=(
            SloObjective(
                "deadline", "deadline_hit_rate",
                target=target, window_slots=window,
            ),
        ))
        return SloEngine(config, registry, seats=1)

    def test_burn_gauge_and_breach_counter(self):
        registry = MetricsRegistry()
        slots = registry.counter("repro_serve_slots_total", "s")
        hits = registry.counter("repro_serve_deadline_hits_total", "h")
        engine = self._engine(registry, window=4, target=0.5)
        # Miss every deadline: error 100% vs 50% budget -> burn 2x.
        for slot in range(3):
            slots.inc()
            statuses = engine.evaluate(slot)
        assert statuses[0].burn == pytest.approx(2.0)
        assert statuses[0].breached
        # Edge-triggered: one transition, one breach count.
        text = registry.render_prometheus()
        assert SLO_BURN_METRIC + '{objective="deadline"} 2' in text
        assert SLO_BREACHES_METRIC + '{objective="deadline"} 1' in text

    def test_window_forgets_old_errors(self):
        registry = MetricsRegistry()
        slots = registry.counter("repro_serve_slots_total", "s")
        hits = registry.counter("repro_serve_deadline_hits_total", "h")
        engine = self._engine(registry, window=4, target=0.5)
        # Slots 0-2: all misses (breaching).
        for slot in range(3):
            slots.inc()
            engine.evaluate(slot)
        # Slots 3-12: all hits; the window slides past the bad start.
        final = []
        for slot in range(3, 13):
            slots.inc()
            hits.inc()
            final = engine.evaluate(slot)
        assert final[0].error_ratio == pytest.approx(0.0)
        assert not final[0].breached

    def test_recovery_rearms_breach_counter(self):
        registry = MetricsRegistry()
        slots = registry.counter("repro_serve_slots_total", "s")
        hits = registry.counter("repro_serve_deadline_hits_total", "h")
        engine = self._engine(registry, window=2, target=0.5)
        newly = 0
        for slot in range(12):
            slots.inc()
            # Alternate runs of misses and hits in blocks of 4.
            if (slot // 4) % 2 == 1:
                hits.inc()
            newly += sum(
                1 for s in engine.evaluate(slot) if s.newly_breached
            )
        # Breached in the first miss block, recovered, breached again.
        assert newly == 2

    def test_status_rollup_lists_breaching_names(self):
        registry = MetricsRegistry()
        slots = registry.counter("repro_serve_slots_total", "s")
        engine = self._engine(registry, window=4, target=0.5)
        slots.inc()
        engine.evaluate(0)
        status = engine.status()
        assert status["breaching"] == ["deadline"]
        objectives = status["objectives"]
        assert objectives[0]["name"] == "deadline"
        assert objectives[0]["breached"] is True

    def test_history_stays_bounded(self):
        registry = MetricsRegistry()
        slots = registry.counter("repro_serve_slots_total", "s")
        engine = self._engine(registry, window=8)
        for slot in range(200):
            slots.inc()
            engine.evaluate(slot)
        assert len(engine._history) <= 10
