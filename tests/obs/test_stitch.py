"""Cross-shard trace stitching and truncated-stream tolerance."""

import json

from repro.obs.cli import (
    EXIT_INVALID,
    EXIT_OK,
    EXIT_TRUNCATED,
    EXIT_USAGE,
)
from repro.obs.spans import Span, write_span_stream
from repro.obs.stitch import (
    MIGRATION_SPAN_NAME,
    format_timeline,
    stitch_spans,
)
from repro.obs.tracer import NullTracer
from tests.obs.test_cli import _write_trace, run_cli


def _shard_stream(shard, slots, traces, miss_slots=()):
    """One shard's slot spans; ``traces`` maps seat -> trace id."""
    tracer = NullTracer()
    spans = []
    for slot in slots:
        builder = tracer.slot(slot, slot * 0.016)
        builder.stage("allocate", slot * 0.016, slot * 0.016 + 0.003)
        for seat, trace in traces.items():
            builder.user(seat, level=2, trace=trace)
        spans.append(
            builder.finish(
                slot * 0.016 + 0.015,
                deadline_hit=slot not in miss_slots,
                shard=shard,
            )
        )
    return spans


def _migration(trace, slot, source, target, reason="rebalance", seq=0,
               client="client-0"):
    return Span(
        name=MIGRATION_SPAN_NAME,
        start_s=float(slot),
        duration_s=0.0,
        attrs={
            "trace": trace,
            "client": client,
            "source_shard": source,
            "target_shard": target,
            "slot": slot,
            "reason": reason,
            "seq": seq,
        },
    )


class TestStitchSpans:
    def test_migrated_session_bridges_two_segments(self):
        streams = [
            _shard_stream(0, range(0, 6), {0: "aaaa"}),
            _shard_stream(1, range(7, 12), {0: "aaaa"}),
            [_migration("aaaa", 6, 0, 1)],
        ]
        timelines = stitch_spans(streams)
        assert len(timelines) == 1
        timeline = timelines[0]
        assert timeline.client == "client-0"
        assert timeline.shards == (0, 1)
        events = timeline.events()
        assert [e["kind"] for e in events] == [
            "segment", "migration", "segment",
        ]
        assert events[0]["last_slot"] == 5
        assert events[1]["slot"] == 6
        assert events[2]["first_slot"] == 7

    def test_one_timeline_per_trace(self):
        streams = [
            _shard_stream(0, range(4), {0: "aaaa", 1: "bbbb"}),
        ]
        timelines = stitch_spans(streams)
        assert [t.trace for t in timelines] == ["aaaa", "bbbb"]
        for timeline in timelines:
            assert timeline.shards == (0,)
            assert timeline.segments[0].user_slots == 4
            assert timeline.migrations == ()

    def test_untraced_user_spans_are_skipped(self):
        tracer = NullTracer()
        builder = tracer.slot(0, 0.0)
        builder.user(0, level=2)  # no trace attr: pre-admission sample
        assert stitch_spans([[builder.finish(0.015)]]) == []

    def test_migration_without_samples_still_surfaces(self):
        timelines = stitch_spans([[_migration("cccc", 3, 1, 0)]])
        assert len(timelines) == 1
        assert timelines[0].segments == ()
        assert timelines[0].migrations[0].target_shard == 0

    def test_chain_order_breaks_first_slot_ties(self):
        # Both shards first see the session at slot 0 (e.g. a slot-0
        # handoff); the migration chain says shard 1 was the source.
        streams = [
            _shard_stream(1, [0], {0: "dddd"}),
            _shard_stream(0, range(0, 5), {0: "dddd"}),
            [_migration("dddd", 0, 1, 0)],
        ]
        assert stitch_spans(streams)[0].shards == (1, 0)

    def test_output_stable_across_stream_order(self):
        streams = [
            _shard_stream(0, range(0, 3), {0: "aaaa"}),
            _shard_stream(1, range(4, 8), {0: "aaaa"}),
            [_migration("aaaa", 3, 0, 1)],
        ]
        forward = stitch_spans(streams)
        reversed_ = stitch_spans(list(reversed(streams)))
        assert [t.to_dict() for t in forward] == [
            t.to_dict() for t in reversed_
        ]

    def test_format_timeline_text(self):
        streams = [
            _shard_stream(0, range(0, 3), {0: "aaaa"}),
            _shard_stream(1, range(4, 8), {0: "aaaa"}),
            [_migration("aaaa", 3, 0, 1)],
        ]
        lines = format_timeline(stitch_spans(streams)[0])
        assert lines[0] == "session client-0 trace=aaaa"
        assert lines[1] == "  shard 0: slots 0..2 (3 user-slot(s))"
        assert lines[2] == "  migration @slot 3: shard 0 -> shard 1 (rebalance)"
        assert lines[3] == "  shard 1: slots 4..7 (4 user-slot(s))"


def _write_stream(path, spans):
    with open(path, "w", encoding="utf-8") as handle:
        write_span_stream(handle, spans)
    return path


class TestStitchCli:
    def _cluster_files(self, tmp_path):
        shard0 = _write_stream(
            tmp_path / "run.shard0.jsonl",
            _shard_stream(0, range(0, 6), {0: "aaaa"}),
        )
        shard1 = _write_stream(
            tmp_path / "run.shard1.jsonl",
            _shard_stream(1, range(7, 12), {0: "aaaa"}),
        )
        coord = _write_stream(
            tmp_path / "run.coordinator.jsonl",
            [_migration("aaaa", 6, 0, 1)],
        )
        return [str(shard0), str(shard1), str(coord)]

    def test_text_output_shows_bridge(self, tmp_path):
        code, out, _ = run_cli(["stitch"] + self._cluster_files(tmp_path))
        assert code == EXIT_OK
        assert "session client-0 trace=aaaa" in out
        assert "migration @slot 6: shard 0 -> shard 1" in out
        assert "1 session(s), 1 migrated" in out

    def test_json_output_is_machine_readable(self, tmp_path):
        code, out, _ = run_cli(
            ["stitch", "--json"] + self._cluster_files(tmp_path)
        )
        assert code == EXIT_OK
        sessions = json.loads(out)["sessions"]
        assert sessions[0]["shards"] == [0, 1]
        kinds = [e["kind"] for e in sessions[0]["events"]]
        assert kinds == ["segment", "migration", "segment"]

    def test_missing_file_is_usage_error(self, tmp_path):
        code, _, err = run_cli(["stitch", str(tmp_path / "nope.jsonl")])
        assert code == EXIT_USAGE
        assert "no such trace file" in err


class TestTruncatedStreams:
    """Satellite: a writer killed mid-record must not sink the tools."""

    def _truncate_final_line(self, path):
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        # Chop the last record in half, no trailing newline: exactly
        # what a SIGKILL during a buffered write leaves behind.
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines), encoding="utf-8")
        return path

    def test_tail_skips_with_warning_and_exit_3(self, tmp_path):
        trace = self._truncate_final_line(
            _write_trace(tmp_path / "t.jsonl", slots=6)
        )
        code, out, err = run_cli(["tail", str(trace), "-n", "10"])
        assert code == EXIT_TRUNCATED
        assert "skipped 1 truncated final line" in err
        # The intact prefix is still shown.
        assert len(out.strip().splitlines()) == 5

    def test_summarize_reports_surviving_prefix(self, tmp_path):
        trace = self._truncate_final_line(
            _write_trace(tmp_path / "t.jsonl", slots=6)
        )
        code, out, err = run_cli(["summarize", str(trace)])
        assert code == EXIT_TRUNCATED
        assert "5 slot span(s)" in out
        assert "truncated" in err

    def test_stitch_tolerates_truncated_member(self, tmp_path):
        shard0 = self._truncate_final_line(
            _write_stream(
                tmp_path / "run.shard0.jsonl",
                _shard_stream(0, range(0, 6), {0: "aaaa"}),
            )
        )
        coord = _write_stream(
            tmp_path / "run.coordinator.jsonl",
            [_migration("aaaa", 6, 0, 1)],
        )
        code, out, err = run_cli(["stitch", str(shard0), str(coord)])
        assert code == EXIT_TRUNCATED
        assert "truncated" in err
        # Slots 0..4 survive the chopped record for slot 5.
        assert "shard 0: slots 0..4" in out

    def test_interior_corruption_is_still_invalid(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl", slots=6)
        lines = trace.read_text(encoding="utf-8").splitlines()
        lines[2] = lines[2][:10]  # not the final line: real corruption
        trace.write_text("\n".join(lines) + "\n", encoding="utf-8")
        for argv in (["tail", str(trace)], ["stitch", str(trace)]):
            code, _, err = run_cli(argv)
            assert code == EXIT_INVALID
            assert "invalid trace" in err
