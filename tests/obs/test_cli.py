"""The ``repro obs`` command family: exit codes and output shapes."""

import argparse
import asyncio
import io
import json

import pytest

from repro.obs.cli import (
    EXIT_INVALID,
    EXIT_OK,
    EXIT_USAGE,
    add_obs_arguments,
    run_obs_command,
)
from repro.obs.http import ObsHttpServer
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, write_span_stream
from repro.obs.tracer import NullTracer


def _parse(argv):
    parser = argparse.ArgumentParser()
    add_obs_arguments(parser)
    return parser.parse_args(argv)


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = run_obs_command(_parse(argv), stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


def _write_trace(path, slots=6, miss_slots=()):
    tracer = NullTracer()
    spans = []
    for slot in range(slots):
        builder = tracer.slot(slot, slot * 0.016)
        builder.stage("allocate", slot * 0.016, slot * 0.016 + 0.003)
        builder.user(0, level=2)
        spans.append(
            builder.finish(
                slot * 0.016 + 0.015, deadline_hit=slot not in miss_slots
            )
        )
    with open(path, "w", encoding="utf-8") as handle:
        write_span_stream(handle, spans)
    return path


class TestTail:
    def test_shows_last_n_spans(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl", slots=8)
        code, out, _ = run_cli(["tail", str(trace), "-n", "3"])
        assert code == EXIT_OK
        lines = out.strip().splitlines()
        assert len(lines) == 3
        assert "slot" in lines[0]

    def test_marks_deadline_misses(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl", slots=4, miss_slots=(3,))
        code, out, _ = run_cli(["tail", str(trace)])
        assert code == EXIT_OK
        assert "MISS" in out

    def test_missing_file_is_usage_error(self, tmp_path):
        code, _, err = run_cli(["tail", str(tmp_path / "nope.jsonl")])
        assert code == EXIT_USAGE
        assert "no such trace file" in err

    def test_malformed_trace_is_invalid(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        code, _, err = run_cli(["tail", str(bad)])
        assert code == EXIT_INVALID
        assert "invalid trace" in err

    def test_nonpositive_n_is_usage_error(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl")
        code, _, _ = run_cli(["tail", str(trace), "-n", "0"])
        assert code == EXIT_USAGE


class TestSummarize:
    def test_text_summary_lists_stages(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl", slots=5, miss_slots=(1,))
        code, out, _ = run_cli(["summarize", str(trace)])
        assert code == EXIT_OK
        assert "5 slot span(s), 1 deadline miss(es)" in out
        assert "allocate" in out
        assert "slot" in out

    def test_json_summary_is_machine_readable(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl", slots=5)
        code, out, _ = run_cli(["summarize", str(trace), "--json"])
        assert code == EXIT_OK
        summary = json.loads(out)
        assert summary["spans"] == 5
        assert summary["deadline_misses"] == 0
        assert summary["stages"]["slot"]["count"] == 5.0

    def test_missing_file_is_usage_error(self, tmp_path):
        code, _, _ = run_cli(["summarize", str(tmp_path / "nope.jsonl")])
        assert code == EXIT_USAGE


class TestDiff:
    def test_reports_stage_deltas(self, tmp_path):
        before = _write_trace(tmp_path / "a.jsonl", slots=4)
        after = _write_trace(tmp_path / "b.jsonl", slots=6, miss_slots=(0,))
        code, out, _ = run_cli(["diff", str(before), str(after)])
        assert code == EXIT_OK
        assert "spans: 4 -> 6" in out
        assert "deadline misses: 0 -> 1" in out
        assert "allocate" in out

    def test_missing_side_is_usage_error(self, tmp_path):
        before = _write_trace(tmp_path / "a.jsonl")
        code, _, _ = run_cli(["diff", str(before), str(tmp_path / "no.jsonl")])
        assert code == EXIT_USAGE


class TestScrape:
    def _serve_and_scrape(self, argv_for_port):
        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc()

        async def scenario():
            server = ObsHttpServer(registry)
            await server.start()
            try:
                return await asyncio.to_thread(
                    run_cli, argv_for_port(server.port)
                )
            finally:
                await server.stop()

        return asyncio.run(scenario())

    def test_valid_metrics_page_passes(self):
        code, out, _ = self._serve_and_scrape(
            lambda port: [
                "scrape", f"http://127.0.0.1:{port}/metrics", "--quiet",
            ]
        )
        assert code == EXIT_OK
        assert "valid exposition" in out

    def test_json_endpoint_with_json_flag(self):
        code, out, _ = self._serve_and_scrape(
            lambda port: [
                "scrape", f"http://127.0.0.1:{port}/healthz",
                "--json", "--quiet",
            ]
        )
        assert code == EXIT_OK
        assert "valid JSON" in out

    def test_http_error_status_is_invalid(self):
        code, _, err = self._serve_and_scrape(
            lambda port: [
                "scrape", f"http://127.0.0.1:{port}/nope", "--quiet",
            ]
        )
        assert code == EXIT_INVALID
        assert "HTTP 404" in err

    def test_unreachable_endpoint_is_usage_error(self):
        code, _, err = run_cli(
            ["scrape", "http://127.0.0.1:1/metrics", "--timeout", "0.2"]
        )
        assert code == EXIT_USAGE
        assert "cannot scrape" in err

    def test_non_http_url_is_usage_error(self):
        code, _, _ = run_cli(["scrape", "ftp://example.com/metrics"])
        assert code == EXIT_USAGE


class TestMainCli:
    def test_obs_subcommand_wired_into_repro_main(self, tmp_path, capsys):
        from repro.cli import main

        trace = _write_trace(tmp_path / "t.jsonl", slots=3)
        assert main(["obs", "summarize", str(trace)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "3 slot span(s)" in out
