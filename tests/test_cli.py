"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.users == 5
        assert args.command == "sim"

    def test_system_setup_choices(self):
        args = build_parser().parse_args(["system", "--setup", "2"])
        assert args.setup == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["system", "--setup", "3"])

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "fig1"])
        assert args.seed == 7


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1a" in out
        assert "Fig. 1b" in out
        assert "mean RTT" in out

    def test_theorem1(self, capsys):
        assert main(["theorem1", "--instances", "25"]) == 0
        out = capsys.readouterr().out
        assert "fraction optimal" in out

    def test_sim_small(self, capsys):
        assert main(["sim", "--users", "2", "--slots", "60",
                     "--episodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "optimal" in out
        assert "QoE CDFs" in out

    def test_sim_no_optimal(self, capsys):
        assert main(["sim", "--users", "2", "--slots", "60",
                     "--episodes", "1", "--no-optimal"]) == 0
        out = capsys.readouterr().out
        assert "optimal" not in out.split("QoE CDFs")[0].splitlines()[3]

    def test_system_small(self, capsys):
        assert main(["system", "--setup", "1", "--slots", "120",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "fps" in out
        assert "Average QoE" in out


class TestSweepCommand:
    def test_sweep_alpha(self, capsys):
        assert main(["sweep", "alpha", "0.02,0.5", "--users", "2",
                     "--slots", "60"]) == 0
        out = capsys.readouterr().out
        assert "sweep over alpha" in out
        assert "variance" in out

    def test_sweep_config_field(self, capsys):
        assert main(["sweep", "margin_deg", "5,25", "--users", "2",
                     "--slots", "60"]) == 0
        out = capsys.readouterr().out
        assert "margin_deg" in out


class TestLintCommand:
    """Exit-code contract: 0 clean, 1 findings, 2 usage error."""

    CLEAN = "X = 1\n"
    DIRTY = "def f(b: list = []) -> list:\n    return b\n"

    def test_clean_path_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        assert main(["lint", str(target)]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "RL005" in out
        assert "1 error(s)" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "ghost.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_config_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        config = tmp_path / "pyproject.toml"
        config.write_text(
            "[tool.repro.lint.rules.RL999]\nenabled = false\n"
        )
        assert main(
            ["lint", str(target), "--config", str(config)]
        ) == 2
        assert "RL999" in capsys.readouterr().err

    def test_path_filtering(self, tmp_path, capsys):
        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        (clean_dir / "a.py").write_text(self.CLEAN)
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        assert main(["lint", str(clean_dir)]) == 0
        capsys.readouterr()
        assert main(["lint", str(tmp_path)]) == 1

    def test_json_round_trip(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(self.DIRTY)
        assert main(["lint", str(target), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["errors"] == 1
        assert document["findings"][0]["rule"] == "RL005"

    def test_stats_flag(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        assert main(["lint", str(target), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "rule hit counts:" in out
        assert "files scanned: 1" in out

    def test_repo_default_paths_are_clean(self, capsys):
        """`python -m repro lint` over src+tests must stay at zero."""
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_usage_error_from_argparse(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["lint", "--format", "yaml"])
        assert excinfo.value.code == 2


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.users == 8
        assert args.expect == 1
        assert args.slots == 300
        assert args.lockstep is False
        assert args.slot_ms is None
        assert args.require_hit_rate == 0.0

    def test_loadgen_requires_port(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["loadgen"])
        assert excinfo.value.code == 2

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen", "--port", "9000"])
        assert args.clients == 1
        assert args.latency_ms == 0.0
        assert args.slow_clients == 0
        assert args.churn_clients == 0

    def test_bench_serve_flags(self):
        args = build_parser().parse_args(["bench", "--serve-users", "2,4"])
        assert args.serve_users == "2,4"
        assert args.serve_slots == 120
        assert args.serve_target == 0.99


class TestServeCommands:
    """Exit-code contract for `serve` and `loadgen` over loopback."""

    def test_serve_bad_config_exits_one(self, capsys):
        # expect more clients than seats is a configuration error.
        assert main(["serve", "--users", "1", "--expect", "2"]) == 1
        assert "serve failed" in capsys.readouterr().err

    def test_loadgen_unreachable_server_exits_one(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["loadgen", "--port", str(port), "--clients", "1"]) == 1
        assert "cannot reach server" in capsys.readouterr().err

    def test_serve_and_loadgen_over_loopback(self, capsys):
        """Two-process smoke: `repro serve` + in-process loadgen."""
        import subprocess
        import sys

        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--users", "2", "--expect", "2",
                "--slots", "21", "--lockstep",
                "--require-hit-rate", "0.05",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert banner.startswith("serving on 127.0.0.1:"), banner
            port = int(banner.rsplit(":", 1)[1])
            assert main(["loadgen", "--port", str(port), "--clients", "2"]) == 0
            out, err = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, err
        assert "run complete: 20 slots" in out
        assert "deadline hit rate" in out
        client_out = capsys.readouterr().out
        assert "fleet of 2 client(s)" in client_out
        assert "complete" in client_out


class TestModuleEntryPoint:
    def test_python_dash_m(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "fig1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "Fig. 1a" in result.stdout
