"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.users == 5
        assert args.command == "sim"

    def test_system_setup_choices(self):
        args = build_parser().parse_args(["system", "--setup", "2"])
        assert args.setup == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["system", "--setup", "3"])

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "fig1"])
        assert args.seed == 7


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1a" in out
        assert "Fig. 1b" in out
        assert "mean RTT" in out

    def test_theorem1(self, capsys):
        assert main(["theorem1", "--instances", "25"]) == 0
        out = capsys.readouterr().out
        assert "fraction optimal" in out

    def test_sim_small(self, capsys):
        assert main(["sim", "--users", "2", "--slots", "60",
                     "--episodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "optimal" in out
        assert "QoE CDFs" in out

    def test_sim_no_optimal(self, capsys):
        assert main(["sim", "--users", "2", "--slots", "60",
                     "--episodes", "1", "--no-optimal"]) == 0
        out = capsys.readouterr().out
        assert "optimal" not in out.split("QoE CDFs")[0].splitlines()[3]

    def test_system_small(self, capsys):
        assert main(["system", "--setup", "1", "--slots", "120",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "fps" in out
        assert "Average QoE" in out


class TestSweepCommand:
    def test_sweep_alpha(self, capsys):
        assert main(["sweep", "alpha", "0.02,0.5", "--users", "2",
                     "--slots", "60"]) == 0
        out = capsys.readouterr().out
        assert "sweep over alpha" in out
        assert "variance" in out

    def test_sweep_config_field(self, capsys):
        assert main(["sweep", "margin_deg", "5,25", "--users", "2",
                     "--slots", "60"]) == 0
        out = capsys.readouterr().out
        assert "margin_deg" in out


class TestModuleEntryPoint:
    def test_python_dash_m(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "fig1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "Fig. 1a" in result.stdout
