"""Tests for tile partitioning, the grid world, and video ids."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid, TileKey, VideoId
from repro.errors import ConfigurationError


class TestTileGrid:
    def test_paper_default_four_tiles(self):
        assert TileGrid().num_tiles == 4

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            TileGrid(cols=0)

    def test_tile_of_quadrants(self):
        grid = TileGrid()
        # Top-left: west yaw, high pitch.
        assert grid.tile_of(-90.0, 45.0) == 0
        assert grid.tile_of(90.0, 45.0) == 1
        assert grid.tile_of(-90.0, -45.0) == 2
        assert grid.tile_of(90.0, -45.0) == 3

    def test_tile_of_boundaries(self):
        grid = TileGrid()
        assert grid.tile_of(-180.0, 89.999) == 0
        # Wrapped yaw 180 == -180.
        assert grid.tile_of(180.0, 89.999) == 0

    def test_narrow_fov_single_column(self):
        grid = TileGrid()
        fov = FieldOfView(horizontal_deg=40.0, vertical_deg=40.0)
        tiles = grid.tiles_overlapping(-90.0, 45.0, fov)
        assert tiles == frozenset({0})

    def test_fov_straddling_columns(self):
        grid = TileGrid()
        fov = FieldOfView(horizontal_deg=90.0, vertical_deg=40.0)
        tiles = grid.tiles_overlapping(0.0, 45.0, fov)
        assert tiles == frozenset({0, 1})

    def test_fov_straddling_rows(self):
        grid = TileGrid()
        fov = FieldOfView(horizontal_deg=40.0, vertical_deg=90.0)
        tiles = grid.tiles_overlapping(-90.0, 0.0, fov)
        assert tiles == frozenset({0, 2})

    def test_fov_wraparound_yaw(self):
        grid = TileGrid()
        fov = FieldOfView(horizontal_deg=90.0, vertical_deg=40.0)
        # Facing the antimeridian: straddles the texture seam, which
        # for a 2-column grid is still columns 0 and 1.
        tiles = grid.tiles_overlapping(180.0, 45.0, fov)
        assert tiles == frozenset({0, 1})

    def test_full_panorama_fov(self):
        grid = TileGrid()
        fov = FieldOfView(horizontal_deg=360.0, vertical_deg=180.0)
        assert grid.tiles_overlapping(0.0, 0.0, fov) == frozenset({0, 1, 2, 3})

    def test_delivery_fov_typically_four_tiles(self):
        """The 90+2x15 degree delivery FoV usually spans all 4 tiles."""
        grid = TileGrid()
        fov = FieldOfView().with_margin(15.0)
        counts = []
        for yaw in range(-180, 180, 20):
            counts.append(len(grid.tiles_overlapping(float(yaw), 0.0, fov)))
        assert all(c in (2, 4) for c in counts)
        assert sum(counts) / len(counts) > 3.0


class TestGridWorld:
    def test_dimensions(self):
        world = GridWorld(0.0, 1.0, 0.0, 2.0, cell_size=0.05)
        assert world.cols == 20
        assert world.rows == 40
        assert world.num_cells == 800

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            GridWorld(1.0, 1.0, 0.0, 2.0)
        with pytest.raises(ConfigurationError):
            GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.0)

    def test_cell_of_corners(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.5)
        assert world.cell_of(0.1, 0.1) == 0
        assert world.cell_of(0.9, 0.1) == 1
        assert world.cell_of(0.1, 0.9) == 2
        assert world.cell_of(0.9, 0.9) == 3

    def test_clamp_out_of_bounds(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.5)
        assert world.cell_of(-5.0, -5.0) == 0
        assert world.cell_of(5.0, 5.0) == 3

    def test_cell_center_roundtrip(self):
        world = GridWorld(0.0, 2.0, 0.0, 2.0, cell_size=0.05)
        for cell in (0, 17, world.num_cells - 1):
            x, y = world.cell_center(cell)
            assert world.cell_of(x, y) == cell

    def test_cell_center_rejects_out_of_range(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.5)
        with pytest.raises(ConfigurationError):
            world.cell_center(4)

    def test_cells_within_radius(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.1)
        center = world.cell_of(0.55, 0.55)
        window = world.cells_within(center, radius_cells=1)
        assert len(window) == 9
        assert center in window

    def test_cells_within_clipped_at_edges(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.1)
        corner = world.cell_of(0.01, 0.01)
        window = world.cells_within(corner, radius_cells=1)
        assert len(window) == 4

    def test_cells_within_rejects_negative_radius(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.1)
        with pytest.raises(ConfigurationError):
            world.cells_within(0, -1)

    def test_paper_granularity(self):
        """5 cm cells (Section VI) on an 8 m room."""
        world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
        assert world.cols == 160
        assert world.num_cells == 25_600


class TestVideoId:
    def test_roundtrip_simple(self):
        key = TileKey(cell_id=123, tile_index=2, level=5)
        assert VideoId.decode(VideoId.encode(key)) == key

    @given(
        st.integers(0, 10**6),
        st.integers(0, 15),
        st.integers(1, 15),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, cell, tile, level):
        key = TileKey(cell, tile, level)
        assert VideoId.decode(VideoId.encode(key)) == key

    def test_encode_injective_on_samples(self):
        seen = set()
        for cell in range(10):
            for tile in range(4):
                for level in range(1, 7):
                    vid = VideoId.encode(TileKey(cell, tile, level))
                    assert vid not in seen
                    seen.add(vid)

    def test_rejects_invalid_key_fields(self):
        with pytest.raises(ConfigurationError):
            TileKey(-1, 0, 1)
        with pytest.raises(ConfigurationError):
            TileKey(0, 16, 1)
        with pytest.raises(ConfigurationError):
            TileKey(0, 0, 0)

    def test_decode_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            VideoId.decode(-1)

    def test_encode_many(self):
        keys = [TileKey(1, t, 3) for t in range(4)]
        ids = VideoId.encode_many(keys)
        assert len(ids) == 4
        assert [VideoId.decode(i) for i in ids] == keys
