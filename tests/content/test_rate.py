"""Tests for the convex size-vs-quality model (Fig. 1a)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.rate import (
    QualityRateCurve,
    RateModel,
    delay_slope_check,
    is_convex_increasing,
    storage_footprint_gb,
)
from repro.errors import ConfigurationError


class TestQualityRateCurve:
    def test_valid_curve(self):
        curve = QualityRateCurve((1.0, 2.0, 4.0))
        assert curve.num_levels == 3
        assert curve.size(1) == 1.0
        assert curve.size(3) == 4.0

    def test_level_zero_is_free(self):
        curve = QualityRateCurve((1.0, 2.0))
        assert curve.size(0) == 0.0

    def test_rejects_out_of_range_level(self):
        curve = QualityRateCurve((1.0, 2.0))
        with pytest.raises(ConfigurationError):
            curve.size(3)
        with pytest.raises(ConfigurationError):
            curve.size(-1)

    def test_rejects_non_increasing(self):
        with pytest.raises(ConfigurationError):
            QualityRateCurve((2.0, 2.0))
        with pytest.raises(ConfigurationError):
            QualityRateCurve((2.0, 1.0))

    def test_rejects_concave(self):
        # Increments 3, 1: decreasing -> not convex.
        with pytest.raises(ConfigurationError):
            QualityRateCurve((1.0, 4.0, 5.0))

    def test_rejects_non_positive_base(self):
        with pytest.raises(ConfigurationError):
            QualityRateCurve((0.0, 1.0))

    def test_max_level_within(self):
        curve = QualityRateCurve((1.0, 2.0, 4.0))
        assert curve.max_level_within(0.5) == 0
        assert curve.max_level_within(2.0) == 2
        assert curve.max_level_within(100.0) == 3


class TestRateModel:
    def test_fig1a_convex_increasing(self, rate_model):
        """The Fig. 1a property for arbitrary contents."""
        for content in (0, 1, 17, 999):
            curve = rate_model.curve(content)
            assert is_convex_increasing(curve.sizes)

    def test_deterministic_per_content(self, rate_model):
        assert rate_model.curve(42).sizes == rate_model.curve(42).sizes
        other_model = RateModel(seed=0)
        assert rate_model.curve(42).sizes == other_model.curve(42).sizes

    def test_different_contents_differ(self, rate_model):
        assert rate_model.curve(1).sizes != rate_model.curve(2).sizes

    def test_seed_changes_curves(self):
        a = RateModel(seed=0).curve(5)
        b = RateModel(seed=1).curve(5)
        assert a.sizes != b.sizes

    def test_medium_level_calibration(self):
        """A nominal content's mid-level sizes average to ~36 Mbps."""
        model = RateModel(content_spread=0.0)
        curve = model.curve(0)
        mid = 0.5 * (curve.size(3) + curve.size(4))
        assert mid == pytest.approx(36.0, rel=1e-6)

    def test_content_spread_bounds(self):
        model = RateModel(content_spread=0.2)
        nominal = model.nominal_base_mbps
        for content in range(50):
            base = model.curve(content).size(1)
            assert 0.8 * nominal - 1e-9 <= base <= 1.2 * nominal + 1e-9

    def test_level_ratio_override(self):
        steep = RateModel(content_spread=0.0)
        flat = RateModel(content_spread=0.0, level_ratio=1.25)
        steep_span = steep.curve(0).size(6) / steep.curve(0).size(1)
        flat_span = flat.curve(0).size(6) / flat.curve(0).size(1)
        assert flat_span < steep_span
        assert flat_span == pytest.approx(1.25 ** 5)

    def test_rejects_bad_level_ratio(self):
        with pytest.raises(ConfigurationError):
            RateModel(level_ratio=1.0)

    def test_rejects_bad_spread(self):
        with pytest.raises(ConfigurationError):
            RateModel(content_spread=1.5)

    def test_tile_curve_scales(self, rate_model):
        full = rate_model.curve(3)
        half = rate_model.tile_curve(3, tiles_delivered=2, tiles_total=4)
        for level in range(1, 7):
            assert half.size(level) == pytest.approx(full.size(level) / 2)

    def test_tile_curve_rejects_bad_count(self, rate_model):
        with pytest.raises(ConfigurationError):
            rate_model.tile_curve(0, tiles_delivered=0)
        with pytest.raises(ConfigurationError):
            rate_model.tile_curve(0, tiles_delivered=5)

    def test_curves_batch(self, rate_model):
        curves = rate_model.curves([1, 2, 3])
        assert len(curves) == 3
        assert curves[0].sizes == rate_model.curve(1).sizes

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_every_content_curve_valid(self, content_id):
        model = RateModel(seed=4)
        curve = model.curve(content_id)
        assert is_convex_increasing(curve.sizes)
        assert curve.size(1) > 0


class TestDelayComposition:
    def test_mm1_composition_convex(self, rate_model):
        """d(f(q)) convex along the curve — the Section II assumption."""
        for content in range(10):
            curve = rate_model.curve(content)
            assert delay_slope_check(curve, bandwidth=150.0)


class TestStorageFootprint:
    def test_scales_with_cells(self, rate_model):
        small = storage_footprint_gb(rate_model, num_cells=100)
        large = storage_footprint_gb(rate_model, num_cells=200)
        assert large > small > 0

    def test_zero_cells(self, rate_model):
        assert storage_footprint_gb(rate_model, num_cells=0) == 0.0

    def test_rejects_negative_cells(self, rate_model):
        with pytest.raises(ConfigurationError):
            storage_footprint_gb(rate_model, num_cells=-1)

    def test_paper_scale_footprint(self, rate_model):
        """A paper-scale grid lands in the hundreds-of-GB regime.

        Section VI quotes 171 GB for the Office scene on a 5 cm grid;
        our parametric database should be the same order of magnitude
        for a comparable cell count.
        """
        # An ~8 m x 4 m room at 5 cm granularity ~ 12,800 cells.
        footprint = storage_footprint_gb(rate_model, num_cells=12_800)
        assert 20.0 < footprint < 2000.0
