"""Tests for the CRF <-> quality level mapping."""

import pytest

from repro.content.crf import (
    crf_to_level,
    level_to_crf,
    quality_levels,
    size_ratio_per_level,
)
from repro.errors import ConfigurationError


class TestQualityLevels:
    def test_default_levels(self):
        assert quality_levels() == (1, 2, 3, 4, 5, 6)

    def test_custom_count(self):
        assert quality_levels(3) == (1, 2, 3)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            quality_levels(0)


class TestCrfMapping:
    def test_paper_mapping(self):
        # Section VI: CRF {15,19,23,27,31,35} -> levels {6,5,4,3,2,1}.
        assert level_to_crf(6) == 15
        assert level_to_crf(1) == 35
        assert level_to_crf(4) == 23

    def test_roundtrip(self):
        for level in range(1, 7):
            assert crf_to_level(level_to_crf(level)) == level

    def test_rejects_out_of_range_level(self):
        with pytest.raises(ConfigurationError):
            level_to_crf(0)
        with pytest.raises(ConfigurationError):
            level_to_crf(7)

    def test_rejects_unknown_crf(self):
        with pytest.raises(ConfigurationError):
            crf_to_level(18)


class TestSizeRatio:
    def test_paper_step_ratio(self):
        # 4-point CRF step with 6-point doubling -> 2^(2/3).
        assert size_ratio_per_level(4.0) == pytest.approx(2 ** (4 / 6))

    def test_larger_step_larger_ratio(self):
        assert size_ratio_per_level(6.0) > size_ratio_per_level(4.0)

    def test_rejects_non_positive_step(self):
        with pytest.raises(ConfigurationError):
            size_ratio_per_level(0.0)
