"""Tests for equirectangular projection and FoV geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.projection import (
    EquirectangularProjection,
    FieldOfView,
    angular_difference_deg,
    fov_solid_angle_fraction,
    wrap_angle_deg,
)
from repro.errors import ConfigurationError


class TestAngles:
    def test_wrap_identity_in_range(self):
        assert wrap_angle_deg(0.0) == 0.0
        assert wrap_angle_deg(-179.0) == -179.0
        assert wrap_angle_deg(179.0) == 179.0

    def test_wrap_at_boundary(self):
        assert wrap_angle_deg(180.0) == -180.0
        assert wrap_angle_deg(-180.0) == -180.0

    def test_wrap_multiple_turns(self):
        assert wrap_angle_deg(720.0 + 10.0) == pytest.approx(10.0)
        assert wrap_angle_deg(-370.0) == pytest.approx(-10.0)

    @given(st.floats(-10_000, 10_000, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_wrap_always_in_range(self, angle):
        wrapped = wrap_angle_deg(angle)
        assert -180.0 <= wrapped < 180.0

    def test_angular_difference(self):
        assert angular_difference_deg(170.0, -170.0) == pytest.approx(20.0)
        assert angular_difference_deg(10.0, 350.0) == pytest.approx(20.0)
        assert angular_difference_deg(0.0, 180.0) == pytest.approx(180.0)


class TestFieldOfView:
    def test_defaults(self):
        fov = FieldOfView()
        assert fov.horizontal_deg == 90.0
        assert fov.vertical_deg == 90.0

    def test_rejects_bad_extents(self):
        with pytest.raises(ConfigurationError):
            FieldOfView(horizontal_deg=0.0)
        with pytest.raises(ConfigurationError):
            FieldOfView(horizontal_deg=400.0)
        with pytest.raises(ConfigurationError):
            FieldOfView(vertical_deg=200.0)

    def test_margin_expands_both_axes(self):
        enlarged = FieldOfView().with_margin(15.0)
        assert enlarged.horizontal_deg == 120.0
        assert enlarged.vertical_deg == 120.0

    def test_margin_saturates(self):
        enlarged = FieldOfView(350.0, 170.0).with_margin(30.0)
        assert enlarged.horizontal_deg == 360.0
        assert enlarged.vertical_deg == 180.0

    def test_margin_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FieldOfView().with_margin(-1.0)

    def test_pitch_range_clamped_at_poles(self):
        fov = FieldOfView()
        lo, hi = fov.pitch_range(80.0)
        assert hi == 90.0
        assert lo == pytest.approx(35.0)

    def test_contains(self):
        fov = FieldOfView()
        assert fov.contains(10.0, 10.0, center_yaw=0.0, center_pitch=0.0)
        assert not fov.contains(50.0, 0.0, center_yaw=0.0, center_pitch=0.0)
        # Across the wrap boundary.
        assert fov.contains(-175.0, 0.0, center_yaw=175.0, center_pitch=0.0)


class TestSolidAngle:
    def test_paper_fov_fraction(self):
        """90x90 FoV covers ~18-20% of the sphere (Section II)."""
        fraction = fov_solid_angle_fraction(FieldOfView())
        assert 0.15 < fraction < 0.22

    def test_full_sphere(self):
        fraction = fov_solid_angle_fraction(FieldOfView(360.0, 180.0))
        assert fraction == pytest.approx(1.0)

    def test_monotone_in_extent(self):
        small = fov_solid_angle_fraction(FieldOfView(60.0, 60.0))
        large = fov_solid_angle_fraction(FieldOfView(120.0, 120.0))
        assert large > small


class TestEquirectangularProjection:
    def test_default_quad_hd(self):
        proj = EquirectangularProjection()
        assert (proj.width, proj.height) == (2560, 1440)

    def test_rejects_degenerate(self):
        with pytest.raises(ConfigurationError):
            EquirectangularProjection(width=0)

    def test_center_maps_to_middle(self):
        proj = EquirectangularProjection()
        u, v = proj.to_uv(0.0, 0.0)
        assert u == pytest.approx(0.5)
        assert v == pytest.approx(0.5)

    def test_poles(self):
        proj = EquirectangularProjection()
        assert proj.to_uv(0.0, 90.0)[1] == pytest.approx(0.0)
        assert proj.to_uv(0.0, -90.0)[1] == pytest.approx(1.0, abs=1e-9)

    def test_pixel_mapping_in_bounds(self):
        proj = EquirectangularProjection()
        for yaw, pitch in [(-180.0, 90.0), (179.9, -90.0), (0.0, 0.0)]:
            x, y = proj.to_pixel(yaw, pitch)
            assert 0 <= x < proj.width
            assert 0 <= y < proj.height

    def test_rejects_bad_pitch(self):
        with pytest.raises(ConfigurationError):
            EquirectangularProjection().to_uv(0.0, 91.0)

    @given(
        st.floats(-180.0, 179.999, allow_nan=False),
        st.floats(-89.999, 89.999, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, yaw, pitch):
        proj = EquirectangularProjection()
        u, v = proj.to_uv(yaw, pitch)
        yaw2, pitch2 = proj.to_direction(u, v)
        assert angular_difference_deg(yaw, yaw2) < 1e-6
        assert abs(pitch - pitch2) < 1e-6

    def test_to_direction_rejects_out_of_range(self):
        proj = EquirectangularProjection()
        with pytest.raises(ConfigurationError):
            proj.to_direction(1.0, 0.5)
        with pytest.raises(ConfigurationError):
            proj.to_direction(-0.1, 0.5)
