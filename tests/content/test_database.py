"""Tests for the tile database and the two runtime caches."""

import pytest

from repro.content.database import ClientTileCache, ServerTileCache, TileDatabase
from repro.content.rate import RateModel
from repro.content.tiles import GridWorld, TileGrid, TileKey
from repro.errors import ConfigurationError


@pytest.fixture
def database():
    world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.1)
    return TileDatabase(world, TileGrid(), RateModel(seed=0))


class TestTileDatabase:
    def test_tile_rate_positive_and_increasing_in_level(self, database):
        rates = [
            database.tile_rate_mbps(TileKey(5, 0, level)) for level in range(1, 7)
        ]
        assert all(r > 0 for r in rates)
        assert rates == sorted(rates)

    def test_tile_rate_uses_calibration(self, database):
        key = TileKey(5, 0, 3)
        curve = database.rate_model.curve(5)
        expected = curve.size(3) / database.typical_tiles_delivered
        assert database.tile_rate_mbps(key) == pytest.approx(expected)

    def test_typical_delivery_matches_nominal_curve(self, database):
        """4 tiles at one level cost exactly the nominal f^R(q)."""
        curve = database.rate_model.curve(7)
        total = sum(
            database.tile_rate_mbps(TileKey(7, t, 4)) for t in range(4)
        )
        assert total == pytest.approx(curve.size(4))

    def test_tile_rate_rejects_bad_tile_index(self, database):
        with pytest.raises(ConfigurationError):
            database.tile_rate_mbps(TileKey(0, 7, 1))

    def test_tile_size_bits(self, database):
        key = TileKey(0, 0, 2)
        bits = database.tile_size_bits(key, slot_s=1.0 / 60.0)
        assert bits == pytest.approx(
            database.tile_rate_mbps(key) * 1e6 / 60.0
        )

    def test_tiles_for_sorts_and_dedups(self, database):
        keys = database.tiles_for(3, [2, 0, 2], level=1)
        assert [k.tile_index for k in keys] == [0, 2]
        assert all(k.cell_id == 3 and k.level == 1 for k in keys)

    def test_footprint_positive(self, database):
        assert database.total_footprint_gb() > 0

    def test_rejects_bad_typical_count(self):
        world = GridWorld(0.0, 1.0, 0.0, 1.0, cell_size=0.1)
        with pytest.raises(ConfigurationError):
            TileDatabase(world, typical_tiles_delivered=0.0)

    def test_video_ids_for(self, database):
        ids = database.video_ids_for(3, [0, 1], level=2)
        assert len(ids) == 2
        assert len(set(ids)) == 2


class TestServerTileCache:
    def test_window_follows_user(self, database):
        cache = ServerTileCache(database, radius_cells=1)
        center = database.world.cell_of(0.55, 0.55)
        loaded, evicted = cache.move_to(center)
        assert loaded == 9
        assert evicted == 0
        assert cache.center_cell == center

    def test_incremental_move_loads_only_new_cells(self, database):
        cache = ServerTileCache(database, radius_cells=1)
        cache.move_to(database.world.cell_of(0.55, 0.55))
        loaded, evicted = cache.move_to(database.world.cell_of(0.65, 0.55))
        assert loaded == 3
        assert evicted == 3

    def test_lookup_hits_and_misses(self, database):
        cache = ServerTileCache(database, radius_cells=1)
        center = database.world.cell_of(0.55, 0.55)
        cache.move_to(center)
        assert cache.lookup(center)
        far = database.world.cell_of(0.05, 0.05)
        assert not cache.lookup(far)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio() == pytest.approx(0.5)

    def test_hit_ratio_empty(self, database):
        cache = ServerTileCache(database)
        assert cache.hit_ratio() == 0.0

    def test_rejects_negative_radius(self, database):
        with pytest.raises(ConfigurationError):
            ServerTileCache(database, radius_cells=-1)


class TestClientTileCache:
    def test_insert_and_contains(self):
        cache = ClientTileCache(capacity_tiles=4)
        assert cache.insert(100) == []
        assert 100 in cache
        assert len(cache) == 1

    def test_eviction_releases_oldest(self):
        cache = ClientTileCache(capacity_tiles=2)
        cache.insert(1)
        cache.insert(2)
        released = cache.insert(3)
        assert released == [1]
        assert 1 not in cache
        assert 2 in cache and 3 in cache

    def test_reinsert_refreshes_recency(self):
        cache = ClientTileCache(capacity_tiles=2)
        cache.insert(1)
        cache.insert(2)
        cache.insert(1)  # refresh 1 -> 2 becomes oldest
        released = cache.insert(3)
        assert released == [2]

    def test_reinsert_returns_no_release(self):
        cache = ClientTileCache(capacity_tiles=2)
        cache.insert(1)
        assert cache.insert(1) == []
        assert len(cache) == 1

    def test_release_all(self):
        cache = ClientTileCache(capacity_tiles=4)
        for vid in (1, 2, 3):
            cache.insert(vid)
        released = cache.release_all()
        assert sorted(released) == [1, 2, 3]
        assert len(cache) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            ClientTileCache(capacity_tiles=0)
