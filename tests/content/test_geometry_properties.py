"""Property-based tests for the FoV/tile geometry.

The coverage indicator's correctness rests on a geometric contract:
every view direction inside a FoV must belong to a tile in that FoV's
overlap set.  These tests verify it by sampling directions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.projection import FieldOfView, wrap_angle_deg
from repro.content.tiles import GridWorld, TileGrid
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose

yaw_st = st.floats(-180.0, 179.999, allow_nan=False)
pitch_st = st.floats(-89.0, 89.0, allow_nan=False)
extent_st = st.floats(20.0, 170.0, allow_nan=False)


@given(yaw_st, pitch_st, extent_st, extent_st)
@settings(max_examples=150, deadline=None)
def test_fov_interior_directions_covered_by_overlap_set(
    center_yaw, center_pitch, h_extent, v_extent
):
    """Any direction inside the FoV maps to an overlapped tile."""
    grid = TileGrid()
    fov = FieldOfView(h_extent, min(v_extent, 178.0))
    tiles = grid.tiles_overlapping(center_yaw, center_pitch, fov)
    # Sample the FoV interior on a coarse lattice.
    for fy in (-0.49, -0.25, 0.0, 0.25, 0.49):
        for fp in (-0.49, 0.0, 0.49):
            yaw = wrap_angle_deg(center_yaw + fy * fov.horizontal_deg)
            pitch = center_pitch + fp * fov.vertical_deg
            pitch = min(max(pitch, -90.0), 90.0)
            assert grid.tile_of(yaw, pitch) in tiles


@given(yaw_st, pitch_st)
@settings(max_examples=100, deadline=None)
def test_perfect_prediction_always_covered(yaw, pitch):
    """evaluate(p, p) must report coverage for any pose."""
    world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
    evaluator = CoverageEvaluator(world, TileGrid(), FieldOfView(), margin_deg=10.0)
    pose = Pose(4.0, 4.0, 1.6, yaw, pitch)
    assert evaluator.evaluate(pose, pose).covered


@given(yaw_st, pitch_st, st.floats(0.0, 40.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_margin_monotone_in_delivered_tiles(yaw, pitch, margin):
    """A larger margin never delivers fewer tiles."""
    world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
    narrow = CoverageEvaluator(world, TileGrid(), FieldOfView(), margin_deg=margin)
    wide = CoverageEvaluator(
        world, TileGrid(), FieldOfView(), margin_deg=margin + 10.0
    )
    pose = Pose(4.0, 4.0, 1.6, yaw, pitch)
    assert narrow.tiles_to_deliver(pose) <= wide.tiles_to_deliver(pose)


@given(yaw_st, pitch_st, st.floats(-15.0, 15.0), st.floats(-15.0, 15.0))
@settings(max_examples=100, deadline=None)
def test_small_orientation_errors_absorbed_by_margin(
    yaw, pitch, yaw_err, pitch_err
):
    """Errors strictly inside the margin never break coverage."""
    world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
    evaluator = CoverageEvaluator(
        world, TileGrid(), FieldOfView(), margin_deg=16.0
    )
    predicted = Pose(4.0, 4.0, 1.6, yaw, pitch)
    actual_pitch = min(max(pitch + pitch_err, -90.0), 90.0)
    actual = Pose(4.0, 4.0, 1.6, yaw + yaw_err, actual_pitch)
    assert evaluator.evaluate(predicted, actual).covered
