"""Tests for the GoP frame-size burstiness model."""

import numpy as np
import pytest

from repro.content.gop import GopModel
from repro.errors import ConfigurationError


class TestGopModel:
    def test_disabled_by_default(self):
        model = GopModel()
        assert not model.enabled
        assert model.multiplier(0) == 1.0
        assert model.multiplier(123, stream_id=4) == 1.0
        assert not model.is_i_frame(0)

    def test_i_frames_periodic(self):
        model = GopModel(gop_length=30, stagger=False)
        i_slots = [s for s in range(90) if model.is_i_frame(s)]
        assert i_slots == [0, 30, 60]

    def test_i_frame_larger_than_p(self):
        model = GopModel(gop_length=30, i_to_p_ratio=5.0, stagger=False)
        i_size = model.multiplier(0)
        p_size = model.multiplier(1)
        assert i_size == pytest.approx(5.0 * p_size)
        assert p_size < 1.0 < i_size

    def test_gop_averages_to_one(self):
        for g, ratio in [(10, 3.0), (30, 5.0), (60, 8.0)]:
            model = GopModel(gop_length=g, i_to_p_ratio=ratio, stagger=False)
            multipliers = [model.multiplier(s) for s in range(g)]
            assert np.mean(multipliers) == pytest.approx(1.0)
            assert model.mean_multiplier() == pytest.approx(1.0)

    def test_stagger_desynchronises_streams(self):
        model = GopModel(gop_length=30, stagger=True)
        i_slots_a = {s for s in range(30) if model.is_i_frame(s, stream_id=0)}
        i_slots_b = {s for s in range(30) if model.is_i_frame(s, stream_id=1)}
        assert i_slots_a != i_slots_b

    def test_no_stagger_synchronises(self):
        model = GopModel(gop_length=30, stagger=False)
        for stream in range(5):
            assert model.is_i_frame(0, stream_id=stream)

    def test_ratio_one_is_constant(self):
        model = GopModel(gop_length=10, i_to_p_ratio=1.0, stagger=False)
        for s in range(10):
            assert model.multiplier(s) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GopModel(gop_length=-1)
        with pytest.raises(ConfigurationError):
            GopModel(gop_length=10, i_to_p_ratio=0.5)
        with pytest.raises(ConfigurationError):
            GopModel(gop_length=10).multiplier(-1)


class TestSystemIntegration:
    def test_experiment_with_gop_burstiness(self):
        from dataclasses import replace

        from repro.core import DensityValueGreedyAllocator
        from repro.system import SystemExperiment, setup1_config
        from repro.system.experiment import scaled_config

        smooth = scaled_config(setup1_config(seed=8), duration_slots=240)
        bursty = replace(smooth, gop_length=30, gop_i_to_p_ratio=5.0)
        smooth_result = SystemExperiment(smooth).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        bursty_result = SystemExperiment(bursty).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        # Burstiness makes I-frame slots overshoot: FPS must not rise.
        assert bursty_result.mean_fps() <= smooth_result.mean_fps() + 0.5
        for user in bursty_result.users:
            assert 0.0 <= user.quality <= 6.0
