"""Tests for the real-dataset parsers."""

import pytest

from repro.errors import TraceError
from repro.traces.datasets import load_bandwidth_log, load_fcc_webget_csv


@pytest.fixture
def fcc_csv(tmp_path):
    path = tmp_path / "curr_webget.csv"
    path.write_text(
        "unit_id,dtime,target,bytes_sec\n"
        "100,2021-03-01 10:00:00,example.com,5000000\n"
        "100,2021-03-01 10:00:10,example.com,6000000\n"
        "100,2021-03-01 10:00:20,example.com,4000000\n"
        "200,2021-03-01 10:00:00,example.com,2500000\n"
        "200,2021-03-01 10:01:00,example.com,2500000\n"
    )
    return path


class TestFccWebgetCsv:
    def test_per_unit_traces(self, fcc_csv):
        traces = load_fcc_webget_csv(fcc_csv)
        assert set(traces) == {"100", "200"}
        trace = traces["100"]
        assert len(trace.segments) == 2
        # bytes_sec 5e6 -> 40 Mbps for 10 seconds.
        assert trace.segments[0].duration_s == pytest.approx(10.0)
        assert trace.segments[0].mbps == pytest.approx(40.0)

    def test_unit_filter(self, fcc_csv):
        traces = load_fcc_webget_csv(fcc_csv, unit_id="200")
        assert set(traces) == {"200"}

    def test_gap_truncated(self, fcc_csv):
        traces = load_fcc_webget_csv(fcc_csv, max_hold_s=30.0)
        # Unit 200's two samples are 60 s apart: truncated to 30 s.
        assert traces["200"].segments[0].duration_s == pytest.approx(30.0)

    def test_rows_unordered_are_sorted(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text(
            "unit_id,dtime,bytes_sec\n"
            "1,2021-03-01 10:00:10,2000000\n"
            "1,2021-03-01 10:00:00,1000000\n"
        )
        trace = load_fcc_webget_csv(path)["1"]
        assert trace.segments[0].mbps == pytest.approx(8.0)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("unit_id,when\n1,2021-03-01\n")
        with pytest.raises(TraceError):
            load_fcc_webget_csv(path)

    def test_bad_rate(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("unit_id,dtime,bytes_sec\n1,2021-03-01 10:00:00,abc\n")
        with pytest.raises(TraceError):
            load_fcc_webget_csv(path)

    def test_bad_time(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("unit_id,dtime,bytes_sec\n1,yesterday,100\n")
        with pytest.raises(TraceError):
            load_fcc_webget_csv(path)

    def test_unknown_unit_requested(self, fcc_csv):
        with pytest.raises(TraceError):
            load_fcc_webget_csv(fcc_csv, unit_id="999")

    def test_alternate_time_format(self, tmp_path):
        path = tmp_path / "alt.csv"
        path.write_text(
            "unit_id,dtime,bytes_sec\n"
            "1,03/01/2021 10:00,1000000\n"
            "1,03/01/2021 10:01,1000000\n"
        )
        assert "1" in load_fcc_webget_csv(path)


class TestBandwidthLog:
    def test_parses_intervals(self, tmp_path):
        path = tmp_path / "lte.log"
        # 1 s intervals; 1.25 MB -> 10 Mbps.
        path.write_text("0 0\n1000 1250000\n2000 2500000\n")
        trace = load_bandwidth_log(path, name="lte-1")
        assert trace.name == "lte-1"
        assert len(trace.segments) == 2
        assert trace.segments[0].mbps == pytest.approx(10.0)
        assert trace.segments[1].mbps == pytest.approx(20.0)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "lte.log"
        path.write_text("# header\n\n0 0\n500 625000\n")
        trace = load_bandwidth_log(path)
        assert trace.segments[0].duration_s == pytest.approx(0.5)
        assert trace.segments[0].mbps == pytest.approx(10.0)

    def test_non_increasing_timestamps(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("1000 1\n1000 2\n")
        with pytest.raises(TraceError):
            load_bandwidth_log(path)

    def test_short_file(self, tmp_path):
        path = tmp_path / "one.log"
        path.write_text("0 100\n")
        with pytest.raises(TraceError):
            load_bandwidth_log(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("0\n")
        with pytest.raises(TraceError):
            load_bandwidth_log(path)

    def test_feeds_pipeline(self, tmp_path):
        """Parsed traces slot-expand like the synthetic ones."""
        path = tmp_path / "lte.log"
        path.write_text("0 0\n1000 1250000\n2000 1250000\n")
        trace = load_bandwidth_log(path).clamped()
        slots = trace.to_slots(1 / 60)
        assert len(slots) == 120
        assert (slots >= 20.0).all()
