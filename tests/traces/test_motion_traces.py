"""Tests for the synthetic 6-DoF motion trace generator."""

import numpy as np
import pytest

from repro.content.tiles import GridWorld
from repro.errors import ConfigurationError
from repro.traces.motion import MotionConfig, MotionTraceGenerator


@pytest.fixture
def world():
    return GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)


@pytest.fixture
def generator(world):
    return MotionTraceGenerator(world)


class TestMotionTraceGenerator:
    def test_length(self, generator, rng):
        poses = generator.generate(500, rng)
        assert len(poses) == 500

    def test_positions_inside_world(self, generator, rng, world):
        for pose in generator.generate(2000, rng):
            assert world.x_min <= pose.x <= world.x_max
            assert world.y_min <= pose.y <= world.y_max

    def test_speed_bounded(self, generator, rng):
        cfg = generator.config
        poses = generator.generate(2000, rng)
        max_step = cfg.walk_speed_mps * np.exp(3 * cfg.speed_jitter) * generator.slot_s
        for a, b in zip(poses, poses[1:]):
            assert a.translation_distance(b) <= max_step + 1e-9

    def test_pitch_within_limits(self, generator, rng):
        limit = generator.config.pitch_limit_deg
        for pose in generator.generate(2000, rng):
            assert -limit <= pose.pitch <= limit

    def test_eye_height_constant(self, generator, rng):
        poses = generator.generate(100, rng)
        assert all(p.z == generator.config.eye_height_m for p in poses)

    def test_deterministic_given_seed(self, generator):
        a = generator.generate(300, np.random.default_rng(9))
        b = generator.generate(300, np.random.default_rng(9))
        assert all(pa == pb for pa, pb in zip(a, b))

    def test_user_traces_differ(self, generator):
        traces = generator.generate_users(3, 200, seed=0)
        assert len(traces) == 3
        assert traces[0][50] != traces[1][50]

    def test_head_actually_moves(self, generator, rng):
        poses = generator.generate(2000, rng)
        yaws = {round(p.yaw, 1) for p in poses}
        assert len(yaws) > 50

    def test_user_actually_walks(self, generator, rng):
        poses = generator.generate(3000, rng)
        assert poses[0].translation_distance(poses[-1]) > 0.1 or max(
            poses[0].translation_distance(p) for p in poses
        ) > 0.5

    def test_validation(self, world, generator, rng):
        with pytest.raises(ConfigurationError):
            MotionTraceGenerator(world, slot_s=0.0)
        with pytest.raises(ConfigurationError):
            generator.generate(0, rng)
        with pytest.raises(ConfigurationError):
            generator.generate_users(0, 10)
        with pytest.raises(ConfigurationError):
            MotionConfig(walk_speed_mps=0.0)
        with pytest.raises(ConfigurationError):
            MotionConfig(pause_probability=2.0)
        with pytest.raises(ConfigurationError):
            MotionConfig(saccade_probability=-0.1)


class TestMotionPresets:
    def test_walking_is_default(self):
        assert MotionConfig.walking() == MotionConfig()

    def test_seated_moves_less(self, world):
        import numpy as np

        def travel(config, seed=5):
            generator = MotionTraceGenerator(world, config)
            poses = generator.generate(1200, np.random.default_rng(seed))
            return sum(a.translation_distance(b) for a, b in zip(poses, poses[1:]))

        assert travel(MotionConfig.seated()) < 0.3 * travel(MotionConfig.walking())

    def test_seated_head_still_moves(self, world):
        import numpy as np

        generator = MotionTraceGenerator(world, MotionConfig.seated())
        poses = generator.generate(1200, np.random.default_rng(5))
        yaws = {round(p.yaw) for p in poses}
        assert len(yaws) > 20
