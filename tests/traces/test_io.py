"""Tests for trace file I/O."""

import pytest

from repro.errors import TraceError
from repro.prediction.pose import Pose
from repro.traces.io import (
    load_network_trace_csv,
    load_network_trace_json,
    load_pose_trace_csv,
    save_network_trace_csv,
    save_network_trace_json,
    save_pose_trace_csv,
)
from repro.traces.network import NetworkTrace, TraceSegment


@pytest.fixture
def trace():
    return NetworkTrace(
        [TraceSegment(1.5, 30.0), TraceSegment(2.0, 55.5)], name="demo"
    )


@pytest.fixture
def poses():
    return [
        Pose(1.0, 2.0, 1.6, 30.0, -5.0, 0.0),
        Pose(1.1, 2.0, 1.6, 32.0, -4.5, 0.0),
    ]


class TestNetworkTraceCsv:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_network_trace_csv(trace, path)
        loaded = load_network_trace_csv(path)
        assert [s.mbps for s in loaded.segments] == [30.0, 55.5]
        assert loaded.duration_s == pytest.approx(3.5)

    def test_headerless_csv(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.0,20\n2.0,40\n")
        loaded = load_network_trace_csv(path, name="raw")
        assert loaded.name == "raw"
        assert len(loaded.segments) == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("duration_s,mbps\n1.0,20\n\n2.0,40\n")
        assert len(load_network_trace_csv(path).segments) == 2

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,not-a-number\n")
        with pytest.raises(TraceError):
            load_network_trace_csv(path)

    def test_short_row_raises(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("1.0\n")
        with pytest.raises(TraceError):
            load_network_trace_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_network_trace_csv(path)


class TestNetworkTraceJson:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_network_trace_json(trace, path)
        loaded = load_network_trace_json(path)
        assert loaded.name == "demo"
        assert [s.duration_s for s in loaded.segments] == [1.5, 2.0]

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            load_network_trace_json(path)

    def test_missing_segments_raises(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(TraceError):
            load_network_trace_json(path)

    def test_empty_segments_raises(self, tmp_path):
        path = tmp_path / "none.json"
        path.write_text('{"name": "x", "segments": []}')
        with pytest.raises(TraceError):
            load_network_trace_json(path)


class TestPoseTraceCsv:
    def test_roundtrip(self, poses, tmp_path):
        path = tmp_path / "poses.csv"
        save_pose_trace_csv(poses, path)
        loaded = load_pose_trace_csv(path)
        assert loaded == poses

    def test_short_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(TraceError):
            load_pose_trace_csv(path)

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y,z,yaw,pitch,roll\n")
        with pytest.raises(TraceError):
            load_pose_trace_csv(path)
