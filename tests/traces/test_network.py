"""Tests for the synthetic network trace generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.traces.network import (
    FccWebBrowsingModel,
    LteMobilityModel,
    NetworkTrace,
    TraceCatalog,
    TraceSegment,
)
from repro.units import TRACE_MAX_MBPS, TRACE_MIN_MBPS


class TestTraceSegment:
    def test_valid(self):
        seg = TraceSegment(2.0, 50.0)
        assert seg.duration_s == 2.0

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            TraceSegment(0.0, 50.0)
        with pytest.raises(ConfigurationError):
            TraceSegment(1.0, -1.0)


class TestNetworkTrace:
    def trace(self):
        return NetworkTrace(
            [TraceSegment(1.0, 30.0), TraceSegment(2.0, 60.0), TraceSegment(1.0, 45.0)]
        )

    def test_duration(self):
        assert self.trace().duration_s == pytest.approx(4.0)

    def test_rate_at(self):
        trace = self.trace()
        assert trace.rate_at(0.5) == 30.0
        assert trace.rate_at(1.5) == 60.0
        assert trace.rate_at(3.5) == 45.0

    def test_rate_at_boundaries(self):
        trace = self.trace()
        assert trace.rate_at(0.0) == 30.0
        assert trace.rate_at(1.0) == 60.0

    def test_rate_at_rejects_out_of_range(self):
        trace = self.trace()
        with pytest.raises(TraceError):
            trace.rate_at(-0.1)
        with pytest.raises(TraceError):
            trace.rate_at(4.0)

    def test_requires_segments(self):
        with pytest.raises(TraceError):
            NetworkTrace([])

    def test_to_slots_shares_segment_rate(self):
        """Section IV: consecutive slots share a segment's bandwidth."""
        trace = self.trace()
        slots = trace.to_slots(slot_s=0.5)
        assert slots.tolist() == [30.0, 30.0, 60.0, 60.0, 60.0, 60.0, 45.0, 45.0]

    def test_to_slots_rejects_bad_slot(self):
        with pytest.raises(ConfigurationError):
            self.trace().to_slots(0.0)

    def test_clamped(self):
        trace = NetworkTrace([TraceSegment(1.0, 5.0), TraceSegment(1.0, 500.0)])
        clamped = trace.clamped()
        assert clamped.segments[0].mbps == TRACE_MIN_MBPS
        assert clamped.segments[1].mbps == TRACE_MAX_MBPS

    def test_clamped_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            self.trace().clamped(100.0, 20.0)

    def test_mean_mbps_duration_weighted(self):
        trace = NetworkTrace([TraceSegment(1.0, 30.0), TraceSegment(3.0, 50.0)])
        assert trace.mean_mbps() == pytest.approx((30.0 + 150.0) / 4.0)


class TestGenerators:
    @pytest.mark.parametrize("model_cls", [FccWebBrowsingModel, LteMobilityModel])
    def test_traces_clamped_and_full_length(self, model_cls, rng):
        trace = model_cls().generate(rng, duration_s=120.0)
        assert trace.duration_s == pytest.approx(120.0)
        for seg in trace.segments:
            assert TRACE_MIN_MBPS <= seg.mbps <= TRACE_MAX_MBPS

    @pytest.mark.parametrize("model_cls", [FccWebBrowsingModel, LteMobilityModel])
    def test_deterministic_given_seed(self, model_cls):
        a = model_cls().generate(np.random.default_rng(7), duration_s=60.0)
        b = model_cls().generate(np.random.default_rng(7), duration_s=60.0)
        assert [s.mbps for s in a.segments] == [s.mbps for s in b.segments]

    def test_multi_second_holds(self, rng):
        """Section IV: each throughput point lasts several seconds."""
        trace = FccWebBrowsingModel().generate(rng, duration_s=300.0)
        holds = [s.duration_s for s in trace.segments[:-1]]
        assert np.mean(holds) >= 1.0

    def test_lte_more_variable_than_fcc(self):
        """LTE traces vary more *within a trace* than fixed broadband.

        FCC traces sit near a subscribed tier; LTE traces wander with
        mobility.  (Across traces FCC also varies — different tiers —
        so the meaningful comparison is per-trace temporal CV.)
        """
        def mean_within_trace_cv(model, seed):
            cvs = []
            for k in range(20):
                trace = model.generate(np.random.default_rng((seed, k)), 300.0)
                rates = np.array([s.mbps for s in trace.segments])
                cvs.append(rates.std() / rates.mean())
            return float(np.mean(cvs))

        assert mean_within_trace_cv(LteMobilityModel(), 1) > mean_within_trace_cv(
            FccWebBrowsingModel(), 1
        )

    def test_generator_validation(self, rng):
        with pytest.raises(ConfigurationError):
            FccWebBrowsingModel().generate(rng, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            FccWebBrowsingModel(dip_probability=1.5)
        with pytest.raises(ConfigurationError):
            LteMobilityModel(handover_probability=-0.1)


class TestTraceCatalog:
    def test_half_fcc_half_lte(self):
        catalog = TraceCatalog(seed=0, duration_s=30.0)
        names = [catalog.trace_for(u).name for u in range(6)]
        assert all(n.startswith("fcc") for n in names[::2])
        assert all(n.startswith("lte") for n in names[1::2])

    def test_deterministic(self):
        a = TraceCatalog(seed=3, duration_s=30.0).trace_for(2, episode=1)
        b = TraceCatalog(seed=3, duration_s=30.0).trace_for(2, episode=1)
        assert [s.mbps for s in a.segments] == [s.mbps for s in b.segments]

    def test_lte_pool_reuse(self):
        """The small Ghent pool is reused across users (Section IV)."""
        catalog = TraceCatalog(seed=0, duration_s=30.0, lte_pool_size=2)
        names = {catalog.trace_for(u).name for u in range(1, 40, 2)}
        assert len(names) <= 2

    def test_episodes_differ_for_fcc_users(self):
        catalog = TraceCatalog(seed=0, duration_s=30.0)
        a = catalog.trace_for(0, episode=0)
        b = catalog.trace_for(0, episode=1)
        assert [s.mbps for s in a.segments] != [s.mbps for s in b.segments]

    def test_traces_for_users(self):
        catalog = TraceCatalog(seed=0, duration_s=30.0)
        traces = catalog.traces_for_users(5)
        assert len(traces) == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceCatalog(lte_pool_size=0)
        catalog = TraceCatalog(duration_s=30.0)
        with pytest.raises(ConfigurationError):
            catalog.trace_for(-1)
        with pytest.raises(ConfigurationError):
            catalog.traces_for_users(0)
