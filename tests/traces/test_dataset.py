"""Tests for the trace dataset and slot schedule."""

import numpy as np
import pytest

from repro.content.tiles import GridWorld
from repro.errors import ConfigurationError
from repro.prediction.pose import Pose
from repro.traces.dataset import SlotSchedule, TraceDataset, server_budget
from repro.traces.network import TraceCatalog


@pytest.fixture
def dataset():
    world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
    return TraceDataset(world, catalog=TraceCatalog(seed=0, duration_s=30.0), seed=0)


class TestSlotSchedule:
    def test_shape_validation(self):
        bandwidth = np.ones((2, 10))
        poses = [[Pose(0, 0, 0, 0, 0)] * 10 for _ in range(2)]
        schedule = SlotSchedule(bandwidth, poses, slot_s=1 / 60)
        assert schedule.num_users == 2
        assert schedule.num_slots == 10

    def test_rejects_mismatched_users(self):
        with pytest.raises(ConfigurationError):
            SlotSchedule(np.ones((2, 10)), [[Pose(0, 0, 0, 0, 0)] * 10], 1 / 60)

    def test_rejects_mismatched_slots(self):
        with pytest.raises(ConfigurationError):
            SlotSchedule(
                np.ones((1, 10)), [[Pose(0, 0, 0, 0, 0)] * 5], 1 / 60
            )

    def test_rejects_1d_bandwidth(self):
        with pytest.raises(ConfigurationError):
            SlotSchedule(np.ones(10), [[Pose(0, 0, 0, 0, 0)] * 10], 1 / 60)


class TestTraceDataset:
    def test_episode_shapes(self, dataset):
        schedule = dataset.episode(num_users=3, num_slots=200)
        assert schedule.num_users == 3
        assert schedule.num_slots == 200
        assert len(schedule.poses[0]) == 200

    def test_bandwidth_in_clamp_range(self, dataset):
        schedule = dataset.episode(3, 500)
        assert schedule.bandwidth_mbps.min() >= 20.0 - 1e-9
        assert schedule.bandwidth_mbps.max() <= 100.0 + 1e-9

    def test_short_traces_are_tiled(self, dataset):
        # 30 s catalog at 60 fps = 1800 slots; asking for more tiles.
        schedule = dataset.episode(1, 2000)
        assert schedule.num_slots == 2000

    def test_deterministic_per_episode(self, dataset):
        world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
        other = TraceDataset(
            world, catalog=TraceCatalog(seed=0, duration_s=30.0), seed=0
        )
        a = dataset.episode(2, 100)
        b = other.episode(2, 100)
        assert np.allclose(a.bandwidth_mbps, b.bandwidth_mbps)
        assert a.poses[1][50] == b.poses[1][50]

    def test_episodes_differ(self, dataset):
        a = dataset.episode(2, 100, episode=0)
        b = dataset.episode(2, 100, episode=1)
        assert a.poses[0][50] != b.poses[0][50]

    def test_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            dataset.episode(0, 10)
        with pytest.raises(ConfigurationError):
            dataset.episode(1, 0)


class TestServerBudget:
    def test_paper_rule(self):
        assert server_budget(5, 36.0)[0] == pytest.approx(180.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            server_budget(0, 36.0)
        with pytest.raises(ConfigurationError):
            server_budget(5, 0.0)


class TestAverageBandwidth:
    def test_per_user_means(self):
        from repro.traces.dataset import average_bandwidth

        bandwidth = np.array([[10.0, 20.0], [30.0, 50.0]])
        poses = [[Pose(0, 0, 0, 0, 0)] * 2 for _ in range(2)]
        schedule = SlotSchedule(bandwidth, poses, slot_s=1 / 60)
        means = average_bandwidth(schedule)
        assert means == [pytest.approx(15.0), pytest.approx(40.0)]
