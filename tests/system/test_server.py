"""Tests for the edge server planner."""

import pytest

from repro.content.database import TileDatabase
from repro.content.projection import FieldOfView
from repro.content.rate import RateModel
from repro.content.tiles import GridWorld, TileGrid, VideoId
from repro.core.allocation import DensityValueGreedyAllocator
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose
from repro.system.server import EdgeServer


def make_server(num_users=2, refresh=1, **kwargs):
    world = GridWorld(0.0, 8.0, 0.0, 8.0, cell_size=0.05)
    grid = TileGrid()
    database = TileDatabase(world, grid, RateModel(level_ratio=1.25, seed=0))
    coverage = CoverageEvaluator(world, grid, FieldOfView(), margin_deg=15.0)
    return EdgeServer(
        num_users,
        DensityValueGreedyAllocator(),
        QoEWeights.system_defaults(),
        database,
        coverage,
        server_budget_mbps=400.0,
        content_refresh_slots=refresh,
        **kwargs,
    )


def pose(x=4.0, y=4.0, yaw=0.0):
    return Pose(x, y, 1.6, yaw, 0.0)


def complete(server, plan, lost=(), achieved=55.0):
    """Helper: acknowledge a plan as fully delivered."""
    n = len(plan.users)
    delivered = []
    for user_plan in plan.users:
        ids = [VideoId.encode(k) for k in user_plan.missing_keys]
        delivered.append([i for i in ids if i not in lost])
    server.complete_slot(
        plan,
        indicators=[1 if u.level > 0 else 0 for u in plan.users],
        delays_slots=[0.5 if u.level > 0 else 0.0 for u in plan.users],
        achieved_mbps=[achieved] * n,
        delivered_ids=delivered,
        released_ids=[[] for _ in range(n)],
    )


class TestEdgeServer:
    def test_plans_skip_before_any_pose(self):
        server = make_server()
        plan = server.plan_slot()
        assert plan.levels == [0, 0]
        assert plan.demands_mbps == [0.0, 0.0]

    def test_plans_delivery_after_pose(self):
        server = make_server()
        for u in range(2):
            server.observe_pose(u, pose())
        plan = server.plan_slot()
        assert all(level >= 1 for level in plan.levels)
        assert all(len(u.missing_keys) > 0 for u in plan.users)
        assert all(u.demand_mbps > 0 for u in plan.users)

    def test_demand_matches_missing_tiles(self):
        server = make_server()
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        plan = server.plan_slot()
        for user_plan in plan.users:
            expected = sum(user_plan.missing_bits) / 1e6 / server.slot_s
            assert user_plan.demand_mbps == pytest.approx(expected)

    def test_dedup_within_static_epoch(self):
        """With a static scene, the second slot needs nothing new."""
        server = make_server(refresh=0)
        for u in range(2):
            server.observe_pose(u, pose())
        plan1 = server.plan_slot()
        complete(server, plan1)
        for u in range(2):
            server.observe_pose(u, pose())
        plan2 = server.plan_slot()
        # Same pose, same level, delivered tiles remembered.
        for u in range(2):
            if plan2.users[u].level == plan1.users[u].level:
                assert plan2.users[u].demand_mbps == pytest.approx(0.0)

    def test_refresh_invalidates_dedup(self):
        """With refresh=1 every slot transmits fresh content."""
        server = make_server(refresh=1)
        for u in range(2):
            server.observe_pose(u, pose())
        plan1 = server.plan_slot()
        complete(server, plan1)
        for u in range(2):
            server.observe_pose(u, pose())
        plan2 = server.plan_slot()
        for u in range(2):
            if plan2.users[u].level > 0:
                assert plan2.users[u].demand_mbps > 0.0

    def test_lost_tiles_not_marked_delivered(self):
        server = make_server(refresh=0)
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        plan = server.plan_slot()
        lost_id = VideoId.encode(plan.users[0].missing_keys[0])
        complete(server, plan, lost={lost_id})
        assert lost_id not in server._delivered[0]  # noqa: SLF001

    def test_release_acks_forget_tiles(self):
        server = make_server(refresh=0)
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        plan = server.plan_slot()
        complete(server, plan)
        some_id = VideoId.encode(plan.users[0].missing_keys[0])
        server.acknowledge_release(0, [some_id])
        assert some_id not in server._delivered[0]  # noqa: SLF001

    def test_cap_estimate_ema_on_active_slots(self):
        server = make_server(initial_cap_mbps=60.0, ema_alpha=0.5)
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        plan = server.plan_slot()
        complete(server, plan, achieved=40.0)
        # EMA moved halfway from 60 toward 40.
        assert server._cap_estimates[0] == pytest.approx(50.0)  # noqa: SLF001

    def test_cap_probe_on_idle_slots(self):
        server = make_server(initial_cap_mbps=60.0, cap_probe_gain=1.02)
        plan = server.plan_slot()  # everything skipped -> idle
        complete(server, plan, achieved=0.0)
        assert server._cap_estimates[0] == pytest.approx(61.2)  # noqa: SLF001

    def test_estimated_cap_discounted(self):
        server = make_server(initial_cap_mbps=60.0, safety_factor=0.9)
        assert server.estimated_cap(0) == pytest.approx(54.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_server(num_users=0)
        with pytest.raises(ConfigurationError):
            make_server(cap_probe_gain=0.5)
        with pytest.raises(ConfigurationError):
            make_server(refresh=-1)


class TestServerTileCacheWindow:
    def test_steady_movement_is_hits(self):
        """Slow movement keeps the memory window warm (Section V)."""
        server = make_server()
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        for step in range(30):
            plan = server.plan_slot()
            complete(server, plan)
            for u in range(2):
                # 1 cm per slot: well inside the 50 cm window.
                server.observe_pose(u, pose(x=4.0 + 0.01 * step))
        # Only the very first lookup can miss.
        assert server.cache_hit_ratio(0) > 0.9

    def test_teleport_misses_once(self):
        server = make_server(cache_miss_penalty_s=0.01)
        server.observe_pose(0, pose(x=1.0))
        server.observe_pose(1, pose(x=1.0))
        plan = server.plan_slot()
        complete(server, plan)
        assert plan.users[0].startup_delay_s > 0  # cold cache
        # Teleport across the room: outside the window -> miss again.
        for u in range(2):
            server.observe_pose(u, pose(x=7.0))
            server.observe_pose(u, pose(x=7.0))
        plan2 = server.plan_slot()
        assert plan2.users[0].startup_delay_s > 0

    def test_warm_cache_no_startup_delay(self):
        server = make_server()
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        first = server.plan_slot()
        complete(server, first)
        server.observe_pose(0, pose())
        server.observe_pose(1, pose())
        second = server.plan_slot()
        assert second.users[0].startup_delay_s == 0.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            make_server(cache_miss_penalty_s=-0.001)
