"""Failure-injection tests for the system emulation.

These drive the full experiment loop through hostile regimes —
starved links, constant interference, tiny client caches, saturating
decoders — and assert the system degrades gracefully (valid metrics,
no crashes, sane invariants) instead of producing garbage.
"""

from dataclasses import replace

import pytest

from repro.core import DensityValueGreedyAllocator
from repro.system import SystemExperiment, setup1_config
from repro.system.experiment import scaled_config


def tiny(config, **overrides):
    return replace(scaled_config(config, duration_slots=180), **overrides)


class TestHostileRegimes:
    def test_constant_interference(self):
        """Spectrum jammed 100% of the time at 20-25% capacity."""
        config = tiny(
            setup1_config(seed=1),
            interference_onset=1.0,
            interference_severity=(0.2, 0.25),
        )
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        for user in result.users:
            assert 0.0 <= user.quality <= 6.0
            assert user.fps is not None and 0.0 <= user.fps <= 60.0
        # Heavy interference must show up as lost frames.
        assert result.mean_fps() < 55.0

    def test_tiny_client_caches(self):
        """A 4-tile cache forces constant eviction/release traffic."""
        config = tiny(setup1_config(seed=2), client_cache_tiles=4)
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        assert result.num_users == 8
        assert all(u.delay >= 0.0 for u in result.users)

    def test_static_scene_with_tiny_cache_still_works(self):
        """Static content + tiny cache: dedup and eviction fight."""
        config = tiny(
            setup1_config(seed=2), client_cache_tiles=4,
            content_refresh_slots=0,
        )
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        assert result.mean("qoe") > -10.0  # finite, not exploded

    def test_saturating_decoders(self):
        """One slow decoder makes decode the bottleneck; frames drop."""
        config = tiny(
            setup1_config(seed=3), num_decoders=1, decode_rate_mbps=20.0
        )
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        assert result.mean_fps() < 40.0

    def test_throttles_below_base_level(self):
        """Guidelines below the level-1 size force skips, not crashes."""
        config = tiny(
            setup1_config(seed=4),
            throttle_guidelines=(8.0, 10.0),
            initial_cap_mbps=10.0,
        )
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        # Nearly everything is skipped or missed; metrics stay sane.
        assert result.mean("quality") < 2.0
        for user in result.users:
            assert user.fps is not None

    def test_single_user_system(self):
        config = tiny(setup1_config(seed=5), num_users=1)
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        assert result.num_users == 1

    def test_more_routers_than_users(self):
        config = tiny(setup1_config(seed=6), num_users=2, num_routers=2)
        result = SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0
        )
        assert result.num_users == 2
