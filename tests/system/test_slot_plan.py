"""Tests for the SlotPlan/UserPlan value objects."""

from repro.prediction.pose import Pose
from repro.system.server import SlotPlan, UserPlan


def user_plan(level=3, demand=25.0):
    return UserPlan(
        level=level,
        predicted_pose=Pose(1.0, 1.0, 1.6, 0.0, 0.0),
        cell_id=7,
        tile_indices=(0, 1, 2, 3),
        missing_keys=[],
        missing_bits=[],
        demand_mbps=demand,
        nominal_rate_mbps=26.0,
    )


class TestSlotPlan:
    def test_levels_property(self):
        plan = SlotPlan(slot=4, users=[user_plan(2), user_plan(5)])
        assert plan.levels == [2, 5]

    def test_demands_property(self):
        plan = SlotPlan(slot=0, users=[user_plan(demand=10.0), user_plan(demand=0.0)])
        assert plan.demands_mbps == [10.0, 0.0]

    def test_default_startup_delay(self):
        assert user_plan().startup_delay_s == 0.0
