"""Tests for the client-side emulation (decoders, cache, display)."""

import pytest

from repro.errors import ConfigurationError
from repro.system.client import Client, DecoderPool


class TestDecoderPool:
    def test_empty_frame(self):
        assert DecoderPool().decode_time_s([]) == 0.0
        assert DecoderPool().decode_time_s([0.0, 0.0]) == 0.0

    def test_single_tile(self):
        pool = DecoderPool(num_decoders=5, decode_rate_mbps=100.0)
        assert pool.decode_time_s([1e6]) == pytest.approx(0.01)

    def test_parallel_speedup(self):
        serial = DecoderPool(num_decoders=1, decode_rate_mbps=100.0)
        parallel = DecoderPool(num_decoders=4, decode_rate_mbps=100.0)
        tiles = [1e6] * 4
        assert parallel.decode_time_s(tiles) == pytest.approx(
            serial.decode_time_s(tiles) / 4
        )

    def test_makespan_is_busiest_decoder(self):
        pool = DecoderPool(num_decoders=2, decode_rate_mbps=100.0)
        # LPT: big job alone (0.03 s), two smaller share (0.02 s).
        assert pool.decode_time_s([3e6, 1e6, 1e6]) == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DecoderPool(num_decoders=0)
        with pytest.raises(ConfigurationError):
            DecoderPool(decode_rate_mbps=0.0)


class TestClient:
    def make_client(self, cache=10):
        return Client(0, cache_capacity_tiles=cache, slot_s=1 / 60)

    def test_successful_frame(self):
        client = self.make_client()
        outcome = client.receive_frame(
            [101, 102], [1e5, 1e5], [], transmission_s=0.01, covered=True, level=3
        )
        assert outcome.displayed
        assert outcome.indicator == 1
        assert outcome.viewed_quality == 3.0
        assert 101 in client.cache

    def test_late_frame_missed(self):
        client = self.make_client()
        outcome = client.receive_frame(
            [101], [1e5], [], transmission_s=0.05, covered=True, level=3
        )
        assert not outcome.on_time
        assert not outcome.displayed
        assert outcome.viewed_quality == 0.0

    def test_lost_tile_misses_frame(self):
        client = self.make_client()
        outcome = client.receive_frame(
            [101, 102], [1e5, 1e5], [1], transmission_s=0.01, covered=True, level=3
        )
        assert not outcome.tiles_complete
        assert not outcome.displayed
        # The lost tile must not enter the cache.
        assert 102 not in client.cache
        assert 101 in client.cache

    def test_uncovered_frame_displays_but_zero_quality(self):
        client = self.make_client()
        outcome = client.receive_frame(
            [101], [1e5], [], transmission_s=0.01, covered=False, level=4
        )
        assert outcome.displayed
        assert outcome.indicator == 0
        assert outcome.viewed_quality == 0.0

    def test_skip_slot(self):
        client = self.make_client()
        outcome = client.receive_frame([], [], [], 0.0, covered=False, level=0)
        assert not outcome.displayed
        assert outcome.level == 0
        assert outcome.delay_slots == 0.0

    def test_cached_frame_zero_transmission_displays(self):
        client = self.make_client()
        outcome = client.receive_frame([], [], [], 0.0, covered=True, level=4)
        assert outcome.displayed
        assert outcome.viewed_quality == 4.0

    def test_undecodable_frame(self):
        slow_pool = DecoderPool(num_decoders=1, decode_rate_mbps=1.0)
        client = Client(0, 10, slow_pool, slot_s=1 / 60)
        outcome = client.receive_frame(
            [101], [1e6], [], transmission_s=0.001, covered=True, level=2
        )
        assert not outcome.decodable
        assert not outcome.displayed

    def test_eviction_surfaces_release_acks(self):
        client = self.make_client(cache=2)
        client.receive_frame([1, 2], [1e4, 1e4], [], 0.001, True, 1)
        client.receive_frame([3], [1e4], [], 0.001, True, 1)
        assert client.last_released == [1]

    def test_fps_accounting(self):
        client = self.make_client()
        client.receive_frame([1], [1e4], [], 0.001, True, 3)   # displayed
        client.receive_frame([2], [1e4], [], 0.050, True, 3)   # late
        client.receive_frame([], [], [], 0.0, False, 0)        # skipped
        client.receive_frame([3], [1e4], [], 0.001, True, 3)   # displayed
        assert client.fps(60.0) == pytest.approx(30.0)

    def test_fps_empty(self):
        assert self.make_client().fps(60.0) == 0.0

    def test_mean_delay(self):
        client = self.make_client()
        client.receive_frame([1], [1e4], [], 1 / 120, True, 3)
        client.receive_frame([2], [1e4], [], 1 / 60, True, 3)
        assert client.mean_delay_slots() == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Client(-1, 10)
        with pytest.raises(ConfigurationError):
            Client(0, 10, slot_s=0.0)
        client = self.make_client()
        with pytest.raises(ConfigurationError):
            client.receive_frame([1], [], [], 0.01, True, 3)
