"""Tests for the control-plane wire protocol."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransportError
from repro.prediction.pose import Pose
from repro.system.protocol import (
    DeliveryAck,
    PoseUpdate,
    ReleaseAck,
    TileBundleHeader,
    decode,
    decode_stream,
    encode_stream,
)


def pose(x=1.5, y=2.5, yaw=33.0, pitch=-7.5):
    return Pose(x, y, 1.6, yaw, pitch, 0.0)


class TestRoundTrips:
    def test_pose_update(self):
        msg = PoseUpdate(user=3, slot=1234, pose=pose())
        decoded, rest = decode(msg.encode())
        assert rest == b""
        assert decoded.user == 3
        assert decoded.slot == 1234
        # f32 precision: compare loosely.
        assert decoded.pose.translation_distance(msg.pose) < 1e-4
        assert decoded.pose.orientation_distance(msg.pose) < 1e-3

    def test_tile_bundle(self):
        msg = TileBundleHeader(user=1, slot=7, level=4,
                               video_ids=(100, 2000, 30000))
        decoded, rest = decode(msg.encode())
        assert rest == b""
        assert decoded == TileBundleHeader(1, 7, 4, (100, 2000, 30000))

    def test_empty_bundle(self):
        msg = TileBundleHeader(user=0, slot=0, level=1, video_ids=tuple())
        decoded, _ = decode(msg.encode())
        assert decoded.video_ids == tuple()

    def test_delivery_ack(self):
        msg = DeliveryAck(user=2, slot=55, video_ids=(1, 2, 3))
        decoded, _ = decode(msg.encode())
        assert decoded == msg

    def test_release_ack(self):
        msg = ReleaseAck(user=9, video_ids=(4242,))
        decoded, _ = decode(msg.encode())
        assert decoded == msg

    @given(
        st.integers(0, 65535),
        st.integers(0, 2**32 - 1),
        st.integers(1, 15),
        st.lists(st.integers(0, 2**32 - 1), max_size=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_bundle_roundtrip_property(self, user, slot, level, ids):
        msg = TileBundleHeader(user, slot, level, tuple(ids))
        decoded, rest = decode(msg.encode())
        assert decoded == msg
        assert rest == b""


class TestStream:
    def test_multiplexed_stream(self):
        messages = [
            PoseUpdate(0, 1, pose()),
            DeliveryAck(0, 1, (7, 8)),
            ReleaseAck(0, (9,)),
            PoseUpdate(1, 1, pose(x=3.0)),
        ]
        decoded = decode_stream(encode_stream(messages))
        assert len(decoded) == 4
        assert isinstance(decoded[0], PoseUpdate)
        assert isinstance(decoded[1], DeliveryAck)
        assert isinstance(decoded[2], ReleaseAck)
        assert decoded[3].user == 1

    def test_empty_stream(self):
        assert decode_stream(b"") == []


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(TransportError):
            decode(b"\x01")

    def test_truncated_payload(self):
        frame = DeliveryAck(0, 1, (7,)).encode()
        with pytest.raises(TransportError):
            decode(frame[:-2])

    def test_unknown_type(self):
        frame = struct.pack("!BH", 99, 0)
        with pytest.raises(TransportError):
            decode(frame)

    def test_id_count_mismatch(self):
        # Claim 2 ids but carry 1.
        body = struct.pack("!HH", 0, 2) + struct.pack("!I", 7)
        frame = struct.pack("!BH", 4, len(body)) + body
        with pytest.raises(TransportError):
            decode(frame)

    def test_bad_pose_length(self):
        body = b"\x00" * 10
        frame = struct.pack("!BH", 1, len(body)) + body
        with pytest.raises(TransportError):
            decode(frame)

    def test_oversized_id_list_rejected_on_encode(self):
        with pytest.raises(TransportError):
            ReleaseAck(0, tuple(range(70000))).encode()

    def test_garbage_after_valid_frame(self):
        frame = ReleaseAck(0, (1,)).encode() + b"\xff"
        with pytest.raises(TransportError):
            decode_stream(frame)
