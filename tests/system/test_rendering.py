"""Tests for the Section VIII online rendering pipeline model."""

import pytest

from repro.errors import ConfigurationError
from repro.system.rendering import (
    GpuSpec,
    OnlineRenderingPipeline,
    RenderJob,
    min_gpus_for,
)

SLOT = 1.0 / 60.0


def jobs(count, bits=100_000.0, level=3):
    return [RenderJob(bits, level) for _ in range(count)]


class TestOnlineRenderingPipeline:
    def test_empty_workload(self):
        assert OnlineRenderingPipeline().makespan_s([]) == 0.0
        assert OnlineRenderingPipeline().fits_in_slot([])

    def test_render_bound_makespan(self):
        spec = GpuSpec(render_ms_per_tile=2.0, encoder_sessions=8, encode_mbps=1e6)
        pipeline = OnlineRenderingPipeline(num_gpus=1, spec=spec)
        # 4 tiles x 2 ms serial rendering = 8 ms, encoding negligible.
        assert pipeline.makespan_s(jobs(4)) == pytest.approx(0.008)

    def test_encode_bound_makespan(self):
        spec = GpuSpec(render_ms_per_tile=0.001, encoder_sessions=1, encode_mbps=100.0)
        pipeline = OnlineRenderingPipeline(num_gpus=1, spec=spec)
        # 4 x 1 Mbit at 100 Mbps on one session = 40 ms.
        assert pipeline.makespan_s(jobs(4, bits=1e6)) == pytest.approx(0.04)

    def test_more_gpus_reduce_makespan(self):
        one = OnlineRenderingPipeline(num_gpus=1)
        four = OnlineRenderingPipeline(num_gpus=4)
        workload = jobs(16, bits=500_000.0)
        assert four.makespan_s(workload) < one.makespan_s(workload)

    def test_fits_in_slot_boundary(self):
        spec = GpuSpec(render_ms_per_tile=4.0, encoder_sessions=8, encode_mbps=1e6)
        pipeline = OnlineRenderingPipeline(num_gpus=1, spec=spec)
        assert pipeline.fits_in_slot(jobs(4), slot_s=0.016)
        assert not pipeline.fits_in_slot(jobs(5), slot_s=0.016)

    def test_max_users_supported_monotone_in_gpus(self):
        small = OnlineRenderingPipeline(num_gpus=1)
        large = OnlineRenderingPipeline(num_gpus=8)
        assert large.max_users_supported(4, 150_000.0, 3) >= (
            small.max_users_supported(4, 150_000.0, 3)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineRenderingPipeline(num_gpus=0)
        with pytest.raises(ConfigurationError):
            GpuSpec(render_ms_per_tile=0.0)
        with pytest.raises(ConfigurationError):
            GpuSpec(encoder_sessions=0)
        with pytest.raises(ConfigurationError):
            GpuSpec(encode_mbps=0.0)
        with pytest.raises(ConfigurationError):
            RenderJob(-1.0, 1)
        with pytest.raises(ConfigurationError):
            RenderJob(1.0, 0)
        pipeline = OnlineRenderingPipeline()
        with pytest.raises(ConfigurationError):
            pipeline.max_users_supported(0, 1e5, 3)


class TestMinGpusFor:
    def test_small_class_needs_few_gpus(self):
        assert min_gpus_for(4, tiles_per_user=4, tile_bits=120_000.0, level=3) <= 4

    def test_monotone_in_users(self):
        a = min_gpus_for(4, 4, 150_000.0, 3)
        b = min_gpus_for(15, 4, 150_000.0, 3)
        assert b >= a

    def test_paper_testbed_scale(self):
        """The paper's 4-GPU workstation handling 15 users online.

        Section VIII doubts a single GPU can do it; the model should
        show a multi-GPU pool is required but a modest one suffices.
        """
        needed = min_gpus_for(15, tiles_per_user=4, tile_bits=150_000.0, level=4)
        assert 1 <= needed <= 16

    def test_infeasible_returns_zero(self):
        # A single tile larger than a slot's encode capacity at any
        # pool size can never fit (per-GPU sessions bound).
        spec = GpuSpec(render_ms_per_tile=0.1, encoder_sessions=1, encode_mbps=1.0)
        assert (
            min_gpus_for(1, 1, 1e9, 1, spec=spec, max_gpus=4) == 0
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            min_gpus_for(0, 4, 1e5, 3)
