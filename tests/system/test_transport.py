"""Tests for the RTP-like transport and TCP side channel."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, TransportError
from repro.system.transport import RtpChannel, TcpChannel


class TestRtpChannel:
    def test_packets_for(self):
        channel = RtpChannel(packet_bits=12_000.0)
        assert channel.packets_for(0.0) == 0
        assert channel.packets_for(1.0) == 1
        assert channel.packets_for(12_000.0) == 1
        assert channel.packets_for(12_001.0) == 2

    def test_packets_rejects_negative(self):
        with pytest.raises(TransportError):
            RtpChannel().packets_for(-1.0)

    def test_loss_floor_on_clean_link(self):
        channel = RtpChannel(base_loss=0.001, congestion_loss=0.25)
        assert channel.loss_probability(10.0, 50.0) == pytest.approx(0.001)

    def test_loss_grows_with_overshoot(self):
        channel = RtpChannel(base_loss=0.001, congestion_loss=0.25)
        mild = channel.loss_probability(55.0, 50.0)
        severe = channel.loss_probability(100.0, 50.0)
        assert 0.001 < mild < severe
        assert severe == pytest.approx(0.001 + 0.25)

    def test_loss_capped(self):
        channel = RtpChannel(base_loss=0.9, congestion_loss=1.0)
        assert channel.loss_probability(1000.0, 1.0) <= 0.99

    def test_idle_flow_no_loss(self):
        assert RtpChannel().loss_probability(0.0, 50.0) == 0.0

    def test_transmit_empty_bundle(self, rng):
        result = RtpChannel().transmit([], 0.0, 50.0, rng)
        assert result.duration_s == 0.0
        assert result.packets_sent == 0
        assert result.loss_ratio == 0.0

    def test_transmit_duration(self, rng):
        channel = RtpChannel(base_loss=0.0)
        # 1 Mbit at 50 Mbps = 20 ms.
        result = channel.transmit([1e6], 1.0, 50.0, rng)
        assert result.duration_s == pytest.approx(0.02)

    def test_transmit_counts_conserved(self, rng):
        channel = RtpChannel(base_loss=0.3)
        tile_bits = [50_000.0, 80_000.0, 20_000.0]
        result = channel.transmit(tile_bits, 9.0, 10.0, rng)
        expected_packets = sum(channel.packets_for(b) for b in tile_bits)
        assert result.packets_sent == expected_packets
        assert 0 <= result.packets_lost <= result.packets_sent
        assert all(0 <= i < len(tile_bits) for i in result.lost_tile_indices)

    def test_lossless_when_base_zero_and_no_overshoot(self, rng):
        channel = RtpChannel(base_loss=0.0)
        result = channel.transmit([1e5, 1e5], 10.0, 50.0, rng)
        assert result.packets_lost == 0
        assert result.lost_tile_indices == tuple()

    def test_heavy_overshoot_loses_tiles(self):
        channel = RtpChannel(base_loss=0.0, congestion_loss=0.5)
        rng = np.random.default_rng(0)
        result = channel.transmit([1e6] * 4, 100.0, 10.0, rng)
        assert result.packets_lost > 0
        assert len(result.lost_tile_indices) > 0

    def test_starved_link_loses_everything(self, rng):
        result = RtpChannel().transmit([1e5, 1e5], 10.0, 0.0, rng)
        # The starved duration is a bounded worst case, never inf:
        # downstream delay clamps, wire encodings, and percentile math
        # all rely on finite values.
        assert math.isfinite(result.duration_s)
        assert result.duration_s == pytest.approx(60.0)
        assert result.packets_lost == result.packets_sent
        assert result.lost_tile_indices == (0, 1)
        assert result.loss_ratio == pytest.approx(1.0)

    def test_starved_duration_configurable(self, rng):
        channel = RtpChannel(starved_duration_s=2.5)
        result = channel.transmit([1e5], 10.0, 0.0, rng)
        assert result.duration_s == pytest.approx(2.5)

    def test_empty_bundle_on_starved_link(self, rng):
        """No payload: zero duration and zero loss even at zero rate."""
        result = RtpChannel().transmit([], 0.0, 0.0, rng)
        assert result.duration_s == 0.0
        assert result.packets_sent == 0
        assert result.packets_lost == 0
        assert result.loss_ratio == 0.0

    def test_zero_sized_tiles_in_bundle(self, rng):
        """Zero-bit tiles ride along without packets or loss."""
        channel = RtpChannel(base_loss=0.0)
        result = channel.transmit([0.0, 1e5, 0.0], 10.0, 50.0, rng)
        assert result.packets_sent == channel.packets_for(1e5)
        assert math.isfinite(result.duration_s)
        assert result.loss_ratio == 0.0

    def test_sub_packet_tiles_well_defined(self, rng):
        """Tiles far below one packet still get one packet each."""
        channel = RtpChannel(packet_bits=12_000.0, base_loss=0.0)
        tile_bits = [1.0, 7.5, 100.0]
        result = channel.transmit(tile_bits, 0.001, 50.0, rng)
        assert result.packets_sent == 3
        assert result.packets_lost == 0
        assert math.isfinite(result.duration_s)
        assert result.duration_s == pytest.approx(sum(tile_bits) / 50e6)
        assert 0.0 <= result.loss_ratio <= 1.0

    def test_total_loss_marks_every_tile(self):
        """At the loss-probability cap every tile is marked lost."""
        channel = RtpChannel(base_loss=0.99, congestion_loss=1.0)
        rng = np.random.default_rng(12345)
        tile_bits = [1e6] * 5
        result = channel.transmit(tile_bits, 100.0, 1.0, rng)
        assert math.isfinite(result.duration_s)
        assert 0.0 <= result.loss_ratio <= 1.0
        # With p = 0.99 over ~84 packets/tile, every tile loses packets.
        assert result.lost_tile_indices == tuple(range(len(tile_bits)))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RtpChannel(packet_bits=0.0)
        with pytest.raises(ConfigurationError):
            RtpChannel(base_loss=1.0)
        with pytest.raises(ConfigurationError):
            RtpChannel(congestion_loss=1.5)
        with pytest.raises(ConfigurationError):
            RtpChannel(starved_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            RtpChannel(starved_duration_s=float("inf"))


class TestTcpChannel:
    def test_delivery_time(self):
        channel = TcpChannel(latency_s=0.002)
        assert channel.delivery_time(1.0) == pytest.approx(1.002)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            TcpChannel(latency_s=-0.1)
