"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.system.events import EventScheduler


class TestEventScheduler:
    def test_runs_in_time_order(self):
        engine = EventScheduler()
        order = []
        engine.schedule_at(2.0, lambda: order.append("b"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(3.0, lambda: order.append("c"))
        engine.run_all()
        assert order == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        engine = EventScheduler()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(1.0, lambda t=tag: order.append(t))
        engine.run_all()
        assert order == ["first", "second", "third"]

    def test_clock_advances(self):
        engine = EventScheduler()
        times = []
        engine.schedule_at(0.5, lambda: times.append(engine.now))
        engine.schedule_at(1.5, lambda: times.append(engine.now))
        engine.run_all()
        assert times == [0.5, 1.5]

    def test_schedule_in_relative(self):
        engine = EventScheduler()
        result = []
        engine.schedule_at(1.0, lambda: engine.schedule_in(0.5, lambda: result.append(engine.now)))
        engine.run_all()
        assert result == [1.5]

    def test_events_can_schedule_events(self):
        engine = EventScheduler()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                engine.schedule_in(1.0, tick)

        engine.schedule_at(0.0, tick)
        engine.run_all()
        assert count[0] == 5
        assert engine.now == pytest.approx(4.0)

    def test_run_until_horizon(self):
        engine = EventScheduler()
        ran = []
        engine.schedule_at(1.0, lambda: ran.append(1))
        engine.schedule_at(5.0, lambda: ran.append(5))
        executed = engine.run_until(2.0)
        assert executed == 1
        assert ran == [1]
        assert engine.now == pytest.approx(2.0)
        assert engine.pending == 1

    def test_step_returns_false_when_empty(self):
        assert not EventScheduler().step()

    def test_cannot_schedule_in_past(self):
        engine = EventScheduler()
        engine.schedule_at(1.0, lambda: None)
        engine.run_all()
        with pytest.raises(ConfigurationError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            EventScheduler().schedule_in(-1.0, lambda: None)

    def test_run_all_guards_runaway(self):
        engine = EventScheduler()

        def forever():
            engine.schedule_in(0.001, forever)

        engine.schedule_at(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run_all(max_events=100)

    def test_run_until_guards_runaway(self):
        engine = EventScheduler()

        def forever():
            engine.schedule_in(0.0001, forever)

        engine.schedule_at(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run_until(1.0, max_events=50)

    def test_pending_count(self):
        engine = EventScheduler()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.pending == 2
