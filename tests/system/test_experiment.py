"""Integration tests for the real-system experiment runner."""

import pytest

from repro.core import DensityValueGreedyAllocator, FireflyAllocator, PavqAllocator
from repro.errors import ConfigurationError
from repro.system.experiment import (
    ExperimentConfig,
    SystemExperiment,
    scaled_config,
    setup1_config,
    setup2_config,
)


class TestConfigs:
    def test_setup1_matches_paper(self):
        config = setup1_config()
        assert config.num_users == 8
        assert config.num_routers == 1
        assert config.server_budget_mbps == 400.0
        assert config.weights.alpha == 0.1
        assert config.weights.beta == 0.5

    def test_setup2_matches_paper(self):
        config = setup2_config()
        assert config.num_users == 15
        assert config.num_routers == 2
        assert config.server_budget_mbps == 800.0
        # Setup 2's interference is strictly harsher than setup 1's.
        assert config.interference_onset > setup1_config().interference_onset

    def test_throttle_guidelines(self):
        assert set(ExperimentConfig().throttle_guidelines) == {
            40.0, 45.0, 50.0, 55.0, 60.0,
        }

    def test_scaled_config(self):
        config = scaled_config(setup1_config(), duration_slots=99)
        assert config.duration_slots == 99
        assert config.num_users == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_users=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_routers=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration_slots=2)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(throttle_guidelines=())


class TestSystemExperiment:
    @pytest.fixture(scope="class")
    def small_experiment(self):
        config = scaled_config(setup1_config(seed=7), duration_slots=240)
        return SystemExperiment(config)

    def test_run_repeat_metrics(self, small_experiment):
        result = small_experiment.run_repeat(DensityValueGreedyAllocator(), repeat=0)
        assert result.num_users == 8
        for user in result.users:
            assert 0.0 <= user.quality <= 6.0
            assert user.delay >= 0.0
            assert user.fps is not None
            assert 0.0 <= user.fps <= 60.0 + 1e-9

    def test_repeats_pool(self, small_experiment):
        results = small_experiment.run(DensityValueGreedyAllocator(), repeats=2)
        assert results.num_episodes == 2
        assert results.mean_fps() is not None

    def test_compare(self, small_experiment):
        comparison = small_experiment.compare(
            {"ours": DensityValueGreedyAllocator(), "firefly": FireflyAllocator()},
            repeats=1,
        )
        assert set(comparison) == {"ours", "firefly"}

    def test_repeat_deterministic(self):
        config = scaled_config(setup1_config(seed=11), duration_slots=180)
        a = SystemExperiment(config).run_repeat(DensityValueGreedyAllocator(), 0)
        b = SystemExperiment(config).run_repeat(DensityValueGreedyAllocator(), 0)
        assert a.users[0].qoe == pytest.approx(b.users[0].qoe)
        assert a.mean_fps() == pytest.approx(b.mean_fps())

    def test_validation(self, small_experiment):
        with pytest.raises(ConfigurationError):
            small_experiment.run(DensityValueGreedyAllocator(), repeats=0)
        with pytest.raises(ConfigurationError):
            small_experiment.compare({})


class TestSystemShape:
    """The Fig. 7 ordering on a short but meaningful run."""

    @pytest.fixture(scope="class")
    def comparison(self):
        config = scaled_config(setup1_config(seed=0), duration_slots=600)
        experiment = SystemExperiment(config)
        return experiment.compare(
            {
                "ours": DensityValueGreedyAllocator(),
                "pavq": PavqAllocator(),
                "firefly": FireflyAllocator(),
            },
            repeats=2,
        )

    def test_ours_best_qoe(self, comparison):
        ours = comparison["ours"].mean("qoe")
        assert ours > comparison["pavq"].mean("qoe")
        assert ours > comparison["firefly"].mean("qoe")

    def test_ours_best_fps(self, comparison):
        ours = comparison["ours"].mean_fps()
        assert ours >= comparison["firefly"].mean_fps() - 1e-9

    def test_ours_lowest_variance(self, comparison):
        ours = comparison["ours"].mean("variance")
        assert ours <= comparison["pavq"].mean("variance")
        assert ours <= comparison["firefly"].mean("variance")
