"""Tests for the network emulation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.system.netem import (
    FadingProcess,
    InterferenceField,
    Router,
    ThrottledLink,
    max_min_fair_share,
)


class TestMaxMinFairShare:
    def test_everyone_satisfied_when_capacity_ample(self):
        rates = max_min_fair_share([10.0, 20.0], [100.0, 100.0], 100.0)
        assert rates == [10.0, 20.0]

    def test_equal_split_when_scarce(self):
        rates = max_min_fair_share([50.0, 50.0], [100.0, 100.0], 60.0)
        assert rates == pytest.approx([30.0, 30.0])

    def test_small_flow_frozen_then_redistributed(self):
        rates = max_min_fair_share([5.0, 100.0], [100.0, 100.0], 60.0)
        assert rates == pytest.approx([5.0, 55.0])

    def test_caps_bind(self):
        rates = max_min_fair_share([100.0, 100.0], [20.0, 100.0], 90.0)
        assert rates == pytest.approx([20.0, 70.0])

    def test_idle_flows_get_zero(self):
        rates = max_min_fair_share([0.0, 50.0], [100.0, 100.0], 60.0)
        assert rates[0] == 0.0
        assert rates[1] == 50.0

    def test_zero_capacity(self):
        rates = max_min_fair_share([10.0, 10.0], [50.0, 50.0], 0.0)
        assert rates == [0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_min_fair_share([1.0], [1.0, 2.0], 10.0)
        with pytest.raises(ConfigurationError):
            max_min_fair_share([1.0], [1.0], -1.0)

    @given(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=8),
        st.floats(0.0, 500.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, demands, capacity):
        caps = [d + 10.0 for d in demands]
        rates = max_min_fair_share(demands, caps, capacity)
        assert sum(rates) <= capacity + 1e-6
        for rate, demand, cap in zip(rates, demands, caps):
            assert -1e-9 <= rate <= min(demand, cap) + 1e-6


class TestFadingProcess:
    def test_stays_in_bounds(self, rng):
        fading = FadingProcess(sigma=0.3, floor=0.4, ceiling=1.2)
        for _ in range(2000):
            value = fading.step(rng)
            assert 0.4 <= value <= 1.2

    def test_mean_reverts_toward_one(self, rng):
        fading = FadingProcess(reversion=0.2, sigma=0.01)
        fading._value = 0.5  # noqa: SLF001 - force a displaced start
        for _ in range(200):
            fading.step(rng)
        assert fading.value > 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FadingProcess(reversion=0.0)
        with pytest.raises(ConfigurationError):
            FadingProcess(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            FadingProcess(floor=1.5)


class TestThrottledLink:
    def test_effective_tracks_guideline(self, rng):
        link = ThrottledLink(50.0, FadingProcess(sigma=0.05))
        values = [link.step(rng) for _ in range(500)]
        assert 0.3 * 50.0 <= min(values)
        assert max(values) <= 1.2 * 50.0
        assert np.mean(values) == pytest.approx(50.0, rel=0.15)

    def test_rejects_bad_guideline(self):
        with pytest.raises(ConfigurationError):
            ThrottledLink(0.0)


class TestInterferenceField:
    def test_silent_when_onset_zero(self, rng):
        field = InterferenceField(onset_probability=0.0)
        assert all(field.step(rng) == 1.0 for _ in range(500))

    def test_bursts_reduce_capacity(self):
        field = InterferenceField(onset_probability=1.0, severity_range=(0.3, 0.5))
        rng = np.random.default_rng(0)
        factor = field.step(rng)
        assert 0.3 <= factor <= 0.5

    def test_bursts_end(self):
        field = InterferenceField(
            onset_probability=1.0, mean_duration_slots=1.0, severity_range=(0.5, 0.5)
        )
        rng = np.random.default_rng(0)
        factors = [field.step(rng) for _ in range(200)]
        assert any(f == 1.0 for f in factors)
        assert any(f < 1.0 for f in factors)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterferenceField(onset_probability=1.5)
        with pytest.raises(ConfigurationError):
            InterferenceField(mean_duration_slots=0.0)
        with pytest.raises(ConfigurationError):
            InterferenceField(severity_range=(0.0, 0.5))


class TestRouter:
    def test_transmit_respects_capacity(self, rng):
        router = Router(100.0)
        router.step(rng)
        rates = router.transmit([80.0, 80.0], [100.0, 100.0])
        assert sum(rates) <= router.slot_capacity_mbps + 1e-6

    def test_contention_reduces_efficiency(self, rng):
        router = Router(100.0, contention_loss_per_flow=0.05)
        router._slot_capacity = 100.0  # noqa: SLF001 - pin for determinism
        single = router.transmit([100.0], [100.0])
        many = router.transmit([25.0] * 4, [100.0] * 4)
        assert sum(many) < sum(single) + 1e-9
        assert sum(many) == pytest.approx(100.0 * (1 - 0.05 * 3))

    def test_efficiency_floor(self, rng):
        router = Router(100.0, contention_loss_per_flow=0.1, min_efficiency=0.6)
        router._slot_capacity = 100.0  # noqa: SLF001
        rates = router.transmit([20.0] * 10, [100.0] * 10)
        assert sum(rates) == pytest.approx(60.0)

    def test_interference_shared_between_routers(self):
        field = InterferenceField(onset_probability=1.0, severity_range=(0.4, 0.4))
        a = Router(100.0, interference=field, fading=FadingProcess(sigma=0.0))
        rng = np.random.default_rng(0)
        a.step(rng)
        assert a.slot_capacity_mbps == pytest.approx(100.0 * field.factor, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Router(0.0)
        with pytest.raises(ConfigurationError):
            Router(100.0, contention_loss_per_flow=1.0)
        with pytest.raises(ConfigurationError):
            Router(100.0, min_efficiency=0.0)


class TestTokenBucket:
    def make(self, rate=10.0, burst=1e6):
        from repro.system.netem import TokenBucket

        return TokenBucket(rate_mbps=rate, burst_bits=burst)

    def test_burst_departs_immediately(self):
        bucket = self.make()
        assert bucket.send(1e6, now_s=0.0) == 0.0

    def test_deficit_drains_at_rate(self):
        bucket = self.make(rate=10.0, burst=1e6)
        bucket.send(1e6, now_s=0.0)          # balance now 0
        done = bucket.send(5e6, now_s=0.0)   # 5 Mbit at 10 Mbps
        assert done == pytest.approx(0.5)

    def test_refill_caps_at_burst(self):
        bucket = self.make(rate=10.0, burst=1e6)
        bucket.send(1e6, now_s=0.0)
        # After 10 s the balance is back to the burst cap, not 100 Mbit.
        assert bucket.send(1e6, now_s=10.0) == 10.0
        assert bucket.tokens == pytest.approx(0.0)

    def test_partial_refill(self):
        bucket = self.make(rate=10.0, burst=1e6)
        bucket.send(1e6, now_s=0.0)
        # 0.05 s -> 0.5 Mbit of tokens; sending 1 Mbit leaves a 0.5 Mbit
        # deficit -> 0.05 s more.
        done = bucket.send(1e6, now_s=0.05)
        assert done == pytest.approx(0.1)

    def test_zero_payload(self):
        bucket = self.make()
        assert bucket.send(0.0, now_s=1.0) == 1.0

    def test_time_to_send_does_not_consume(self):
        bucket = self.make(rate=10.0, burst=1e6)
        estimate = bucket.time_to_send(2e6, now_s=0.0)
        assert estimate == pytest.approx(0.1)
        assert bucket.tokens == pytest.approx(1e6)

    def test_time_monotone(self):
        bucket = self.make()
        bucket.send(1e5, now_s=1.0)
        with pytest.raises(ConfigurationError):
            bucket.send(1e5, now_s=0.5)

    def test_validation(self):
        from repro.system.netem import TokenBucket

        with pytest.raises(ConfigurationError):
            TokenBucket(0.0, 1e6)
        with pytest.raises(ConfigurationError):
            TokenBucket(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            self.make().send(-1.0, 0.0)
