"""End-to-end checks that the byte-level control plane carries state.

The experiment loop encodes poses and ACKs through
``repro.system.protocol`` and the server only learns what survives
decoding; these tests confirm the dedup and motion paths work through
the byte round-trip.
"""

from dataclasses import replace

from repro.core import DensityValueGreedyAllocator
from repro.system import SystemExperiment, Telemetry, setup1_config
from repro.system.experiment import scaled_config


class TestControlPlaneRoundTrip:
    def test_static_dedup_survives_byte_path(self):
        """Dedup state is built from decoded DeliveryAcks; a static
        scene must offer far less traffic than a live one (moving
        users still fetch new cells, so it does not reach zero)."""
        def total_demand(refresh):
            config = replace(
                scaled_config(setup1_config(seed=12), duration_slots=240),
                content_refresh_slots=refresh,
            )
            telemetry = Telemetry()
            SystemExperiment(config).run_repeat(
                DensityValueGreedyAllocator(), 0, telemetry=telemetry
            )
            return sum(r.demand_mbps for r in telemetry.records)

        assert total_demand(0) < 0.7 * total_demand(1)

    def test_poses_survive_byte_path(self):
        """Coverage stays high, proving decoded poses feed prediction."""
        config = scaled_config(setup1_config(seed=13), duration_slots=240)
        telemetry = Telemetry()
        SystemExperiment(config).run_repeat(
            DensityValueGreedyAllocator(), 0, telemetry=telemetry
        )
        transmitted = [r for r in telemetry.records if r.level > 0]
        covered = sum(1 for r in transmitted if r.covered)
        assert covered / len(transmitted) > 0.5
