"""Tests for the telemetry collector and its experiment integration."""

import pytest

from repro.core import DensityValueGreedyAllocator
from repro.errors import ConfigurationError
from repro.system import SystemExperiment, Telemetry, setup1_config
from repro.system.experiment import scaled_config
from repro.system.telemetry import FIELDS, SlotUserRecord


def record(slot=0, user=0, level=3, demand=30.0, achieved=45.0,
           believed=40.0, displayed=True, covered=True, delay=0.7):
    return SlotUserRecord(
        slot, user, level, demand, achieved, believed, displayed, covered, delay
    )


class TestTelemetry:
    def test_add_and_query(self):
        telemetry = Telemetry()
        telemetry.add(record(slot=0, user=0))
        telemetry.add(record(slot=0, user=1))
        telemetry.add(record(slot=1, user=0, displayed=False))
        assert len(telemetry) == 3
        assert len(telemetry.for_user(0)) == 2
        assert len(telemetry.for_slot(0)) == 2

    def test_miss_slots(self):
        telemetry = Telemetry()
        telemetry.add(record(slot=0, displayed=True))
        telemetry.add(record(slot=1, displayed=False))
        telemetry.add(record(slot=2, level=0, displayed=False))
        assert telemetry.miss_slots(0) == [1]  # skips are not misses

    def test_level_timeline_ordered(self):
        telemetry = Telemetry()
        telemetry.add(record(slot=2, level=4))
        telemetry.add(record(slot=0, level=2))
        telemetry.add(record(slot=1, level=3))
        assert telemetry.level_timeline(0) == [2, 3, 4]

    def test_utilisation(self):
        telemetry = Telemetry()
        telemetry.add(record(demand=30.0, achieved=60.0))
        telemetry.add(record(demand=45.0, achieved=45.0))
        assert telemetry.utilisation(0) == pytest.approx(0.75)

    def test_summary(self):
        telemetry = Telemetry()
        telemetry.add(record(displayed=True))
        telemetry.add(record(level=0, demand=0.0))
        summary = telemetry.summary()
        assert summary["records"] == 2.0
        assert summary["transmit_fraction"] == pytest.approx(0.5)
        assert summary["display_fraction"] == pytest.approx(1.0)

    def test_summary_empty_raises(self):
        with pytest.raises(ConfigurationError):
            Telemetry().summary()

    def test_save_csv(self, tmp_path):
        telemetry = Telemetry()
        telemetry.add(record())
        path = tmp_path / "telemetry.csv"
        telemetry.save_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0] == ",".join(FIELDS)
        assert len(lines) == 2

    def test_clear(self):
        telemetry = Telemetry()
        telemetry.add(record())
        telemetry.clear()
        assert len(telemetry) == 0


class TestJsonlExport:
    def test_round_trip_preserves_every_record(self, tmp_path):
        telemetry = Telemetry()
        telemetry.add(record(slot=0, user=0, displayed=True))
        telemetry.add(record(slot=1, user=1, level=0, displayed=False))
        path = tmp_path / "telemetry.jsonl"
        telemetry.save_jsonl(path)
        restored = Telemetry.load_jsonl(path)
        assert restored.records == telemetry.records

    def test_header_carries_kind_and_schema_version(self, tmp_path):
        import json

        from repro.system.telemetry import (
            TELEMETRY_SCHEMA_VERSION,
            TELEMETRY_STREAM_KIND,
        )

        telemetry = Telemetry()
        telemetry.add(record())
        path = tmp_path / "telemetry.jsonl"
        telemetry.save_jsonl(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == TELEMETRY_STREAM_KIND
        assert header["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert header["fields"] == list(FIELDS)

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.errors import ObservabilityError

        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "other", "schema_version": 1}\n')
        with pytest.raises(ObservabilityError):
            Telemetry.load_jsonl(path)

    def test_wrong_schema_version_rejected(self, tmp_path):
        import json

        from repro.errors import ObservabilityError
        from repro.system.telemetry import (
            TELEMETRY_SCHEMA_VERSION,
            TELEMETRY_STREAM_KIND,
        )

        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": TELEMETRY_STREAM_KIND,
                    "schema_version": TELEMETRY_SCHEMA_VERSION + 1,
                }
            )
            + "\n"
        )
        with pytest.raises(ObservabilityError):
            Telemetry.load_jsonl(path)

    def test_malformed_record_rejected_with_line_number(self, tmp_path):
        from repro.errors import ObservabilityError

        telemetry = Telemetry()
        telemetry.add(record())
        path = tmp_path / "bad.jsonl"
        telemetry.save_jsonl(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"slot": 1}\n')
        with pytest.raises(ObservabilityError, match="missing fields"):
            Telemetry.load_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        from repro.errors import ObservabilityError

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError):
            Telemetry.load_jsonl(path)


class TestRegistryMirror:
    def test_attach_registry_counts_past_and_future_records(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        telemetry = Telemetry()
        telemetry.add(record(slot=0))
        telemetry.attach_registry(registry)
        telemetry.add(record(slot=1))
        counter = registry.counter("repro_telemetry_records_total", "")
        assert counter.count == 2


class TestExperimentIntegration:
    def test_telemetry_captured(self):
        config = scaled_config(setup1_config(seed=9), duration_slots=120)
        experiment = SystemExperiment(config)
        telemetry = Telemetry()
        experiment.run_repeat(
            DensityValueGreedyAllocator(), 0, telemetry=telemetry
        )
        # One record per (transmission slot, user).
        assert len(telemetry) == (config.duration_slots - 1) * config.num_users
        summary = telemetry.summary()
        assert 0.0 < summary["display_fraction"] <= 1.0
        assert summary["mean_demand_mbps"] > 0.0

    def test_pose_staleness_degrades_coverage(self):
        def covered_fraction(latency):
            from dataclasses import replace

            config = replace(
                scaled_config(setup1_config(seed=10), duration_slots=240),
                pose_upload_latency_slots=latency,
                margin_deg=3.0,
                cell_tolerance=0,
            )
            telemetry = Telemetry()
            SystemExperiment(config).run_repeat(
                DensityValueGreedyAllocator(), 0, telemetry=telemetry
            )
            transmitted = [r for r in telemetry.records if r.level > 0]
            return sum(1 for r in transmitted if r.covered) / len(transmitted)

        assert covered_fraction(12) <= covered_fraction(0) + 0.02

    def test_staleness_validation(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(setup1_config(), pose_upload_latency_slots=-1)
