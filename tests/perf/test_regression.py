"""The bench regression gate: rule modes, guards, and the exit path."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.perf.regression import (
    BENCH_FILES,
    CHECK_MODES,
    CHECK_RULES,
    CheckRule,
    check_bench,
    check_run,
    format_report,
    latest_run,
)


def _serve_run(hit_rate=0.99, sustained=8, missed=0, users=(2, 4, 8)):
    return {
        "kind": "serve",
        "users_sustained": sustained,
        "fleets": [
            {
                "users": count,
                "deadline_hit_rate": hit_rate,
                "missed_reports": missed,
            }
            for count in users
        ],
    }


def _kernel_run(num_users=10000, speedup=70.0):
    return {
        "kind": "kernel",
        "num_users": num_users,
        "solutions_identical": True,
        "speedup": speedup,
        "predictor": {"identical": True, "speedup": speedup},
        "coverage": {"identical": True, "speedup": speedup},
    }


def _write_history(path, run):
    path.write_text(
        json.dumps({"latest": run, "runs": [run]}), encoding="utf-8"
    )
    return path


class TestRuleBook:
    def test_every_rule_uses_a_known_mode(self):
        for kind, rules in CHECK_RULES.items():
            assert kind in BENCH_FILES
            for rule in rules:
                assert rule.mode in CHECK_MODES

    def test_every_kind_has_a_history_file(self):
        assert set(CHECK_RULES) == set(BENCH_FILES)


class TestLatestRun:
    def test_prefers_latest_key(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(
            {"latest": {"kind": "a"}, "runs": [{"kind": "b"}]}
        ))
        assert latest_run(path) == {"kind": "a"}

    def test_falls_back_to_last_run(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps({"runs": [{"kind": "a"}, {"kind": "b"}]}))
        assert latest_run(path) == {"kind": "b"}

    def test_unusable_histories_are_none(self, tmp_path):
        assert latest_run(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert latest_run(bad) is None
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        assert latest_run(empty) is None


class TestCheckModes:
    def test_expect_true_judges_current_only(self):
        results, _ = check_run("kernel", _kernel_run(), _kernel_run())
        invariants = [r for r in results if r.mode == "expect_true"]
        assert len(invariants) == 3
        assert all(r.passed for r in invariants)

        broken = _kernel_run()
        broken["solutions_identical"] = False
        results, _ = check_run("kernel", _kernel_run(), broken)
        failed = [r for r in results if not r.passed]
        assert [r.metric for r in failed] == ["solutions_identical"]

    def test_abs_drop_allows_tolerance_then_fails(self):
        baseline = _serve_run(hit_rate=0.99)
        within = _serve_run(hit_rate=0.80)   # drop 0.19 < tol 0.25
        results, _ = check_run("serve", baseline, within)
        assert all(r.passed for r in results)

        beyond = _serve_run(hit_rate=0.50)   # drop 0.49 > tol 0.25
        results, _ = check_run("serve", baseline, beyond)
        failed = [r for r in results if not r.passed]
        assert {r.metric for r in failed} == {"deadline_hit_rate"}
        assert len(failed) == 3  # one per fleet row

    def test_ratio_min_catches_lost_speedup_not_jitter(self):
        baseline = _kernel_run(speedup=70.0)
        jitter = _kernel_run(speedup=60.0)   # -14%: inside the 0.8 band
        results, _ = check_run("kernel", baseline, jitter)
        assert all(r.passed for r in results)

        lost = _kernel_run(speedup=1.1)      # optimisation gone
        results, _ = check_run("kernel", baseline, lost)
        failed = {r.metric for r in results if not r.passed}
        assert "speedup" in failed

    def test_abs_ceiling_bounds_costs(self):
        baseline = _serve_run(missed=0)
        noisy = _serve_run(missed=40)        # under the +50 ceiling
        results, _ = check_run("serve", baseline, noisy)
        assert all(r.passed for r in results)

        flood = _serve_run(missed=500)
        results, _ = check_run("serve", baseline, flood)
        failed = {r.metric for r in results if not r.passed}
        assert failed == {"missed_reports"}

    def test_unknown_mode_rejected(self):
        from repro.perf.regression import _compare

        with pytest.raises(ConfigurationError):
            _compare("serve", CheckRule("x", "fuzzy"), "-", 1.0, 1.0)


class TestRowMatching:
    def test_quick_subset_compares_intersection_only(self):
        baseline = _serve_run(users=(2, 4, 8))
        quick = _serve_run(users=(2,))
        results, skipped = check_run("serve", baseline, quick)
        contexts = {r.context for r in results if r.metric == "deadline_hit_rate"}
        assert contexts == {"users=2"}
        # users_sustained is guarded by same_rows: a 2-user fleet
        # cannot be held to an 8-user baseline.
        assert not any(r.metric == "users_sustained" for r in results)
        assert any("users_sustained" in reason for reason in skipped)

    def test_none_values_skip_not_fail(self):
        baseline = _serve_run()
        current = _serve_run()
        for fleet in current["fleets"]:
            fleet["deadline_hit_rate"] = None
        results, _ = check_run("serve", baseline, current)
        assert not any(r.metric == "deadline_hit_rate" for r in results)
        assert all(r.passed for r in results)


class TestScaleGuards:
    def test_mismatched_population_skips_speedup(self):
        baseline = _kernel_run(num_users=10000, speedup=70.0)
        quick = _kernel_run(num_users=500, speedup=4.0)
        results, skipped = check_run("kernel", baseline, quick)
        # The invariants still run; no speedup comparison survives.
        assert {r.mode for r in results} == {"expect_true"}
        assert all(r.passed for r in results)
        assert any("num_users differs" in reason for reason in skipped)

    def test_matched_population_arms_the_rule(self):
        baseline = _kernel_run(num_users=500, speedup=4.0)
        current = _kernel_run(num_users=500, speedup=4.1)
        results, skipped = check_run("kernel", baseline, current)
        assert any(r.metric == "predictor.speedup" for r in results)
        assert skipped == []


class TestCheckBench:
    def test_missing_baseline_is_skipped_kind(self, tmp_path):
        report = check_bench({"serve": _serve_run()}, tmp_path)
        assert report.passed
        assert report.skipped_kinds == ("serve",)
        assert report.results == ()

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            check_bench({"frobnicator": {}}, tmp_path)

    def test_injected_regression_fails_naming_the_metric(self, tmp_path):
        """The acceptance path: a synthetic regression must be caught
        and the report must name the offending metric."""
        _write_history(tmp_path / BENCH_FILES["serve"], _serve_run())
        _write_history(tmp_path / BENCH_FILES["kernel"], _kernel_run())

        healthy = check_bench(
            {"serve": _serve_run(), "kernel": _kernel_run()}, tmp_path
        )
        assert healthy.passed

        regressed = check_bench(
            {
                "serve": _serve_run(hit_rate=0.40),  # injected drop
                "kernel": _kernel_run(),
            },
            tmp_path,
        )
        assert not regressed.passed
        assert all(
            f.metric == "deadline_hit_rate" for f in regressed.failures
        )
        lines = format_report(regressed)
        assert any(line.startswith("FAIL") for line in lines)
        assert any("bench check: FAIL" in line for line in lines)
        assert any(
            "regressed:" in line and "serve.deadline_hit_rate" in line
            for line in lines
        )

    def test_report_round_trips_to_dict(self, tmp_path):
        _write_history(tmp_path / BENCH_FILES["serve"], _serve_run())
        report = check_bench({"serve": _serve_run(hit_rate=0.1)}, tmp_path)
        payload = report.to_dict()
        assert payload["passed"] is False
        assert payload["checks"] == len(report.results)
        assert payload["failures"][0]["metric"] == "deadline_hit_rate"


class TestBenchCliGate:
    def test_check_exit_codes_via_main(self, tmp_path, capsys):
        """``repro bench --check`` exits 1 on a regressed baseline."""
        from repro.cli import main

        # A baseline claiming an impossible hit rate forces a FAIL
        # without needing a slow full bench run.
        out_dir = tmp_path / "out"
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        _write_history(
            baseline_dir / BENCH_FILES["serve"],
            _serve_run(hit_rate=2.0, users=(2,), sustained=2),
        )

        code = main([
            "bench", "--quick", "--kind", "serve",
            "--out", str(out_dir),
            "--check", "--baseline-dir", str(baseline_dir),
            "--check-report", str(tmp_path / "report.json"),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "bench check: FAIL" in out
        assert "serve.deadline_hit_rate" in out
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["passed"] is False
