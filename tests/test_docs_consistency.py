"""Documentation-code consistency checks.

DESIGN.md's experiment index and the README's bench table point at
benchmark files and module paths; these tests fail when a rename
leaves the documentation dangling.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


def _referenced_paths(text):
    return set(re.findall(r"`(benchmarks/[\w/]+\.py)", text))


class TestDesignMd:
    def test_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        refs = _referenced_paths(text)
        assert refs, "DESIGN.md should reference bench files"
        for ref in refs:
            assert (ROOT / ref).exists(), f"DESIGN.md references missing {ref}"

    def test_bench_test_names_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path, test in re.findall(r"`(benchmarks/[\w/]+\.py)::(\w+)`", text):
            source = (ROOT / path).read_text()
            assert f"def {test}(" in source, f"{path} lacks {test}"

    def test_module_map_files_exist(self):
        """Every `<name>.py` in the DESIGN module map is a real file."""
        text = (ROOT / "DESIGN.md").read_text()
        in_map = False
        current_pkg = ""
        missing = []
        for line in text.splitlines():
            if line.startswith("src/repro/"):
                in_map = True
                continue
            if in_map and line.startswith("```"):
                break
            if not in_map:
                continue
            pkg = re.match(r"  (\w+)/", line)
            if pkg:
                current_pkg = pkg.group(1)
                continue
            mod = re.match(r"  (?:  )?([\w.]+\.py)\b", line.replace("baselines/", ""))
            if mod:
                name = mod.group(1)
                candidates = [
                    ROOT / "src/repro" / name,
                    ROOT / "src/repro" / current_pkg / name,
                    ROOT / "src/repro" / current_pkg / "baselines" / name,
                ]
                if not any(c.exists() for c in candidates):
                    missing.append(name)
        assert not missing, f"DESIGN module map names missing files: {missing}"


class TestReadme:
    def test_bench_table_files_exist(self):
        text = (ROOT / "README.md").read_text()
        for ref in _referenced_paths(text):
            assert (ROOT / ref).exists(), f"README references missing {ref}"

    def test_example_table_files_exist(self):
        text = (ROOT / "README.md").read_text()
        for ref in re.findall(r"`(examples/\w+\.py)`", text):
            assert (ROOT / ref).exists(), f"README references missing {ref}"

    def test_doc_links_exist(self):
        text = (ROOT / "README.md").read_text()
        for ref in re.findall(r"\]\((docs/\w+\.md|DESIGN\.md|EXPERIMENTS\.md)\)", text):
            assert (ROOT / ref).exists(), f"README links missing {ref}"


class TestExperimentsMd:
    def test_bench_references_exist(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for ref in _referenced_paths(text):
            assert (ROOT / ref).exists(), f"EXPERIMENTS.md references missing {ref}"

    def test_results_files_exist(self):
        """Every results file named in EXPERIMENTS.md was generated."""
        text = (ROOT / "docs/reproduction.md").read_text()
        for ref in re.findall(r"`(\w+)\.txt`", text):
            # Wildcard-ish rows (fig2{a..d}) are expanded manually.
            if "{" in ref:
                continue
            candidates = list((ROOT / "benchmarks/results").glob(f"{ref}*.txt"))
            assert candidates or "_" not in ref, (
                f"reproduction.md references {ref}.txt but no results match"
            )
