"""Flow-aware rules RL008-RL011: behaviors beyond the fixture pairs."""

import textwrap
import time as _time
from pathlib import Path

import pytest

from repro.lint import lint_source, merge_config, run_lint
from repro.lint.engine import PARSE_ERROR_RULE
from tests.lint.conftest import REPO_ROOT, everywhere_config


def _lint(source: str, config=None, path: str = "snippet.py"):
    findings, _ = lint_source(
        textwrap.dedent(source), path, config or everywhere_config()
    )
    return findings


def _with_options(code: str, **options):
    return merge_config(
        everywhere_config(), {"rules": {code: dict(options)}}
    )


class TestAsyncSafetyFlow:
    HELPER_CHAIN = """
        import time


        def deep() -> None:
            time.sleep(0.5)

        def shallow() -> None:
            deep()

        async def run() -> None:
            shallow()
    """

    def test_reachable_blocking_call_carries_evidence(self):
        findings = [
            f for f in self._rl008(self.HELPER_CHAIN)
            if "time.sleep" in f.message
        ]
        assert len(findings) == 1
        finding = findings[0]
        # Anchored at the call site inside the coroutine...
        assert "async def run" in finding.message
        # ...with the full hop trail attached.
        assert len(finding.evidence) >= 2
        assert any("run calls shallow" in hop for hop in finding.evidence)
        assert any("time.sleep" in hop for hop in finding.evidence)

    def test_max_depth_option_bounds_the_walk(self):
        config = _with_options("RL008", include=["*"], max_depth=1)
        findings = [
            f for f in _lint(self.HELPER_CHAIN, config)
            if f.rule == "RL008" and "time.sleep" in f.message
        ]
        assert findings == []

    def test_to_thread_reference_is_not_a_call(self):
        findings = self._rl008(
            """
            import asyncio
            import time


            async def run() -> None:
                await asyncio.to_thread(time.sleep, 0.5)
            """
        )
        assert findings == []

    def test_builtin_open_flagged_unless_shadowed(self):
        flagged = self._rl008(
            """
            async def run(name: str) -> str:
                with open(name, encoding="utf-8") as handle:
                    return handle.read()
            """
        )
        assert any("open" in f.message for f in flagged)
        shadowed = self._rl008(
            """
            from io import open


            async def run(name: str) -> str:
                with open(name, encoding="utf-8") as handle:
                    return handle.read()
            """
        )
        assert shadowed == []

    def test_custom_blocking_calls_option(self):
        config = _with_options(
            "RL008", include=["*"], blocking_calls=["dbapi.execute"]
        )
        findings = [
            f for f in _lint(
                """
                import dbapi


                async def run() -> None:
                    dbapi.execute("select 1")
                """,
                config,
            )
            if f.rule == "RL008"
        ]
        assert any("dbapi.execute" in f.message for f in findings)

    def _rl008(self, source: str):
        return [f for f in _lint(source) if f.rule == "RL008"]


class TestDeterminismTaintFlow:
    def test_random_random_without_seed(self):
        findings = [
            f for f in _lint(
                """
                import random


                def build() -> random.Random:
                    return random.Random()
                """
            )
            if f.rule == "RL009"
        ]
        assert len(findings) == 1

    def test_taint_finding_carries_assignment_evidence(self):
        findings = [
            f for f in _lint(
                """
                import numpy as np


                class LevelAllocator:
                    def __init__(self) -> None:
                        source = np.random.default_rng()
                        self._rng = source
                """
            )
            if f.rule == "RL009" and "flows into" in f.message
        ]
        assert len(findings) == 1
        assert len(findings[0].evidence) == 2
        assert "constructed" in findings[0].evidence[0]
        assert "LevelAllocator._rng" in findings[0].evidence[1]

    def test_seed_pattern_option(self):
        config = _with_options(
            "RL009", include=["*"], seed_pattern=r"^nonce$"
        )
        findings = [
            f for f in _lint(
                """
                import numpy as np


                def build(nonce: int) -> np.random.Generator:
                    return np.random.default_rng(nonce)
                """,
                config,
            )
            if f.rule == "RL009"
        ]
        assert findings == []

    def test_seeded_local_variable_is_provenance(self):
        findings = [
            f for f in _lint(
                """
                import numpy as np


                def build(seed: int) -> np.random.Generator:
                    root = np.random.default_rng(seed)
                    spawned = np.random.default_rng(root.integers(2**32))
                    return spawned
                """
            )
            if f.rule == "RL009"
        ]
        assert findings == []


class TestKernelContractsFlow:
    def test_dtype_contracts_option_checks_call_fields(self):
        config = _with_options(
            "RL010", include=["*"], dtype_contracts={"demand": "float64"}
        )
        findings = [
            f for f in _lint(
                """
                import numpy as np


                def build(n: int) -> object:
                    return SlotBatch(
                        demand=np.zeros(n, dtype=np.float32),
                    )
                """,
                config,
            )
            if f.rule == "RL010" and "demand" in f.message
        ]
        assert len(findings) == 1

    def test_allowlist_option_extends_dtypes(self):
        config = _with_options(
            "RL010", include=["*"],
            allowed_dtypes=["np.float32"],
        )
        findings = [
            f for f in _lint(
                """
                import numpy as np


                def build(n: int) -> np.ndarray:
                    return np.zeros(n, dtype=np.float32)
                """,
                config,
            )
            if f.rule == "RL010"
        ]
        assert findings == []


class TestWorkerHygieneFlow:
    def test_builtin_map_is_not_a_boundary(self):
        findings = [
            f for f in _lint(
                """
                from typing import List


                def double(chunks: List[int]) -> List[int]:
                    return list(map(lambda chunk: chunk * 2, chunks))
                """
            )
            if f.rule == "RL011"
        ]
        assert findings == []

    def test_pool_names_option(self):
        config = _with_options(
            "RL011", include=["*"], pool_names=["dispatcher"]
        )
        findings = [
            f for f in _lint(
                """
                from typing import List


                def fan_out(dispatcher: object, chunks: List[int]) -> None:
                    dispatcher.map(lambda chunk: chunk * 2, chunks)
                """,
                config,
            )
            if f.rule == "RL011"
        ]
        assert len(findings) == 1


class TestParseErrorFindings:
    def test_invalid_utf8_becomes_rl000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_bytes(b"\xff\xfe\x00junk")
        good = tmp_path / "good.py"
        good.write_text("X = 1\n", encoding="utf-8")
        report = run_lint([tmp_path])
        rl000 = [f for f in report.findings if f.rule == PARSE_ERROR_RULE]
        assert len(rl000) == 1
        assert "UTF-8" in rl000[0].message
        assert rl000[0].path.endswith("bad.py")
        # The readable file was still scanned.
        assert report.files_scanned == 2

    def test_syntax_error_becomes_rl000_and_run_continues(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        good = tmp_path / "good.py"
        good.write_text("X = 1\n", encoding="utf-8")
        report = run_lint([tmp_path])
        rl000 = [f for f in report.findings if f.rule == PARSE_ERROR_RULE]
        assert len(rl000) == 1
        assert rl000[0].line >= 1


class TestFullTreeTiming:
    def test_full_tree_run_stays_under_budget(self):
        started = _time.perf_counter()
        report = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests"])
        elapsed = _time.perf_counter() - started
        assert elapsed < 10.0, f"full-tree lint took {elapsed:.1f}s"
        # The timing breakdown covers every rule plus the pseudo-stages.
        assert "project-model" in report.timings
        assert "parse" in report.timings
        for code in ("RL008", "RL009", "RL010", "RL011"):
            assert code in report.timings
