"""Engine behaviour: discovery, parse errors, aggregation, self-check."""

import pytest

from repro.errors import ConfigurationError
from repro.lint import default_config, run_lint
from repro.lint.engine import PARSE_ERROR_RULE, discover_files

from tests.lint.conftest import REPO_ROOT

RL005_SNIPPET = "def f(b: list = []) -> list:\n    return b\n"
CLEAN_SNIPPET = "X = 1\n"


class TestDiscovery:
    def test_directory_expansion_sorted_and_filtered(self, tmp_path):
        (tmp_path / "b.py").write_text(CLEAN_SNIPPET)
        (tmp_path / "a.py").write_text(CLEAN_SNIPPET)
        (tmp_path / "notes.txt").write_text("not python")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "c.py").write_text(CLEAN_SNIPPET)
        files = discover_files([tmp_path], default_config().exclude)
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_file_and_parent_dir_deduplicated(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text(CLEAN_SNIPPET)
        files = discover_files([target, tmp_path], default_config().exclude)
        assert len(files) == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            discover_files([tmp_path / "ghost"], ())


class TestRunLint:
    def test_findings_aggregated_with_counts(self, tmp_path):
        (tmp_path / "bad.py").write_text(RL005_SNIPPET)
        (tmp_path / "good.py").write_text(CLEAN_SNIPPET)
        report = run_lint([tmp_path])
        assert report.files_scanned == 2
        assert report.error_count == 1
        assert report.rule_counts["RL005"] == 1
        assert report.rule_counts["RL001"] == 0
        assert report.has_errors()

    def test_parse_error_becomes_rl000_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_lint([tmp_path])
        assert report.error_count == 1
        assert report.findings[0].rule == PARSE_ERROR_RULE
        assert "does not parse" in report.findings[0].message

    def test_deterministic_order(self, tmp_path):
        (tmp_path / "z.py").write_text(RL005_SNIPPET)
        (tmp_path / "a.py").write_text(RL005_SNIPPET)
        report = run_lint([tmp_path])
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)


class TestRepoIsClean:
    """The acceptance gate itself: the tree must stay at zero findings."""

    def test_src_and_tests_have_no_findings(self):
        report = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert report.files_scanned > 100
        findings = [f.location() + " " + f.rule for f in report.findings]
        assert findings == []

    def test_kernel_package_needs_no_suppressions(self):
        # The array kernel is in the zero-suppression set: not a single
        # inline `repro-lint: disable` directive, ever — its numeric
        # code must satisfy every rule on merit.
        report = run_lint([REPO_ROOT / "src" / "repro" / "kernel"])
        assert report.files_scanned >= 6
        assert [f.location() for f in report.findings] == []
        assert report.suppressed == 0

    def test_shard_package_needs_no_suppressions(self):
        # The shard subsystem joined the zero-suppression set at
        # birth: coordinator, router, handoff codec, supervisor, and
        # bench all satisfy every rule with no inline disables.
        report = run_lint([REPO_ROOT / "src" / "repro" / "shard"])
        assert report.files_scanned >= 7
        assert [f.location() for f in report.findings] == []
        assert report.suppressed == 0
