"""Text/JSON reporters: formats, summary lines, schema stability."""

import json

from repro.lint import (
    JSON_REPORT_VERSION,
    RULE_REGISTRY,
    default_config,
    render_json,
    render_stats,
    render_text,
    run_lint,
)

RL005_SNIPPET = "def f(b: list = []) -> list:\n    return b\n"


def _report(tmp_path, source=RL005_SNIPPET):
    (tmp_path / "mod.py").write_text(source)
    return run_lint([tmp_path], default_config())


class TestTextReporter:
    def test_finding_lines_and_summary(self, tmp_path):
        text = render_text(_report(tmp_path))
        assert "mod.py:1:" in text
        assert "RL005" in text
        assert "[error]" in text
        assert "1 finding(s): 1 error(s), 0 warning(s)" in text

    def test_clean_summary(self, tmp_path):
        text = render_text(_report(tmp_path, source="X = 1\n"))
        assert "clean: no findings in 1 file(s) scanned" in text

    def test_stats_block_appended(self, tmp_path):
        text = render_text(_report(tmp_path), stats=True)
        assert "rule hit counts:" in text
        for code in RULE_REGISTRY:
            assert code in text
        assert "files scanned: 1" in text


class TestJsonReporter:
    def test_schema_round_trip(self, tmp_path):
        document = json.loads(render_json(_report(tmp_path)))
        assert document["version"] == JSON_REPORT_VERSION
        assert document["files_scanned"] == 1
        assert document["errors"] == 1
        assert document["warnings"] == 0
        assert document["suppressed"] == 0
        assert set(document["stats"]) == set(RULE_REGISTRY)
        assert document["stats"]["RL005"] == 1
        assert document["baselined"] == 0
        # Timings cover the engine pseudo-stages plus every rule that
        # actually ran on an in-scope file.
        assert {"parse", "project-model", "RL005"} <= set(
            document["timings_ms"]
        )
        assert all(t >= 0.0 for t in document["timings_ms"].values())
        (finding,) = document["findings"]
        assert set(finding) == {
            "path", "line", "col", "rule", "severity", "message", "evidence",
        }
        assert finding["rule"] == "RL005"
        assert finding["severity"] == "error"
        assert finding["line"] == 1
        assert finding["evidence"] == []

    def test_clean_tree_document(self, tmp_path):
        document = json.loads(render_json(_report(tmp_path, source="X = 1\n")))
        assert document["errors"] == 0
        assert document["findings"] == []


class TestStatsRenderer:
    def test_counts_rendered_per_rule(self, tmp_path):
        stats = render_stats(_report(tmp_path))
        assert "RL005" in stats
        assert "(mutable-default-args)" in stats
        assert "suppressed:    0" in stats
