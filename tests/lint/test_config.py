"""[tool.repro.lint] configuration: defaults, overrides, parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    RULE_REGISTRY,
    default_config,
    lint_source,
    load_config,
    merge_config,
)
from repro.lint.config import _parse_toml_subset

from tests.lint.conftest import FIXTURES

RL005_SNIPPET = "def f(b: list = []) -> list:\n    return b\n"


class TestDefaults:
    def test_all_registered_rules_present_and_enabled(self):
        config = default_config()
        assert set(config.rules) == set(RULE_REGISTRY)
        for code, rule_config in config.rules.items():
            assert rule_config.enabled, code
            assert rule_config.severity == "error", code

    def test_default_scopes(self):
        config = default_config()
        assert config.rule("RL005").include == ("*",)
        assert "repro/core/" in config.rule("RL002").include
        assert config.rule("RL006").include == ("src/",)


class TestMergeOverrides:
    def test_disable_rule(self):
        config = merge_config(
            default_config(), {"rules": {"RL005": {"enabled": False}}}
        )
        findings, _ = lint_source(RL005_SNIPPET, "snippet.py", config)
        assert findings == []

    def test_severity_downgrade_to_warning(self):
        config = merge_config(
            default_config(), {"rules": {"RL005": {"severity": "warning"}}}
        )
        findings, _ = lint_source(RL005_SNIPPET, "snippet.py", config)
        assert [f.severity for f in findings] == ["warning"]

    def test_include_override_narrows_scope(self):
        config = merge_config(
            default_config(), {"rules": {"RL005": {"include": ["src/"]}}}
        )
        findings, _ = lint_source(RL005_SNIPPET, "elsewhere.py", config)
        assert findings == []

    def test_rule_option_passthrough(self):
        config = merge_config(
            default_config(),
            {"rules": {"RL003": {"banned_raises": ["KeyError"]}}},
        )
        source = (FIXTURES / "rl003_fail.py").read_text(encoding="utf-8")
        findings, _ = lint_source(source, "src/x.py", config)
        # ValueError is no longer banned; the broad handlers still fire.
        messages = [f.message for f in findings if f.rule == "RL003"]
        assert not any("raise ValueError" in m for m in messages)
        assert any("except" in m for m in messages)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_config(default_config(), {"rules": {"RL999": {}}})

    def test_bad_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_config(
                default_config(),
                {"rules": {"RL001": {"severity": "fatal"}}},
            )

    def test_bad_include_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_config(
                default_config(), {"rules": {"RL001": {"include": "src"}}}
            )


class TestLoadConfig:
    def test_missing_file_yields_defaults(self, tmp_path):
        config = load_config(tmp_path / "nope.toml")
        assert set(config.rules) == set(RULE_REGISTRY)

    def test_none_yields_defaults(self):
        config = load_config(None)
        assert config.rule("RL001").enabled

    def test_pyproject_overrides_applied(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.lint]\n"
            'exclude = ["generated/"]\n'
            "[tool.repro.lint.rules.RL005]\n"
            "severity = \"warning\"\n"
            "[tool.repro.lint.rules.RL002]\n"
            "enabled = false\n",
            encoding="utf-8",
        )
        config = load_config(pyproject)
        assert config.exclude == ("generated/",)
        assert config.rule("RL005").severity == "warning"
        assert not config.rule("RL002").enabled

    def test_unrelated_pyproject_ignored(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[project]\nname = \"x\"\n", encoding="utf-8")
        config = load_config(pyproject)
        assert set(config.rules) == set(RULE_REGISTRY)

    def test_repo_pyproject_parses(self):
        from tests.lint.conftest import REPO_ROOT

        config = load_config(REPO_ROOT / "pyproject.toml")
        assert set(config.rules) == set(RULE_REGISTRY)


class TestSubsetParser:
    """The pre-3.11 fallback must agree with tomllib on our schema."""

    SNIPPET = (
        "# a comment\n"
        "[tool.repro.lint]\n"
        'exclude = ["a/", "b/"]  # trailing comment\n'
        "\n"
        "[tool.repro.lint.rules.RL001]\n"
        "enabled = true\n"
        "severity = \"warning\"\n"
        "threshold = 3\n"
        "factor = 1.5\n"
        "include = []\n"
    )

    def test_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_subset(self.SNIPPET) == tomllib.loads(self.SNIPPET)

    def test_values(self):
        parsed = _parse_toml_subset(self.SNIPPET)
        section = parsed["tool"]["repro"]["lint"]
        assert section["exclude"] == ["a/", "b/"]
        rule = section["rules"]["RL001"]
        assert rule == {
            "enabled": True,
            "severity": "warning",
            "threshold": 3,
            "factor": 1.5,
            "include": [],
        }

    def test_rejects_garbage_inside_lint_section(self):
        with pytest.raises(ValueError):
            _parse_toml_subset("[tool.repro.lint]\nnot toml at all\n")

    def test_skips_foreign_sections(self):
        """Constructs outside [tool.repro.lint] never have to parse."""
        text = (
            "[project]\n"
            'license = { text = "MIT" }\n'
            "[tool.repro.lint]\n"
            'exclude = ["a/"]\n'
            "[[tool.mypy.overrides]]\n"
            'module = "repro.*"\n'
        )
        parsed = _parse_toml_subset(text)
        assert parsed["tool"]["repro"]["lint"]["exclude"] == ["a/"]
        assert "project" not in parsed

    def test_multiline_array(self):
        text = (
            "[tool.repro.lint]\n"
            "exclude = [\n"
            '    "a/",  # keep\n'
            '    "b/",\n'
            "]\n"
        )
        parsed = _parse_toml_subset(text)
        assert parsed["tool"]["repro"]["lint"]["exclude"] == ["a/", "b/"]

    def test_repo_pyproject_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        from tests.lint.conftest import REPO_ROOT

        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        subset = _parse_toml_subset(text)["tool"]["repro"]["lint"]
        full = tomllib.loads(text)["tool"]["repro"]["lint"]
        assert subset == full
