"""The whole-project model: extraction, resolution, graph, cache."""

import ast
import os
import textwrap
from pathlib import Path

import pytest

from repro.lint.project import (
    ProjectModel,
    build_project_model,
    cache_key,
    cached_project_model,
    call_chain,
    clear_project_cache,
    module_info_from_tree,
    module_name_for,
    single_module_model,
)


def _module(source: str, path: str = "pkg/mod.py", name: str = "pkg.mod"):
    tree = ast.parse(textwrap.dedent(source))
    return module_info_from_tree(tree, path, name)


def _write_package(root: Path) -> None:
    """A tiny synthetic package tree: pkg.a -> pkg.b -> pkg.c."""
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "a.py").write_text(
        "import pkg.b\n\n\ndef entry() -> None:\n    pkg.b.helper()\n",
        encoding="utf-8",
    )
    (pkg / "b.py").write_text(
        "from pkg.c import leaf\n\n\ndef helper() -> None:\n    leaf()\n",
        encoding="utf-8",
    )
    (pkg / "c.py").write_text(
        "def leaf() -> None:\n    return None\n", encoding="utf-8"
    )


def _model_for(root: Path) -> ProjectModel:
    parsed = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        parsed.append((path.as_posix(), path, tree))
    return build_project_model(parsed)


class TestCallChain:
    def test_flattens_dotted_chain(self):
        node = ast.parse("a.b.c()").body[0].value
        assert call_chain(node.func) == ("a", "b", "c")

    def test_opaque_head_for_call_receivers(self):
        node = ast.parse("Path(x).read_text()").body[0].value
        assert call_chain(node.func) == ("?", "read_text")


class TestModuleNames:
    def test_package_tree_yields_dotted_names(self, tmp_path):
        _write_package(tmp_path)
        assert module_name_for(tmp_path / "pkg" / "a.py") == "pkg.a"
        assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"

    def test_bare_file_outside_packages(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("", encoding="utf-8")
        assert module_name_for(path) == "script"


class TestImportGraph:
    def test_internal_edges_only(self, tmp_path):
        _write_package(tmp_path)
        graph = _model_for(tmp_path).import_graph()
        assert graph["pkg.a"] == ("pkg.b",)
        assert graph["pkg.b"] == ("pkg.c",)
        assert graph["pkg.c"] == ()

    def test_external_imports_never_appear(self):
        info = _module("import os\nimport numpy as np\n")
        model = ProjectModel([info])
        assert model.import_graph() == {"pkg.mod": ()}


class TestResolution:
    def test_bare_name_resolves_same_module(self):
        info = _module(
            """
            def helper() -> None:
                return None

            def caller() -> None:
                helper()
            """
        )
        model = ProjectModel([info])
        caller = info.functions["caller"]
        target = model.resolve_call(info, caller, ("helper",))
        assert target is not None and target.qualname == "helper"

    def test_self_method_resolves_within_class(self):
        info = _module(
            """
            class Loop:
                def run(self) -> None:
                    self.step()

                def step(self) -> None:
                    return None
            """
        )
        model = ProjectModel([info])
        caller = info.functions["Loop.run"]
        target = model.resolve_call(info, caller, ("self", "step"))
        assert target is not None and target.qualname == "Loop.step"

    def test_cross_module_from_import(self, tmp_path):
        _write_package(tmp_path)
        model = _model_for(tmp_path)
        mod_b = model.modules["pkg.b"]
        target = model.resolve_call(
            mod_b, mod_b.functions["helper"], ("leaf",)
        )
        assert target is not None and target.module == "pkg.c"

    def test_attribute_chains_through_objects_stay_opaque(self):
        info = _module(
            """
            class Loop:
                def run(self) -> None:
                    self.obs.flight.trigger()
            """
        )
        model = ProjectModel([info])
        caller = info.functions["Loop.run"]
        assert model.resolve_call(
            info, caller, ("self", "obs", "flight", "trigger")
        ) is None


class TestReachability:
    SOURCE = """
        import time


        def deep() -> None:
            time.sleep(1.0)

        def mid() -> None:
            deep()

        def shallow() -> None:
            mid()

        async def run() -> None:
            shallow()
    """

    def test_walk_collects_evidence_trail(self):
        info = _module(self.SOURCE)
        model = ProjectModel([info])
        run = info.functions["run"]
        reached = model.reachable_sync_callees(info, run, max_depth=3)
        names = [callee.qualname for callee, _, _ in reached]
        assert names == ["shallow", "mid", "deep"]
        _, first_site, evidence = reached[-1]
        # The anchor points at the call inside the coroutine...
        assert first_site.chain == ("shallow",)
        # ...and the evidence walks every hop down to ``deep``.
        assert len(evidence) == 3
        assert "run calls shallow" in evidence[0]
        assert "mid calls deep" in evidence[-1]

    def test_depth_bound_cuts_the_walk(self):
        info = _module(self.SOURCE)
        model = ProjectModel([info])
        run = info.functions["run"]
        reached = model.reachable_sync_callees(info, run, max_depth=2)
        names = [callee.qualname for callee, _, _ in reached]
        assert names == ["shallow", "mid"]

    def test_async_callees_are_not_followed(self):
        info = _module(
            """
            async def inner() -> None:
                return None

            async def outer() -> None:
                await inner()
            """
        )
        model = ProjectModel([info])
        outer = info.functions["outer"]
        assert model.reachable_sync_callees(info, outer, max_depth=5) == []


class TestCallSites:
    def test_awaited_statement_and_wrapper_flags(self):
        info = _module(
            """
            import asyncio


            async def run() -> None:
                await asyncio.sleep(0)
                helper()
                asyncio.gather(helper())
            """
        )
        calls = {c.dotted(): c for c in info.functions["run"].calls}
        assert calls["asyncio.sleep"].awaited
        assert calls["helper"].is_statement or calls["helper"].in_wrapper
        wrapped = [
            c for c in info.functions["run"].calls
            if c.dotted() == "helper" and c.in_wrapper
        ]
        assert wrapped, "call inside gather() must carry in_wrapper"

    def test_nested_defs_own_their_calls(self):
        info = _module(
            """
            def outer() -> None:
                def inner() -> None:
                    hidden()
                visible()
            """
        )
        outer_calls = {c.dotted() for c in info.functions["outer"].calls}
        assert outer_calls == {"visible"}
        # Nested defs are not indexed as project symbols — closures are
        # outside the resolution scope by design.
        assert "inner" not in info.functions


class TestCache:
    def setup_method(self):
        clear_project_cache()

    def teardown_method(self):
        clear_project_cache()

    def _parsed(self, root: Path):
        parsed = []
        for path in sorted(root.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            parsed.append((path.as_posix(), path, tree))
        return parsed

    def test_same_key_returns_same_model_object(self, tmp_path):
        _write_package(tmp_path)
        files = sorted(tmp_path.rglob("*.py"))
        parsed = self._parsed(tmp_path)
        first = cached_project_model(cache_key(files), parsed)
        second = cached_project_model(cache_key(files), parsed)
        assert first is second

    def test_mtime_change_invalidates(self, tmp_path):
        _write_package(tmp_path)
        files = sorted(tmp_path.rglob("*.py"))
        parsed = self._parsed(tmp_path)
        first = cached_project_model(cache_key(files), parsed)
        target = tmp_path / "pkg" / "b.py"
        stat = target.stat()
        os.utime(
            target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000)
        )
        rebuilt = cached_project_model(cache_key(files), self._parsed(tmp_path))
        assert rebuilt is not first

    def test_content_change_invalidates(self, tmp_path):
        _write_package(tmp_path)
        files = sorted(tmp_path.rglob("*.py"))
        first = cached_project_model(cache_key(files), self._parsed(tmp_path))
        (tmp_path / "pkg" / "c.py").write_text(
            "def leaf() -> int:\n    return 1\n", encoding="utf-8"
        )
        rebuilt = cached_project_model(
            cache_key(files), self._parsed(tmp_path)
        )
        assert rebuilt is not first
        leaf = rebuilt.modules["pkg.c"].functions["leaf"]
        assert first.modules["pkg.c"].functions["leaf"] is not leaf


class TestSingleModuleFallback:
    def test_snippets_resolve_locally(self):
        tree = ast.parse(
            "def helper() -> None:\n    return None\n\n"
            "async def run() -> None:\n    helper()\n"
        )
        model = single_module_model(tree, "snippet.py")
        info = model.by_path["snippet.py"]
        target = model.resolve_call(info, info.functions["run"], ("helper",))
        assert target is not None
