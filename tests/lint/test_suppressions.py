"""Inline suppression behaviour: line-scoped, file-scoped, counted."""

from repro.lint import lint_source
from repro.lint.suppressions import scan_suppressions

from tests.lint.conftest import FIXTURES, everywhere_config


def _lint(name):
    path = FIXTURES / name
    return lint_source(
        path.read_text(encoding="utf-8"), path.as_posix(), everywhere_config()
    )


class TestLineSuppression:
    def test_suppressed_line_is_silenced_and_counted(self):
        findings, suppressed = _lint("suppress_line.py")
        assert suppressed == 1
        lines = {f.line for f in findings if f.rule == "RL005"}
        # Only the unsuppressed twin remains.
        assert len(lines) == 1

    def test_unrelated_rule_not_silenced_by_named_code(self):
        source = (
            "def f(x: float, b: list = []) -> bool:"
            "  # repro-lint: disable=RL004\n"
            "    return x == 1.0\n"
        )
        findings, suppressed = lint_source(
            source, "snippet.py", everywhere_config()
        )
        # The directive names RL004 but the finding on line 1 is RL005.
        assert any(f.rule == "RL005" for f in findings)
        assert suppressed == 0


class TestFileSuppression:
    def test_disable_file_silences_all_instances_of_rule(self):
        findings, suppressed = _lint("suppress_file.py")
        assert not any(f.rule == "RL005" for f in findings)
        assert suppressed == 2
        assert any(f.rule == "RL004" for f in findings)

    def test_disable_all_sentinel(self):
        source = (
            "# repro-lint: disable-file=all\n"
            "def f(b: list = []) -> list:\n"
            "    return b\n"
        )
        findings, suppressed = lint_source(
            source, "snippet.py", everywhere_config()
        )
        assert findings == []
        assert suppressed == 1


class TestDirectiveParsing:
    def test_multiple_codes_one_directive(self):
        index = scan_suppressions(
            ["x = 1  # repro-lint: disable=RL001, RL004"]
        )
        assert index.is_suppressed("RL001", 1)
        assert index.is_suppressed("RL004", 1)
        assert not index.is_suppressed("RL005", 1)
        assert not index.is_suppressed("RL001", 2)

    def test_no_directives(self):
        index = scan_suppressions(["x = 1", "y = 2"])
        assert not index.is_suppressed("RL001", 1)
