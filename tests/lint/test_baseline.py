"""Baseline snapshots: fingerprints, the ratchet, and the CLI gate."""

import json
import shutil
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.lint.findings import Finding, LintReport, sort_findings
from tests.lint.conftest import FIXTURES


def _finding(line: int = 10, message: str = "m", path: str = "a.py"):
    return Finding(
        path=path, line=line, col=0, rule="RL010",
        severity="error", message=message,
    )


def _report(*findings: Finding) -> LintReport:
    counts = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return LintReport(
        findings=sort_findings(list(findings)),
        files_scanned=1,
        rule_counts=counts,
    )


class TestFingerprint:
    def test_line_insensitive(self):
        assert fingerprint(_finding(line=10)) == fingerprint(_finding(line=99))

    def test_distinct_across_path_and_message(self):
        base = fingerprint(_finding())
        assert fingerprint(_finding(path="b.py")) != base
        assert fingerprint(_finding(message="other")) != base


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        report = _report(_finding(), _finding(message="second"))
        path = tmp_path / "baseline.json"
        assert write_baseline(report, path) == 2
        budgets = load_baseline(path)
        assert sum(budgets.values()) == 2

    def test_duplicate_findings_are_counted(self, tmp_path):
        # Same fingerprint twice -> one entry with budget 2.
        report = _report(_finding(line=1), _finding(line=2))
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        budgets = load_baseline(path)
        assert list(budgets.values()) == [2]

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            json.dumps({"version": 99, "fingerprints": {}}),
            json.dumps({"version": 1, "fingerprints": []}),
            json.dumps({"version": 1, "fingerprints": {"ab": 0}}),
        ],
    )
    def test_malformed_baseline_raises(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload, encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_baseline(tmp_path / "nope.json")


class TestApply:
    def test_matched_findings_are_subtracted(self, tmp_path):
        report = _report(_finding(), _finding(message="new one"))
        budgets = {fingerprint(_finding()): 1}
        applied = apply_baseline(report, budgets)
        assert applied.baselined == 1
        assert [f.message for f in applied.findings] == ["new one"]
        assert applied.rule_counts["RL010"] == 1

    def test_budget_counts_cap_the_match(self):
        # Three occurrences, budget 2: exactly one survives.
        report = _report(
            _finding(line=1), _finding(line=2), _finding(line=3)
        )
        budgets = {fingerprint(_finding()): 2}
        applied = apply_baseline(report, budgets)
        assert applied.baselined == 2
        assert len(applied.findings) == 1

    def test_empty_baseline_is_identity(self):
        report = _report(_finding())
        applied = apply_baseline(report, {})
        assert applied.findings == report.findings
        assert applied.baselined == 0


class TestCliGate:
    """End-to-end: the gate fails on NEW findings only."""

    def _seed_tree(self, tmp_path: Path) -> Path:
        code = tmp_path / "code"
        code.mkdir()
        shutil.copy(FIXTURES / "rl010_fail.py", code / "old_debt.py")
        config = tmp_path / "pyproject.toml"
        config.write_text(
            "[tool.repro.lint.rules.RL010]\ninclude = [\"*\"]\n",
            encoding="utf-8",
        )
        return code

    def test_baseline_freezes_old_debt_and_fails_new(self, tmp_path, capsys):
        code = self._seed_tree(tmp_path)
        config = str(tmp_path / "pyproject.toml")
        baseline = str(tmp_path / "baseline.json")

        # Without a baseline the debt fails the gate.
        assert main([str(code), "--config", config]) == EXIT_FINDINGS

        # Snapshot it: exit 0 and the file exists.
        assert (
            main([
                str(code), "--config", config, "--write-baseline", baseline,
            ])
            == EXIT_CLEAN
        )

        # Same tree + baseline: old debt is frozen, gate passes.
        assert (
            main([str(code), "--config", config, "--baseline", baseline])
            == EXIT_CLEAN
        )
        out = capsys.readouterr().out
        assert "matched the baseline" in out

        # Introduce one NEW finding: the gate fails again.
        (code / "fresh.py").write_text(
            "import numpy as np\n\n\n"
            "def fresh(n: int) -> np.ndarray:\n"
            "    return np.zeros(n)\n",
            encoding="utf-8",
        )
        assert (
            main([str(code), "--config", config, "--baseline", baseline])
            == EXIT_FINDINGS
        )
        out = capsys.readouterr().out
        assert "fresh.py" in out

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        code = self._seed_tree(tmp_path)
        config = str(tmp_path / "pyproject.toml")
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        assert (
            main([str(code), "--config", config, "--baseline", str(bad)])
            == EXIT_USAGE
        )


class TestCommittedBaseline:
    def test_repo_baseline_exists_and_is_empty(self):
        """Policy: the tree lints clean; the committed baseline stays
        empty and exists only to arm the CI ratchet."""
        path = Path(__file__).resolve().parents[2] / "lint-baseline.json"
        budgets = load_baseline(path)
        assert budgets == {}
