"""Shared helpers for the lint-subsystem tests."""

from pathlib import Path

import pytest

from repro.lint import RULE_REGISTRY, LintConfig, default_config, merge_config

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tools" / "lint_fixtures"


def everywhere_config() -> LintConfig:
    """Every rule enabled and scoped to every path — fixture mode."""
    return merge_config(
        default_config(),
        {"rules": {code: {"include": ["*"]} for code in RULE_REGISTRY}},
    )


@pytest.fixture(name="everywhere")
def _everywhere() -> LintConfig:
    return everywhere_config()


@pytest.fixture(name="fixtures_dir")
def _fixtures_dir() -> Path:
    assert FIXTURES.is_dir(), f"missing fixture directory {FIXTURES}"
    return FIXTURES
