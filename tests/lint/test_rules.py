"""Every rule RL001-RL007 fires on its fail fixture, stays quiet on pass.

The fixture pairing is the liveness guarantee the CI gate rests on: a
rule that stops firing on its fail fixture turns the whole gate into
dead code, so that regression must break the tier-1 suite.
"""

from pathlib import Path
from typing import List, Tuple

import pytest

from repro.lint import Finding, LintConfig, lint_source

from tests.lint.conftest import FIXTURES, everywhere_config

RULE_CODES = (
    "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
    "RL008", "RL009", "RL010", "RL011",
)

#: rule -> minimum number of findings its fail fixture must produce.
MIN_FAIL_FINDINGS = {
    "RL001": 4,  # slot-duration literal, CRF ladder, add mix, compare mix
    "RL002": 4,  # from-import, random.seed, shuffle?, np.random.seed/rand
    "RL003": 3,  # except Exception, bare except, raise ValueError
    "RL004": 3,  # float literal, division, float() cast
    "RL005": 3,  # [], dict(), set()
    "RL006": 3,  # exported(), half_annotated(), PublicThing.method()
    "RL007": 4,  # from-import, stamp(), two duration() readings
    "RL008": 5,  # sleep, subprocess, reachable helper, 2x dropped coroutine
    "RL009": 3,  # two unseeded constructions, taint into allocator state
    "RL010": 4,  # implicit dtype, float32, astype, .T / swapaxes
    "RL011": 3,  # lambda, nested function, unpicklable dataclass fields
}


def lint_fixture(name: str, config: LintConfig) -> Tuple[List[Finding], int]:
    path = FIXTURES / name
    return lint_source(
        path.read_text(encoding="utf-8"), path.as_posix(), config
    )


class TestRuleFixtures:
    @pytest.mark.parametrize("code", RULE_CODES)
    def test_fail_fixture_fires(self, code):
        findings, _ = lint_fixture(
            f"{code.lower()}_fail.py", everywhere_config()
        )
        hits = [f for f in findings if f.rule == code]
        assert len(hits) >= MIN_FAIL_FINDINGS[code]
        assert all(f.severity == "error" for f in hits)
        assert all(f.line >= 1 for f in hits)

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_fail_fixture_fires_only_its_rule(self, code):
        findings, _ = lint_fixture(
            f"{code.lower()}_fail.py", everywhere_config()
        )
        assert findings, f"{code} fail fixture produced nothing"
        assert {f.rule for f in findings} == {code}

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_pass_fixture_is_clean(self, code):
        findings, suppressed = lint_fixture(
            f"{code.lower()}_pass.py", everywhere_config()
        )
        assert findings == []
        assert suppressed == 0


class TestRuleScoping:
    def test_rl002_default_scope_is_algorithmic_packages(self):
        from repro.lint import default_config

        source = (FIXTURES / "rl002_fail.py").read_text(encoding="utf-8")
        config = default_config()
        in_scope, _ = lint_source(
            source, "src/repro/core/somefile.py", config
        )
        out_of_scope, _ = lint_source(
            source, "src/repro/analysis/somefile.py", config
        )
        assert any(f.rule == "RL002" for f in in_scope)
        assert not any(f.rule == "RL002" for f in out_of_scope)

    def test_rl007_default_scope_is_serving_and_obs(self):
        from repro.lint import default_config

        source = (FIXTURES / "rl007_fail.py").read_text(encoding="utf-8")
        config = default_config()
        in_scope, _ = lint_source(
            source, "src/repro/obs/somefile.py", config
        )
        out_of_scope, _ = lint_source(
            source, "src/repro/analysis/somefile.py", config
        )
        assert any(f.rule == "RL007" for f in in_scope)
        assert not any(f.rule == "RL007" for f in out_of_scope)

    def test_rl006_not_applied_outside_src(self):
        from repro.lint import default_config

        source = (FIXTURES / "rl006_fail.py").read_text(encoding="utf-8")
        findings, _ = lint_source(
            source, "tests/test_whatever.py", default_config()
        )
        assert not any(f.rule == "RL006" for f in findings)


class TestFixtureInventory:
    def test_every_rule_has_both_fixtures(self, fixtures_dir: Path):
        for code in RULE_CODES:
            assert (fixtures_dir / f"{code.lower()}_fail.py").is_file()
            assert (fixtures_dir / f"{code.lower()}_pass.py").is_file()
