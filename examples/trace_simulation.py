#!/usr/bin/env python
"""Trace-driven simulation (the paper's Section IV, Figs. 2-3 shape).

Replays synthetic FCC/LTE bandwidth traces and 6-DoF motion traces
for 5 users, comparing Algorithm 1 against the offline per-slot
optimum, Firefly AQC, and modified PAVQ.  Prints the mean metrics and
the QoE CDF quantiles that correspond to the paper's Fig. 2 curves.

Run:  python examples/trace_simulation.py [--users N] [--episodes K]
"""

import argparse

from repro import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    OfflineOptimalAllocator,
    PavqAllocator,
    SimulationConfig,
    TraceSimulator,
    comparison_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=5)
    parser.add_argument("--episodes", type=int, default=3)
    parser.add_argument("--slots", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = SimulationConfig(
        num_users=args.users, duration_slots=args.slots, seed=args.seed
    )
    simulator = TraceSimulator(config)

    allocators = {
        "ours (Alg. 1)": DensityValueGreedyAllocator(),
        "pavq": PavqAllocator(),
        "firefly": FireflyAllocator(),
    }
    if args.users <= 8:
        allocators["offline-optimal"] = OfflineOptimalAllocator()

    print(
        f"simulating {args.users} users x {args.slots} slots x "
        f"{args.episodes} episodes (B = 36 Mbps/user, alpha=0.02, beta=0.5)\n"
    )
    results = simulator.compare(allocators, num_episodes=args.episodes)

    metrics = ("qoe", "quality", "delay", "variance")
    table = {name: res.means(metrics) for name, res in results.items()}
    print(comparison_table(table, metrics, reference="firefly"))

    print("\nQoE CDF quantiles (per-user-episode samples):")
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9)
    header = "algorithm".ljust(18) + "".join(f"p{int(q*100):02d}".rjust(9) for q in quantiles)
    print(header)
    for name, res in results.items():
        cdf = res.cdf("qoe")
        row = name.ljust(18) + "".join(f"{cdf.quantile(q):9.3f}" for q in quantiles)
        print(row)


if __name__ == "__main__":
    main()
