#!/usr/bin/env python
"""Motion predictor sensitivity study.

Section II: "any existing motion prediction model can be applied" —
the scheduler only consumes the success probability delta_n.  This
example swaps four predictors into the same simulated world with a
deliberately tight FoV margin (so prediction quality matters) and
reports the achieved viewed quality, variance, and QoE.

Run:  python examples/predictor_comparison.py
"""

from repro import DensityValueGreedyAllocator, SimulationConfig, TraceSimulator
from repro.analysis import comparison_table
from repro.prediction import PREDICTOR_REGISTRY


def main() -> None:
    table = {}
    for name in PREDICTOR_REGISTRY:
        config = SimulationConfig(
            num_users=4,
            duration_slots=900,
            seed=0,
            predictor=name,
            margin_deg=3.0,       # tight margin: errors become misses
            cell_tolerance=0,
        )
        simulator = TraceSimulator(config)
        results = simulator.run(DensityValueGreedyAllocator(), num_episodes=2)
        table[name] = {
            "qoe": results.mean("qoe"),
            "quality": results.mean("quality"),
            "variance": results.mean("variance"),
        }

    print("Algorithm 1 under different 6-DoF motion predictors")
    print("(3-degree margin, exact-cell requirement):\n")
    print(comparison_table(table, ("qoe", "quality", "variance")))
    print(
        "\nExpected shape: trend-aware predictors (linear regression,"
        "\nconstant velocity, exponential smoothing) beat the zero-order"
        "\nhold once the margin stops hiding prediction error."
    )


if __name__ == "__main__":
    main()
