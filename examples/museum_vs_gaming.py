#!/usr/bin/env python
"""QoE weight sensitivity: museum touring vs multi-user gaming.

Section II of the paper: "a larger value of alpha is chosen for those
applications which are more sensitive to the delay, like multi-user
VR gaming.  Similarly, we prefer a larger value of beta ... for
applications requiring consistent content streaming like museum
touring."

This example runs the same trace-driven world under three weightings
and shows how Algorithm 1 changes its allocation posture: the gaming
profile sacrifices quality for delay; the museum profile trades peak
quality for consistency.

Run:  python examples/museum_vs_gaming.py
"""

from repro import (
    DensityValueGreedyAllocator,
    QoEWeights,
    SimulationConfig,
    TraceSimulator,
    comparison_table,
)

PROFILES = {
    "balanced (paper)": QoEWeights(alpha=0.02, beta=0.5),
    "gaming (delay-sensitive)": QoEWeights(alpha=0.5, beta=0.1),
    "museum (consistency-first)": QoEWeights(alpha=0.02, beta=2.0),
}


def main() -> None:
    table = {}
    for name, weights in PROFILES.items():
        config = SimulationConfig(
            num_users=5, duration_slots=1200, weights=weights, seed=0
        )
        simulator = TraceSimulator(config)
        results = simulator.run(DensityValueGreedyAllocator(), num_episodes=2)
        table[name] = {
            "quality": results.mean("quality"),
            "delay": results.mean("delay"),
            "variance": results.mean("variance"),
        }

    print("Algorithm 1 under different application profiles:\n")
    print(comparison_table(table, ("quality", "delay", "variance")))
    print(
        "\nExpected shape: the gaming profile minimises delay, the museum"
        "\nprofile minimises variance, and both give up some quality to do so."
    )


if __name__ == "__main__":
    main()
