#!/usr/bin/env python
"""Quickstart: one slot of quality allocation with Algorithm 1.

Builds a small per-slot problem (5 users sharing an edge server),
solves it with the paper's density/value-greedy algorithm, and
compares against the exact optimum — on a laptop this is instant.

Run:  python examples/quickstart.py
"""

from repro import (
    DensityValueGreedyAllocator,
    MM1DelayModel,
    OfflineOptimalAllocator,
    QoEWeights,
    SlotProblem,
    UserSlotState,
)
from repro.content.rate import RateModel


def main() -> None:
    num_users = 5
    weights = QoEWeights(alpha=0.02, beta=0.5)
    rate_model = RateModel(seed=7)
    delay_model = MM1DelayModel()

    # Per-user state: content rate curves, bandwidth caps, running
    # statistics (here: slot t=10 with some history already built up).
    caps = [40.0, 55.0, 25.0, 70.0, 35.0]
    qbars = [3.0, 4.2, 1.8, 4.8, 2.5]
    deltas = [0.95, 0.90, 0.97, 0.88, 0.93]
    users = tuple(
        UserSlotState(
            sizes=rate_model.curve(content_id=n).as_tuple(),
            delay_of_rate=delay_model.delay_fn(caps[n]),
            delta=deltas[n],
            qbar=qbars[n],
            cap_mbps=caps[n],
        )
        for n in range(num_users)
    )
    problem = SlotProblem(
        t=10,
        users=users,
        budget_mbps=36.0 * num_users,
        weights=weights,
    )

    greedy = DensityValueGreedyAllocator()
    optimal = OfflineOptimalAllocator()

    greedy_levels = greedy.allocate(problem)
    optimal_levels = optimal.allocate(problem)

    print("user  cap(Mbps)  qbar  delta  greedy  optimal")
    for n in range(num_users):
        print(
            f"{n:4d}  {caps[n]:9.1f}  {qbars[n]:4.1f}  {deltas[n]:5.2f}"
            f"  {greedy_levels[n]:6d}  {optimal_levels[n]:7d}"
        )

    v_greedy = problem.objective_value(greedy_levels)
    v_opt = problem.objective_value(optimal_levels)
    print(f"\ngreedy objective : {v_greedy:.4f}")
    print(f"optimal objective: {v_opt:.4f}")
    print(f"ratio            : {v_greedy / v_opt:.4f}  (Theorem 1 guarantees >= 0.5)")
    print(f"greedy rate used : {problem.total_rate(greedy_levels):.1f} / "
          f"{problem.budget_mbps:.1f} Mbps")


if __name__ == "__main__":
    main()
