#!/usr/bin/env python
"""Scalability of Algorithm 1 with the number of users.

The paper's pitch is a *low-complexity* algorithm for collaborative
VR: the per-slot greedy is near-linear in users x levels, unlike the
exponential exact solver.  This example sweeps the population size
and reports per-slot allocation runtime alongside the achieved QoE
(the server budget scales with N per the paper's 36 Mbps/user rule,
so per-user QoE should stay roughly flat).

Run:  python examples/scalability.py
"""

import time

from repro import DensityValueGreedyAllocator, SimulationConfig, TraceSimulator
from repro.analysis import format_table


def main() -> None:
    rows = []
    for num_users in (2, 5, 10, 20, 40):
        config = SimulationConfig(
            num_users=num_users, duration_slots=300, seed=0
        )
        simulator = TraceSimulator(config)
        allocator = DensityValueGreedyAllocator()
        start = time.perf_counter()
        results = simulator.run(allocator, num_episodes=1)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                num_users,
                results.mean("qoe"),
                results.mean("quality"),
                results.mean_fairness("qoe"),
                elapsed / config.duration_slots * 1e3,
            ]
        )

    print("Algorithm 1 scalability (B = 36 Mbps x N):\n")
    print(
        format_table(
            ["users", "per-user QoE", "quality", "Jain fairness",
             "ms per simulated slot"],
            rows,
        )
    )
    print(
        "\nExpected shape: per-user QoE and fairness stay roughly flat"
        "\nwhile the per-slot cost grows mildly (near-linearly) with N."
    )


if __name__ == "__main__":
    main()
