#!/usr/bin/env python
"""Per-slot telemetry of one emulated session.

Runs a short setup-1 session with telemetry enabled and prints one
user's timeline: the allocated level per slot, where frames missed,
and how close the demand ran to the link.  This is the debugging view
behind the Fig. 7 averages.

Run:  python examples/session_timeline.py
"""

from repro import DensityValueGreedyAllocator
from repro.system import SystemExperiment, Telemetry, setup1_config
from repro.system.experiment import scaled_config


def sparkline(levels, lo=0, hi=6):
    """Map a level series onto block characters."""
    blocks = " .:-=+*#"
    span = hi - lo
    return "".join(
        blocks[min(int((level - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for level in levels
    )


def main() -> None:
    config = scaled_config(setup1_config(seed=4), duration_slots=360)
    experiment = SystemExperiment(config)
    telemetry = Telemetry()
    result = experiment.run_repeat(
        DensityValueGreedyAllocator(), 0, telemetry=telemetry
    )

    summary = telemetry.summary()
    print(
        f"session: {config.num_users} users x {config.duration_slots} slots; "
        f"display fraction {summary['display_fraction']:.3f}, "
        f"mean demand {summary['mean_demand_mbps']:.1f} Mbps\n"
    )

    user = 0
    timeline = telemetry.level_timeline(user)
    misses = set(telemetry.miss_slots(user))
    print(f"user {user}: quality-level timeline (60 slots per row; '!' = missed frame)")
    for start in range(0, len(timeline), 60):
        chunk = timeline[start:start + 60]
        marks = "".join(
            "!" if (start + i) in misses else " " for i in range(len(chunk))
        )
        print(f"  t={start:4d}  {sparkline(chunk)}")
        if marks.strip():
            print(f"           {marks}")
    print(
        f"\nuser {user}: utilisation {telemetry.utilisation(user):.2f} "
        f"(mean demand / achieved while transmitting), "
        f"fps {result.users[user].fps:.1f}"
    )


if __name__ == "__main__":
    main()
