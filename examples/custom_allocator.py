#!/usr/bin/env python
"""Tutorial: plugging a custom allocator into the evaluation stack.

The per-slot interface is one method — ``allocate(SlotProblem) ->
levels`` — and everything else (trace replay, QoE accounting, the
testbed emulation) comes for free.  This example implements a small
original policy, **hysteresis greedy**, which reuses Algorithm 1's
engine but refuses to change any user's level by more than one step
per slot (a common production trick for encoder stability), and
benchmarks it against Algorithm 1.

Run:  python examples/custom_allocator.py
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro import (
    DensityValueGreedyAllocator,
    QualityAllocator,
    SimulationConfig,
    SlotProblem,
    TraceSimulator,
    comparison_table,
)


@dataclass
class HysteresisGreedyAllocator(QualityAllocator):
    """Algorithm 1, rate-limited to one level step per user per slot."""

    name: str = field(default="hysteresis-greedy", init=False)

    def __post_init__(self) -> None:
        self._inner = DensityValueGreedyAllocator()
        self._last: Dict[int, int] = {}

    def reset(self) -> None:
        self._inner.reset()
        self._last.clear()

    def allocate(self, problem: SlotProblem) -> List[int]:
        target = self._inner.allocate(problem)
        levels: List[int] = []
        for n, wanted in enumerate(target):
            previous = self._last.get(n, wanted)
            if wanted > previous + 1:
                wanted = previous + 1
            elif wanted < previous - 1:
                wanted = previous - 1
            # Clamping only ever *lowers* demand relative to the inner
            # solution or moves along the feasible ladder, but verify
            # the per-user cap in case the cap itself dropped.
            while wanted > 1 and problem.users[n].sizes[wanted - 1] > (
                problem.users[n].cap_mbps
            ):
                wanted -= 1
            levels.append(wanted)
            self._last[n] = wanted
        # Final safety: if the smoothed allocation exceeds the server
        # budget (possible when many users ratchet up together), fall
        # back to the inner solution.
        if not problem.is_feasible(levels):
            levels = target
            self._last = dict(enumerate(target))
        return levels


def main() -> None:
    config = SimulationConfig(num_users=5, duration_slots=1200, seed=0)
    simulator = TraceSimulator(config)
    results = simulator.compare(
        {
            "algorithm 1": DensityValueGreedyAllocator(),
            "hysteresis": HysteresisGreedyAllocator(),
        },
        num_episodes=2,
    )
    metrics = ("qoe", "quality", "delay", "variance")
    print("Custom allocator vs Algorithm 1 (same traces):\n")
    print(comparison_table({k: v.means(metrics) for k, v in results.items()},
                           metrics))
    print(
        "\nThe rate-limited variant trades a little QoE for smoother"
        "\nlevel trajectories — exactly the kind of trade-off the"
        "\nSlotProblem interface makes cheap to explore."
    )


if __name__ == "__main__":
    main()
