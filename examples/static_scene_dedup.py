#!/usr/bin/env python
"""Repetitive-tile dedup ablation (Section V, "Handling repetitive tiles").

The paper's server "records the tiles that have already been
delivered and will not transmit the same tiles again", which
"significantly saves the network bandwidth" for static scene content.
This example runs the system emulation twice on the same world — once
with live content (every slot needs fresh tiles) and once with a
static scene (tiles stay valid) — and reports how much traffic the
dedup eliminates and what it buys in delay and FPS.

Run:  python examples/static_scene_dedup.py
"""

from dataclasses import replace

import numpy as np

from repro import DensityValueGreedyAllocator
from repro.system import SystemExperiment, setup1_config
from repro.system.server import EdgeServer

_traffic_mbps = []


class MeteredServer(EdgeServer):
    """EdgeServer that records each slot's total offered traffic."""

    def plan_slot(self):
        plan = super().plan_slot()
        _traffic_mbps.append(sum(plan.demands_mbps))
        return plan


def run(refresh_slots: int, label: str) -> None:
    config = replace(
        setup1_config(duration_slots=900, seed=1),
        content_refresh_slots=refresh_slots,
    )
    experiment = SystemExperiment(config)

    # Swap in the metered server via a tiny subclass of the experiment
    # loop's dependencies: monkey-free, the experiment only needs the
    # EdgeServer interface.
    import repro.system.experiment as experiment_module

    original = experiment_module.EdgeServer
    experiment_module.EdgeServer = MeteredServer
    _traffic_mbps.clear()
    try:
        results = experiment.run(DensityValueGreedyAllocator(), repeats=1)
    finally:
        experiment_module.EdgeServer = original

    mean_traffic = float(np.mean(_traffic_mbps))
    print(
        f"{label:28s} offered traffic {mean_traffic:7.1f} Mbps   "
        f"qoe {results.mean('qoe'):6.3f}   delay {results.mean('delay'):6.3f}   "
        f"fps {results.mean_fps():5.1f}"
    )


def main() -> None:
    print("dedup ablation, 8 users / setup 1 (Algorithm 1 throughout):\n")
    run(refresh_slots=1, label="live scene (refresh every slot)")
    run(refresh_slots=4, label="semi-static (refresh / 4 slots)")
    run(refresh_slots=0, label="static scene (never refresh)")
    print(
        "\nExpected shape: traffic collapses as content becomes static —"
        "\nonly viewpoint-cell changes and cache evictions cost bandwidth."
    )


if __name__ == "__main__":
    main()
