#!/usr/bin/env python
"""The VR classroom system experiment (the paper's Section VI, Fig. 7/8).

Emulates the real testbed: commodity phones behind Wi-Fi routers with
TC throttling, RTP tile delivery, TCP pose/ACK channels, EMA
throughput and polynomial delay estimation, and the transmit/decode/
display pipeline.  Compares Algorithm 1 with Firefly and modified
PAVQ on average QoE, delivery delay, quality variance, and FPS.

Run:  python examples/vr_classroom.py [--setup 1|2] [--repeats K]
"""

import argparse

from repro import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    PavqAllocator,
    comparison_table,
    improvement_percent,
)
from repro.system import SystemExperiment, setup1_config, setup2_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--setup", type=int, choices=(1, 2), default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--slots", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.setup == 1:
        config = setup1_config(duration_slots=args.slots, seed=args.seed)
    else:
        config = setup2_config(duration_slots=args.slots, seed=args.seed)

    print(
        f"setup {args.setup}: {config.num_users} users, "
        f"{config.num_routers} router(s), server budget "
        f"{config.server_budget_mbps:.0f} Mbps, {args.repeats} repeats\n"
    )
    experiment = SystemExperiment(config)
    allocators = {
        "ours (Alg. 1)": DensityValueGreedyAllocator(),
        "pavq": PavqAllocator(),
        "firefly": FireflyAllocator(),
    }
    results = experiment.compare(allocators, repeats=args.repeats)

    metrics = ("qoe", "quality", "delay", "variance")
    table = {}
    for name, res in results.items():
        row = res.means(metrics)
        row["fps"] = res.mean_fps()
        table[name] = row
    print(comparison_table(table, metrics + ("fps",)))

    ours = results["ours (Alg. 1)"].mean("qoe")
    for rival in ("pavq", "firefly"):
        gain = improvement_percent(ours, results[rival].mean("qoe"))
        print(f"\nQoE improvement over {rival}: {gain:+.1f}%")


if __name__ == "__main__":
    main()
